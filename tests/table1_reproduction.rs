//! The headline integration test: the paper's Table 1 outcomes hold on
//! the synthetic suite.
//!
//! Asserts the qualitative *shape* of the result — who succeeds where,
//! how much of each diagram gets probed, and the speedup band — rather
//! than any absolute timing.

use fastvg::core::baseline::HoughBaseline;
use fastvg::core::extraction::FastExtractor;
use fastvg::core::report::SuccessCriteria;
use fastvg::dataset::paper_suite;
use fastvg::instrument::{CsdSource, MeasurementSession};

struct Row {
    index: usize,
    fast_success: bool,
    base_success: bool,
    fast_probes: usize,
    total_pixels: usize,
    fast_runtime: f64,
    base_runtime: f64,
}

fn run_suite() -> Vec<Row> {
    let criteria = SuccessCriteria::default();
    paper_suite()
        .expect("suite generates")
        .iter()
        .map(|bench| {
            let mut fs = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
            let fast = FastExtractor::new().extract(&mut fs);
            let fast_success = fast
                .as_ref()
                .map(|r| criteria.judge(r.alpha12(), r.alpha21(), &bench.truth))
                .unwrap_or(false);
            let fast_probes = fs.probe_count();
            let fast_runtime = fs.simulated_dwell().as_secs_f64();

            let mut bs = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
            let base = HoughBaseline::new().extract(&mut bs);
            let base_success = base
                .as_ref()
                .map(|r| criteria.judge(r.alpha12(), r.alpha21(), &bench.truth))
                .unwrap_or(false);
            let base_runtime = bs.simulated_dwell().as_secs_f64();

            Row {
                index: bench.spec.index,
                fast_success,
                base_success,
                fast_probes,
                total_pixels: bench.spec.pixel_count(),
                fast_runtime,
                base_runtime,
            }
        })
        .collect()
}

#[test]
fn table1_success_pattern_matches_paper() {
    let rows = run_suite();
    assert_eq!(rows.len(), 12);

    let fast: usize = rows.iter().filter(|r| r.fast_success).count();
    let base: usize = rows.iter().filter(|r| r.base_success).count();
    assert_eq!(fast, 10, "paper: fast extraction succeeds on 10/12");
    assert_eq!(base, 9, "paper: baseline succeeds on 9/12");

    // The two noise-swamped benchmarks fail for both methods.
    for r in rows.iter().filter(|r| r.index <= 2) {
        assert!(!r.fast_success, "CSD {} should fail fast", r.index);
        assert!(!r.base_success, "CSD {} should fail baseline", r.index);
    }
    // CSD 7: fast succeeds where the baseline starves for edges.
    let csd7 = rows.iter().find(|r| r.index == 7).expect("CSD 7 in suite");
    assert!(csd7.fast_success && !csd7.base_success);
}

#[test]
fn fast_extraction_probes_roughly_ten_percent() {
    let rows = run_suite();
    let healthy: Vec<&Row> = rows.iter().filter(|r| r.fast_success).collect();
    assert!(!healthy.is_empty());
    let mut coverages: Vec<f64> = healthy
        .iter()
        .map(|r| r.fast_probes as f64 / r.total_pixels as f64)
        .collect();
    coverages.sort_by(|a, b| a.partial_cmp(b).expect("finite coverage"));
    // Paper: 4.2 % – 17.1 % per benchmark, ~10 % on average.
    assert!(coverages[0] > 0.02, "min coverage {:.3}", coverages[0]);
    assert!(
        *coverages.last().expect("non-empty") < 0.25,
        "max coverage {:.3}",
        coverages.last().expect("non-empty")
    );
    let mean: f64 = coverages.iter().sum::<f64>() / coverages.len() as f64;
    assert!((0.05..0.18).contains(&mean), "mean coverage {mean:.3}");
}

#[test]
fn speedups_fall_in_the_papers_band() {
    let rows = run_suite();
    let mut speedups = Vec::new();
    for r in rows.iter().filter(|r| r.fast_success && r.base_success) {
        speedups.push(r.base_runtime / r.fast_runtime);
    }
    assert!(speedups.len() >= 8, "expected ≥8 mutual successes");
    for s in &speedups {
        assert!(
            (4.0..25.0).contains(s),
            "speedup {s:.2} outside the plausible band (paper: 5.84–19.34)"
        );
    }
    // Larger diagrams must show larger speedups (probe fraction shrinks).
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(
        max > 12.0,
        "200x200 benchmark should exceed 12x, got {max:.2}"
    );
}

#[test]
fn baseline_always_probes_everything() {
    let rows = run_suite();
    for r in &rows {
        assert!(
            (r.base_runtime - r.total_pixels as f64 * 0.05).abs() < 1.0,
            "CSD {}: baseline dwell {:.2}s != pixels x 50ms",
            r.index,
            r.base_runtime
        );
        assert!(r.fast_probes < r.total_pixels / 4);
    }
}
