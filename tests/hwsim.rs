//! Tier-1 hardware-sim coverage: the `hwsim` DAC backend keeps every
//! determinism guarantee the runtime-backend seam promises — zoo
//! scenarios record → replay bit-identically across severity bands,
//! batch fan-out is oblivious to `jobs`, the nominal profile is
//! indistinguishable from the plain simulator, and hostile profile
//! strings die at the registry door.

use fastvg::prelude::*;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fastvg-tier1-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The one zoo scenario in `family` × `severity` for a `per_cell=1`
/// cohort at the pinned seed.
fn zoo_cell(family: ZooFamily, severity: Severity) -> ZooScenario {
    zoo_specs(1, DEFAULT_ZOO_SEED)
        .into_iter()
        .find(|s| s.family == family && s.severity == severity)
        .expect("zoo populates every cell")
}

/// Bitwise comparison of two extraction attempts: successes must match
/// field for field, failures must be the *same* classified failure.
fn assert_bit_identical(
    a: &Result<ExtractionReport, ExtractError>,
    b: &Result<ExtractionReport, ExtractError>,
    context: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(
                x.slope_h.to_bits(),
                y.slope_h.to_bits(),
                "{context}: slope_h"
            );
            assert_eq!(
                x.slope_v.to_bits(),
                y.slope_v.to_bits(),
                "{context}: slope_v"
            );
            assert_eq!(x.matrix, y.matrix, "{context}: matrix");
            assert_eq!(x.probes, y.probes, "{context}: probes");
            assert_eq!(x.unique_pixels, y.unique_pixels, "{context}: pixels");
            assert_eq!(x.coverage.to_bits(), y.coverage.to_bits(), "{context}");
            assert_eq!(x.simulated_dwell, y.simulated_dwell, "{context}");
        }
        (Err(x), Err(y)) => {
            assert_eq!(x.category(), y.category(), "{context}: error category");
            assert_eq!(x.to_string(), y.to_string(), "{context}: error text");
        }
        (x, y) => panic!("{context}: outcome mismatch: {x:?} vs {y:?}"),
    }
}

#[test]
fn hwsim_zoo_tapes_replay_bit_identically_across_severity_bands() {
    // Satellite acceptance: record → replay over three zoo scenarios,
    // one per severity band. DeadChannels sweeps the hwsim profile
    // ladder hardest (aged → worn → hostile), so severe bands exercise
    // dead pixels, coarse DACs, and clipped channels on tape.
    let dir = tmp_dir("hwsim-tapes");
    let registry = BackendRegistry::standard();
    for severity in Severity::ALL {
        let scenario = zoo_cell(ZooFamily::DeadChannels, severity);
        let bench = generate(&scenario.spec).expect("zoo spec generates");
        let label = scenario.label();

        let recorder = registry
            .resolve(&format!(
                "record:{}/{{label}}.tape+{}",
                dir.display(),
                scenario.backend
            ))
            .expect("record+hwsim composes");
        let replayer = registry
            .resolve(&format!("replay:{}/{{label}}.tape", dir.display()))
            .expect("replay resolves");

        let open = |backend: &dyn SourceBackend| {
            backend
                .session(
                    SourceScenario::new(bench.csd.clone())
                        .with_label(label.clone())
                        .with_seed(scenario.spec.seed),
                )
                .expect("backend opens")
        };
        // The tape sink is buffered and flushes when the recording
        // session drops — scope it so the file is complete before the
        // replayer opens it.
        let (recorded, rec_scatter) = {
            let mut session = open(recorder.as_ref());
            let outcome = extract_with(&FastExtractor::new(), &mut session);
            let scatter = session.scatter();
            (outcome, scatter)
        };
        let mut rep_session = open(replayer.as_ref());
        let replayed = extract_with(&FastExtractor::new(), &mut rep_session);

        assert_bit_identical(&recorded, &replayed, &label);
        // The probe scatter — the full pixel sequence — is pinned too.
        assert_eq!(rep_session.scatter(), rec_scatter, "{label}: scatter");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hwsim_zoo_batch_runs_are_oblivious_to_job_count() {
    // Acceptance: the hwsim zoo run is bit-identical across --jobs 1
    // and --jobs 4. One scenario per family × severity keeps the debug
    // runtime in budget while still crossing every hwsim profile the
    // zoo ships.
    let zoo = zoo_specs(1, DEFAULT_ZOO_SEED);
    let specs: Vec<_> = zoo.iter().map(|s| s.spec.clone()).collect();
    let benches = fastvg::dataset::generate_suite(&specs, 4).expect("zoo generates");
    let registry = BackendRegistry::standard();
    let backends: Vec<_> = zoo
        .iter()
        .map(|s| registry.resolve(&s.backend).expect("zoo backend resolves"))
        .collect();

    let run = |jobs: usize| {
        BatchExtractor::new()
            .with_jobs(jobs)
            .run(&FastExtractor::new(), benches.len(), |i| {
                backends[i]
                    .session(
                        SourceScenario::new(benches[i].csd.clone())
                            .with_label(zoo[i].label())
                            .with_seed(benches[i].spec.seed),
                    )
                    .expect("hwsim opens")
            })
    };
    let serial = run(1);
    let fanned = run(4);
    for ((s, f), scenario) in serial.iter().zip(&fanned).zip(&zoo) {
        let label = scenario.label();
        assert_eq!(s.probes, f.probes, "{label}: probes");
        assert_eq!(s.scatter, f.scatter, "{label}: scatter");
        assert_bit_identical(&s.outcome, &f.outcome, &label);
    }
}

#[test]
fn nominal_hwsim_is_bitwise_the_plain_simulator() {
    // The headline determinism claim: a 16-bit DAC with every pathology
    // knob at zero quantizes below the pixel pitch, so `hwsim:nominal`
    // and `sim` produce the same extraction, bit for bit.
    let bench = paper_benchmark(6).unwrap();
    let registry = BackendRegistry::standard();
    let on = |spec: &str| {
        let mut session = registry
            .resolve(spec)
            .unwrap()
            .session(SourceScenario::new(bench.csd.clone()).with_seed(bench.spec.seed))
            .unwrap();
        extract_with(&FastExtractor::new(), &mut session).expect("benchmark 6 extracts")
    };
    let plain = on("sim");
    let hwsim = on("hwsim:nominal");
    assert_eq!(hwsim.slope_h.to_bits(), plain.slope_h.to_bits());
    assert_eq!(hwsim.slope_v.to_bits(), plain.slope_v.to_bits());
    assert_eq!(hwsim.matrix, plain.matrix);
    assert_eq!(hwsim.probes, plain.probes);
}

#[test]
fn hostile_hwsim_profiles_are_rejected_with_invalid_spec() {
    let registry = BackendRegistry::standard();
    // Duplicate knobs get the *named* rejection, so callers can tell a
    // contradictory spec from a malformed one.
    match registry.resolve("hwsim:nominal,bits=12,bits=10") {
        Err(BackendError::DuplicateOption { scheme, key })
            if scheme == "hwsim" && key == "bits" => {}
        other => panic!("duplicate key must be DuplicateOption, got {other:?}"),
    }
    for bad in [
        "hwsim:nominal,slew=0",     // settling never finishes
        "hwsim:nominal,twrite=11s", // bus write over the dwell cap
        "hwsim:nominal,xt=0.5",     // crosstalk out of range
        "hwsim:nominal,gain=2",     // unknown key
        "hwsim:NOMINAL",            // presets are case-sensitive
    ] {
        match registry.resolve(bad) {
            Err(BackendError::InvalidSpec { .. }) => {}
            other => panic!("{bad:?} must be InvalidSpec, got {other:?}"),
        }
    }
}
