//! Integration tests for the beyond-the-paper extensions: verification
//! scoring, tuning ladders, scan patterns and dataset archiving working
//! together.

use fastvg::core::baseline::{acquire_full_csd_with, HoughBaseline};
use fastvg::core::extraction::FastExtractor;
use fastvg::core::tuning::TuningLoop;
use fastvg::core::verify::{measure_steep_step_drift, score_against_truth};
use fastvg::dataset::{load_suite, paper_benchmark, paper_suite, save_suite};
use fastvg::instrument::{CsdSource, MeasurementSession, ScanPattern};

#[test]
fn extraction_on_archived_data_matches_live_data() {
    let dir = std::env::temp_dir().join(format!("fastvg-ext-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let suite = paper_suite().expect("suite generates");
    save_suite(&dir, &suite[5..6]).expect("archive written"); // CSD 6
    let archived = load_suite(&dir).expect("archive read");
    assert_eq!(archived.len(), 1);

    let mut live = MeasurementSession::new(CsdSource::new(suite[5].csd.clone()));
    let mut replay = MeasurementSession::new(CsdSource::new(archived[0].csd.clone()));
    let a = FastExtractor::new()
        .extract(&mut live)
        .expect("live extracts");
    let b = FastExtractor::new()
        .extract(&mut replay)
        .expect("replay extracts");
    assert_eq!(
        a.slope_h, b.slope_h,
        "archived replay must be bit-identical"
    );
    assert_eq!(a.slope_v, b.slope_v);
    assert_eq!(a.probes, b.probes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verification_scores_track_extraction_quality() {
    let bench = paper_benchmark(8).expect("benchmark generates");
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let result = FastExtractor::new()
        .extract(&mut session)
        .expect("extracts");

    let score = score_against_truth(&result.matrix, &bench.truth);
    assert!(
        score.passes(5.0),
        "extraction should virtualize within 5 degrees, worst tilt {:.2}",
        score.worst_tilt_deg()
    );

    // The identity matrix (no compensation) must score much worse.
    let naive = score_against_truth(&fastvg::csd::VirtualizationMatrix::identity(), &bench.truth);
    assert!(naive.worst_tilt_deg() > 3.0 * score.worst_tilt_deg());

    // Data-driven check without ground truth: the extracted matrix makes
    // the steep step (nearly) vertical, the identity does not.
    let good_drift = measure_steep_step_drift(&result.matrix, &bench.csd);
    let naive_drift =
        measure_steep_step_drift(&fastvg::csd::VirtualizationMatrix::identity(), &bench.csd);
    if let (Some(g), Some(n)) = (good_drift, naive_drift) {
        assert!(
            g < n,
            "virtualized drift {g} should beat identity drift {n}"
        );
    }
}

#[test]
fn tuning_ladder_is_never_worse_than_single_shot() {
    // On every healthy benchmark, the ladder must succeed whenever the
    // single-shot extractor does (rung 1 *is* the single shot).
    for index in [3usize, 6, 9, 12] {
        let bench = paper_benchmark(index).expect("benchmark generates");
        let mut single = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        let single_ok = FastExtractor::new().extract(&mut single).is_ok();
        let mut laddered = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        let outcome = TuningLoop::new().run(&mut laddered);
        if single_ok {
            assert!(outcome.result.is_ok(), "ladder regressed on CSD {index}");
            assert_eq!(outcome.attempts_used, 1);
        }
    }
}

#[test]
fn scan_patterns_acquire_identical_replayed_data() {
    // On a frozen CSD the probe order cannot change the data — all three
    // patterns must produce the same acquired diagram (and the same
    // baseline result).
    let bench = paper_benchmark(4).expect("benchmark generates");
    let acquire = |pattern: ScanPattern| {
        let mut s = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        acquire_full_csd_with(&mut s, pattern).expect("acquisition")
    };
    let raster = acquire(ScanPattern::RowMajorRaster);
    let serp = acquire(ScanPattern::Serpentine);
    let col = acquire(ScanPattern::ColumnMajorRaster);
    assert_eq!(raster, serp);
    assert_eq!(raster, col);
    assert_eq!(raster, bench.csd);
}

#[test]
fn baseline_and_fast_agree_on_clean_benchmarks() {
    // Both methods measure the same physics: on clean data their slopes
    // must agree with each other (not just with ground truth).
    for index in [6usize, 8, 11] {
        let bench = paper_benchmark(index).expect("benchmark generates");
        let mut fs = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        let fast = FastExtractor::new()
            .extract(&mut fs)
            .expect("fast extracts");
        let mut bs = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        let base = HoughBaseline::new()
            .extract(&mut bs)
            .expect("baseline extracts");
        assert!(
            (fast.slope_h - base.slope_h).abs() < 0.12,
            "CSD {index}: shallow disagreement {} vs {}",
            fast.slope_h,
            base.slope_h
        );
        assert!(
            (fast.slope_v - base.slope_v).abs() < 0.9,
            "CSD {index}: steep disagreement {} vs {}",
            fast.slope_v,
            base.slope_v
        );
    }
}
