//! Tier-1 serving smoke: the daemon boots, serves the protocol over a
//! real socket, replays cache hits byte-identically, and stops cleanly.
//! (The exhaustive protocol matrix lives in `crates/serve/tests`.)

use fastvg::prelude::*;
use fastvg::serve::{start, ServeConfig};

#[test]
fn daemon_serves_caches_and_shuts_down() {
    let daemon = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        extract_jobs: 2,
        ..ServeConfig::default()
    })
    .expect("daemon boots");
    let mut client = Client::connect(&daemon.addr().to_string()).expect("connect");

    // Health first: the CI smoke job polls this exact route.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("ok").and_then(Json::as_bool),
        Some(true)
    );

    // Cold extraction over the wire parses back into the unified report
    // and matches a local in-process run of the same benchmark.
    let cold = client
        .post("/extract?wait", br#"{"benchmark": 6, "method": "fast"}"#)
        .expect("cold request");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-fastvg-cache"), Some("miss"));
    let doc = cold.json().unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    let served = ExtractionReport::from_json(doc.get("report").unwrap()).unwrap();

    let bench = paper_benchmark(6).unwrap();
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let local = extract_with(&FastExtractor::new(), &mut session).unwrap();
    assert_eq!(served.slope_h.to_bits(), local.slope_h.to_bits());
    assert_eq!(served.slope_v.to_bits(), local.slope_v.to_bits());
    assert_eq!(served.probes, local.probes);

    // The cache replays the cold bytes verbatim.
    let hit = client
        .post("/extract?wait", br#"{"benchmark": 6, "method": "fast"}"#)
        .expect("hot request");
    assert_eq!(hit.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "cache-hit must be byte-identical");

    // Metrics reflect the workload.
    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("fastvg_cache_requests_total{outcome=\"hit\"} 1"));
    assert!(text.contains("fastvg_jobs_total{state=\"completed\"} 1"));

    daemon.shutdown();
    daemon.join(); // returning proves every thread drained
}
