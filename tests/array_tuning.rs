//! Cross-crate integration: pairwise virtual gate extraction scales to
//! linear arrays (paper §2.3: "n − 1 sequentially executed extraction
//! processes are needed for an n-dot array").

use fastvg::core::extraction::FastExtractor;
use fastvg::core::virtual_gate::{extract_chain, WindowPlan};
use fastvg::physics::DeviceBuilder;

#[test]
fn chains_extract_for_3_to_5_dots() {
    for n in [3usize, 4, 5] {
        let device = DeviceBuilder::linear_array(n)
            .build_array()
            .expect("array builds");
        let chain = extract_chain(
            &device,
            &vec![0.0; n],
            &FastExtractor::new(),
            &WindowPlan::default(),
        )
        .unwrap_or_else(|e| panic!("{n}-dot chain failed: {e}"));
        assert_eq!(
            chain.pairs.len(),
            n - 1,
            "{n}-dot array needs n-1 extractions"
        );
        assert_eq!(chain.virtualization.n_gates(), n);

        for pair in 0..n - 1 {
            let truth = device.pair_ground_truth(pair).expect("valid pair");
            let a12 = chain.virtualization.at(pair, pair + 1);
            let a21 = chain.virtualization.at(pair + 1, pair);
            assert!(
                (a12 - truth.alpha12).abs() < 0.1,
                "{n}-dot pair {pair}: a12 {a12:.3} vs truth {:.3}",
                truth.alpha12
            );
            assert!(
                (a21 - truth.alpha21).abs() < 0.1,
                "{n}-dot pair {pair}: a21 {a21:.3} vs truth {:.3}",
                truth.alpha21
            );
        }
    }
}

#[test]
fn chain_probe_budget_scales_linearly() {
    let count_probes = |n: usize| -> usize {
        let device = DeviceBuilder::linear_array(n)
            .build_array()
            .expect("array builds");
        extract_chain(
            &device,
            &vec![0.0; n],
            &FastExtractor::new(),
            &WindowPlan::default(),
        )
        .expect("chain extracts")
        .total_probes
    };
    let p3 = count_probes(3);
    let p5 = count_probes(5);
    // 5 dots = 4 pairs vs 3 dots = 2 pairs: roughly 2x the probes.
    let ratio = p5 as f64 / p3 as f64;
    assert!(
        (1.4..2.8).contains(&ratio),
        "probe scaling ratio {ratio:.2} not ~2 (p3 = {p3}, p5 = {p5})"
    );
}

#[test]
fn non_adjacent_couplings_are_zero() {
    let device = DeviceBuilder::linear_array(4)
        .build_array()
        .expect("array builds");
    let chain = extract_chain(
        &device,
        &[0.0; 4],
        &FastExtractor::new(),
        &WindowPlan::default(),
    )
    .expect("chain extracts");
    let v = &chain.virtualization;
    for i in 0..4usize {
        for j in 0..4usize {
            if i.abs_diff(j) >= 2 {
                assert_eq!(v.at(i, j), 0.0, "({i},{j}) should be zero");
            }
        }
        assert_eq!(v.at(i, i), 1.0);
    }
}
