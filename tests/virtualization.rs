//! Cross-crate integration: the extracted virtualization matrix actually
//! orthogonalizes the device — the end goal of the whole pipeline
//! (paper §2.3, Figure 3).

use fastvg::core::extraction::FastExtractor;
use fastvg::csd::VirtualizationMatrix;
use fastvg::dataset::paper_benchmark;
use fastvg::instrument::{CsdSource, MeasurementSession};

#[test]
fn extracted_matrix_orthogonalizes_true_lines() {
    let bench = paper_benchmark(6).expect("benchmark generates");
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let result = FastExtractor::new()
        .extract(&mut session)
        .expect("extraction succeeds on CSD 6");

    // Push the *device's true* line slopes through the *extracted*
    // matrix: the steep image must be near-vertical, the shallow image
    // near-horizontal.
    let steep_image = result.matrix.map_slope(bench.truth.slope_v);
    let shallow_image = result.matrix.map_slope(bench.truth.slope_h);
    assert!(
        steep_image.abs() > 15.0,
        "steep line image slope {steep_image:.2} not near vertical"
    );
    assert!(
        shallow_image.abs() < 0.12,
        "shallow line image slope {shallow_image:.4} not near horizontal"
    );
}

#[test]
fn ground_truth_matrix_is_exactly_orthogonal() {
    let bench = paper_benchmark(8).expect("benchmark generates");
    let m = VirtualizationMatrix::from_slopes(bench.truth.slope_h, bench.truth.slope_v)
        .expect("truth slopes are regular");
    assert!(m.map_slope(bench.truth.slope_v).is_infinite());
    assert!(m.map_slope(bench.truth.slope_h).abs() < 1e-12);
}

#[test]
fn virtualized_diagram_has_axis_aligned_steps() {
    // Extract on a clean benchmark, resample the CSD into virtual
    // coordinates and verify the steep transition is (nearly) the same
    // column across the middle rows.
    let bench = paper_benchmark(8).expect("benchmark generates");
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let result = FastExtractor::new()
        .extract(&mut session)
        .expect("extraction succeeds on CSD 8");
    let virt = result.matrix.virtualize(&bench.csd).expect("resample");

    let (w, h) = virt.size();
    // Find the strongest negative step along each middle row, right half
    // of the image (where the steep line lives after warping).
    let mut cols = Vec::new();
    for y in (h / 3)..(2 * h / 3) {
        let mut best = (0usize, 0.0f64);
        for x in (w / 3)..(w - 2) {
            let drop = virt.at(x, y) - virt.at(x + 2, y);
            if drop > best.1 {
                best = (x, drop);
            }
        }
        if best.1 > 0.2 {
            cols.push(best.0);
        }
    }
    assert!(
        cols.len() > h / 6,
        "too few step rows found: {}",
        cols.len()
    );
    let lo = *cols.iter().min().expect("non-empty");
    let hi = *cols.iter().max().expect("non-empty");
    assert!(
        hi - lo <= w / 12,
        "steep step drifts {lo}..{hi} across rows; not vertical after virtualization"
    );
}

#[test]
fn identity_matrix_leaves_slopes_alone() {
    let m = VirtualizationMatrix::identity();
    for s in [-4.0, -0.3, 1.5] {
        assert_eq!(m.map_slope(s), s);
    }
}
