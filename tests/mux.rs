//! Tier-1 multiplexed-instrument coverage: `multiplexed:1+sim` is a
//! bit-identical drop-in for `sim` through the concurrent batch path,
//! equi-difference schedules are collision-free for every session count
//! the pool admits, and the scheduling policy can never leak into
//! extraction bytes — only into wall/dwell accounting.

use fastvg::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Everything a backend is allowed to influence *except* timing: if two
/// runs agree on this struct they produced the same physics, probe for
/// probe, bit for bit. Failures fingerprint as their category plus the
/// probe trail leading up to them.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    outcome: Result<ReportBits, ErrorCategory>,
    scatter: Vec<(i64, i64)>,
}

#[derive(Debug, Clone, PartialEq)]
struct ReportBits {
    slope_h: u64,
    slope_v: u64,
    matrix: VirtualizationMatrix,
    probes: usize,
    unique_pixels: usize,
    coverage: u64,
    simulated_dwell: std::time::Duration,
    stage_probes: Vec<(Stage, usize)>,
}

impl ReportBits {
    fn of(report: &ExtractionReport) -> Self {
        ReportBits {
            slope_h: report.slope_h.to_bits(),
            slope_v: report.slope_v.to_bits(),
            matrix: report.matrix,
            probes: report.probes,
            unique_pixels: report.unique_pixels,
            coverage: report.coverage.to_bits(),
            simulated_dwell: report.simulated_dwell,
            stage_probes: report.stages.iter().map(|s| (s.stage, s.probes)).collect(),
        }
    }
}

/// One full extraction on `spec`, scatter included.
fn extract_on(spec: &str, bench: &GeneratedBenchmark) -> Fingerprint {
    let backend = BackendRegistry::standard()
        .resolve(spec)
        .unwrap_or_else(|e| panic!("{spec} must resolve: {e}"));
    let scenario = SourceScenario::new(bench.csd.clone())
        .with_label(format!("bench{:02}", bench.spec.index))
        .with_seed(bench.spec.seed);
    let mut session = backend.session(scenario).expect("backend opens");
    let outcome = extract_with(&FastExtractor::new(), &mut session);
    Fingerprint {
        outcome: outcome
            .as_ref()
            .map(ReportBits::of)
            .map_err(|e| e.category()),
        scatter: session.scatter(),
    }
}

/// The unmultiplexed reference fingerprint for one paper benchmark,
/// computed once per process.
fn sim_reference(index: usize) -> Fingerprint {
    static CACHE: OnceLock<Mutex<HashMap<usize, Fingerprint>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap();
    cache
        .entry(index)
        .or_insert_with(|| extract_on("sim", &paper_benchmark(index).expect("paper benchmark")))
        .clone()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The ISSUE's headline identity: `multiplexed:1+sim` over the full
/// 12-benchmark suite at `jobs = 4` — four sessions genuinely contending
/// for one shared channel — is bitwise indistinguishable from plain
/// `sim`, failures included.
#[test]
fn one_channel_mux_is_bitwise_identical_to_sim_under_contention() {
    let suite = paper_suite().expect("suite generates");
    let registry = BackendRegistry::standard();
    let runner = BatchExtractor::new().with_jobs(4);

    let run = |spec: &str| {
        let backend = registry.resolve(spec).unwrap();
        runner.run(&FastExtractor::new(), suite.len(), |i| {
            backend
                .session(SourceScenario::new(suite[i].csd.clone()))
                .expect("backend opens")
        })
    };
    let plain = run("sim");
    let muxed = run("multiplexed:1+sim");

    for ((p, m), bench) in plain.iter().zip(&muxed).zip(&suite) {
        let index = bench.spec.index;
        assert_eq!(m.probes, p.probes, "benchmark {index}: probes");
        assert_eq!(m.scatter, p.scatter, "benchmark {index}: scatter");
        match (&p.outcome, &m.outcome) {
            (Ok(pr), Ok(mr)) => {
                assert_eq!(mr.slope_h.to_bits(), pr.slope_h.to_bits(), "bench {index}");
                assert_eq!(mr.slope_v.to_bits(), pr.slope_v.to_bits(), "bench {index}");
                assert_eq!(mr.matrix, pr.matrix, "benchmark {index}");
                assert_eq!(mr.unique_pixels, pr.unique_pixels, "benchmark {index}");
                assert_eq!(
                    mr.coverage.to_bits(),
                    pr.coverage.to_bits(),
                    "bench {index}"
                );
                assert_eq!(mr.simulated_dwell, pr.simulated_dwell, "benchmark {index}");
            }
            (Err(pe), Err(me)) => {
                assert_eq!(
                    me.category(),
                    pe.category(),
                    "benchmark {index}: {pe} vs {me}"
                );
            }
            (p, m) => panic!("benchmark {index}: outcome mismatch — sim {p:?}, mux {m:?}"),
        }
    }
}

/// Duplicate knobs die in the parser with the *named* error — the
/// regression the hwsim spec grammar shipped without.
#[test]
fn duplicate_spec_options_are_rejected_by_name() {
    let registry = BackendRegistry::standard();
    let duplicate = |spec: &str, want_scheme: &str, want_key: &str| {
        let err = registry
            .resolve(spec)
            .expect_err("duplicate must be rejected");
        assert!(
            matches!(
                &err,
                BackendError::DuplicateOption { scheme, key }
                    if *scheme == want_scheme && key == want_key
            ),
            "{spec}: {err}"
        );
    };
    duplicate("hwsim:nominal,xt=0.1,xt=0.9", "hwsim", "xt");
    duplicate("hwsim:aged,dead=0.05,bits=12,dead=0.01", "hwsim", "dead");
    duplicate("multiplexed:2,cap=4,cap=8", "multiplexed", "cap");
    duplicate("multiplexed:2,policy=ed,w=3,i=5,w=2", "multiplexed", "w");
}

proptest! {
    /// The CAC guarantee, for every admissible parameterization: the
    /// equi-difference codewords of all `K ≤ capacity` ranks are
    /// pairwise disjoint in-frame, and the induced slot streams stay
    /// globally collision-free and per-rank strictly increasing over a
    /// multi-frame window.
    #[test]
    fn equi_difference_schedules_are_collision_free(
        capacity in 1usize..17,
        weight in 1usize..9,
        raw_generator in 1u64..1000,
    ) {
        let n = (weight * capacity) as u64;
        // Nudge the sampled generator to the next unit of Z_n — the same
        // admissibility rule the spec parser enforces (gcd(i, w·cap) = 1
        // always has solutions, 1 itself being one).
        let mut generator = 1 + (raw_generator - 1) % n;
        while gcd(generator, n) != 1 {
            generator = generator % n + 1;
        }
        let scheduler = EquiDifference::new(weight, generator as usize).unwrap();
        prop_assert_eq!(scheduler.frame(capacity), n);

        // In-frame disjointness across every pair of ranks.
        let codewords: Vec<Vec<u64>> = (0..capacity)
            .map(|rank| scheduler.codeword(rank, capacity))
            .collect();
        let mut in_frame: Vec<u64> = codewords.iter().flatten().copied().collect();
        in_frame.sort_unstable();
        in_frame.dedup();
        prop_assert_eq!(
            in_frame.len(),
            weight * capacity,
            "codewords must tile the frame: {:?}",
            codewords
        );
        prop_assert!(in_frame.iter().all(|&slot| slot < n));

        // Slot streams: unique across all ranks over three frames,
        // strictly increasing within each rank.
        let probes_per_rank = 3 * weight as u64;
        let mut seen = std::collections::HashSet::new();
        for rank in 0..capacity {
            let mut last = None;
            for probe in 0..probes_per_rank {
                let slot = scheduler.slot(rank, probe, capacity);
                prop_assert!(
                    seen.insert(slot),
                    "rank {} probe {} collides on slot {}",
                    rank,
                    probe,
                    slot
                );
                prop_assert!(
                    last.is_none_or(|l| slot > l),
                    "rank {} schedule must be strictly increasing",
                    rank
                );
                last = Some(slot);
            }
        }
    }

    /// Scheduler choice is pure timing: whatever (policy, capacity,
    /// weight, generator, channel count) the spec selects, extraction
    /// bytes match the unmultiplexed reference exactly.
    #[test]
    fn scheduler_choice_never_changes_extraction_bytes(
        index in 1usize..13,
        channels in 1usize..3,
        capacity in 1usize..9,
        weight in 1usize..5,
        raw_generator in 1u64..100,
        equi_difference in 0u32..2,
    ) {
        let spec = if equi_difference == 1 {
            let n = (weight * capacity) as u64;
            let mut generator = 1 + (raw_generator - 1) % n;
            while gcd(generator, n) != 1 {
                generator = generator % n + 1;
            }
            format!("multiplexed:{channels},cap={capacity},policy=ed,w={weight},i={generator}")
        } else {
            format!("multiplexed:{channels},cap={capacity}")
        };
        let bench = paper_benchmark(index).expect("paper benchmark");
        prop_assert_eq!(extract_on(&spec, &bench), sim_reference(index), "{}", spec);
    }
}

/// The accounting side of the invariance property: on a contended
/// channel round-robin and equi-difference produce the *same bytes* but
/// visibly different dwell accounting — rr stalls nearly every probe
/// where ed runs most of its codeword burst clean.
#[test]
fn policies_differ_only_in_dwell_accounting() {
    let bench = paper_benchmark(6).unwrap();
    let registry = BackendRegistry::standard();
    let contend = |spec: &str| {
        let backend = registry.resolve(spec).unwrap();
        let results = BatchExtractor::new()
            .with_jobs(4)
            .run(&FastExtractor::new(), 4, |_| {
                backend
                    .session(SourceScenario::new(bench.csd.clone()))
                    .expect("backend opens")
            });
        let pool = backend
            .channel_pool()
            .expect("mux exposes its pool")
            .clone();
        (results, pool.stats())
    };
    let (rr_results, rr) = contend("multiplexed:1,cap=4");
    let (ed_results, ed) = contend("multiplexed:1,cap=4,policy=ed,w=4");

    for (r, e) in rr_results.iter().zip(&ed_results) {
        assert_eq!(r.scatter, e.scatter, "bytes must not depend on the policy");
        let (Ok(rr_report), Ok(ed_report)) = (&r.outcome, &e.outcome) else {
            panic!("benchmark 6 extracts under both policies");
        };
        assert_eq!(ed_report.slope_h.to_bits(), rr_report.slope_h.to_bits());
        assert_eq!(ed_report.coverage.to_bits(), rr_report.coverage.to_bits());
    }

    let acquires = |stats: &MuxStats| {
        stats.channels.iter().fold((0u64, 0u64), |(c, s), chan| {
            (c + chan.clean, s + chan.stalled)
        })
    };
    let (rr_clean, rr_stalled) = acquires(&rr);
    let (ed_clean, ed_stalled) = acquires(&ed);
    assert_eq!(
        rr_clean + rr_stalled,
        ed_clean + ed_stalled,
        "same probe count"
    );
    // Steady-state stall *time* converges (ed concentrates a frame's
    // worth of waiting at each burst boundary), but conflict avoidance
    // collapses the number of stalled acquires: most of an ed codeword
    // burst lands back-to-back where rr stalls probe after probe.
    assert!(
        ed_clean > rr_clean,
        "equi-difference must run more clean acquires: ed {ed_clean} vs rr {rr_clean}"
    );
    assert!(
        ed_stalled < rr_stalled,
        "conflict avoidance must cut stalled acquires: ed {ed_stalled} vs rr {rr_stalled}"
    );
}
