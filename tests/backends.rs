//! Tier-1 backend-layer coverage: the registry resolves every shipped
//! spec form and rejects hostile ones at the door, and record → replay
//! tapes reproduce full extraction runs bit-identically — the
//! hardware-free regression fixtures the `SourceBackend` redesign
//! exists for.

use fastvg::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fastvg-tier1-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A full extraction through a backend, batch path included.
fn extract_on(backend: &dyn SourceBackend, bench: &GeneratedBenchmark) -> ExtractionReport {
    let scenario = SourceScenario::new(bench.csd.clone())
        .with_label(format!("bench{:02}", bench.spec.index))
        .with_seed(bench.spec.seed);
    let mut session = backend.session(scenario).expect("backend opens");
    extract_with(&FastExtractor::new(), &mut session).expect("healthy benchmark extracts")
}

#[test]
fn registry_resolves_every_shipped_scheme_and_rejects_hostile_specs() {
    let registry = BackendRegistry::standard();
    assert_eq!(
        registry.schemes(),
        vec![
            "sim",
            "throttled",
            "replay",
            "record",
            "hwsim",
            "multiplexed"
        ]
    );

    for good in [
        "sim",
        "throttled:0",
        "throttled:50us",
        "throttled:2ms+sim",
        "replay:some/tape.tape",
        "record:tapes/{label}.tape",
        "record:tapes/{label}.tape+throttled:1ms",
        "hwsim:nominal",
        "hwsim:hostile",
        "hwsim:aged,dead=0.05,bits=12",
        "throttled:1ms+hwsim:worn",
        "record:tapes/{label}.tape+hwsim:hostile",
    ] {
        assert!(registry.resolve(good).is_ok(), "{good} must resolve");
    }
    for bad in [
        "",                       // no scheme
        "hardware:qpu0",          // unknown scheme
        "sim:extra",              // sim takes no args
        "throttled:50",           // dwell without unit
        "throttled:-5ms",         // negative dwell
        "throttled:11s",          // dwell over the cap
        "throttled:1.5ms",        // fractional dwell
        "replay:",                // no tape path
        "record:",                // no tape path
        "hwsim:",                 // no preset
        "hwsim:warp",             // unknown preset
        "hwsim:nominal,bits=4",   // DAC too coarse
        "hwsim:nominal,dead=2.0", // fraction out of range
        "hwsim:nominal,xt=nan",   // non-finite knob
    ] {
        assert!(registry.resolve(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn recorded_tapes_replay_bit_identically_across_the_suite() {
    // Satellite acceptance: record → replay over ≥3 of the 12 paper
    // benchmarks asserts bit-identical ExtractionReports.
    let dir = tmp_dir("roundtrip");
    let registry = BackendRegistry::standard();
    let recorder = registry
        .resolve(&format!("record:{}/{{label}}.tape", dir.display()))
        .unwrap();
    let replayer = registry
        .resolve(&format!("replay:{}/{{label}}.tape", dir.display()))
        .unwrap();

    for index in [3, 6, 12] {
        let bench = paper_benchmark(index).expect("paper benchmark");
        let recorded = extract_on(recorder.as_ref(), &bench);
        let replayed = extract_on(replayer.as_ref(), &bench);

        // Slopes, matrix, probe counts: bitwise.
        assert_eq!(
            replayed.slope_h.to_bits(),
            recorded.slope_h.to_bits(),
            "benchmark {index}: slope_h"
        );
        assert_eq!(
            replayed.slope_v.to_bits(),
            recorded.slope_v.to_bits(),
            "benchmark {index}: slope_v"
        );
        assert_eq!(replayed.matrix, recorded.matrix, "benchmark {index}");
        assert_eq!(replayed.probes, recorded.probes, "benchmark {index}");
        assert_eq!(replayed.unique_pixels, recorded.unique_pixels);
        assert_eq!(replayed.coverage.to_bits(), recorded.coverage.to_bits());
        assert_eq!(replayed.simulated_dwell, recorded.simulated_dwell);
        // Per-stage probe accounting survives too (elapsed is wall
        // clock and legitimately differs).
        let probes = |r: &ExtractionReport| -> Vec<(Stage, usize)> {
            r.stages.iter().map(|s| (s.stage, s.probes)).collect()
        };
        assert_eq!(probes(&replayed), probes(&recorded));

        // Scatters: the probe *sequence* is pinned by the tape, so the
        // replayed session's scatter matches a fresh sim run's.
        let scenario = || {
            SourceScenario::new(bench.csd.clone())
                .with_label(format!("bench{:02}", bench.spec.index))
        };
        let mut sim = SimBackend.session(scenario()).unwrap();
        let _ = extract_with(&FastExtractor::new(), &mut sim).unwrap();
        let mut rep = replayer.session(scenario()).unwrap();
        let _ = extract_with(&FastExtractor::new(), &mut rep).unwrap();
        assert_eq!(rep.scatter(), sim.scatter(), "benchmark {index}: scatter");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tapes_survive_disk_round_trips_losslessly() {
    let dir = tmp_dir("tape-io");
    let bench = paper_benchmark(6).unwrap();
    let recorder = BackendRegistry::standard()
        .resolve(&format!("record:{}/t.tape", dir.display()))
        .unwrap();
    let report = extract_on(recorder.as_ref(), &bench);

    let tape = Tape::load(&dir.join("t.tape")).expect("tape parses");
    assert_eq!(tape.probes.len(), report.probes, "one line per probe");
    assert_eq!(tape.header.seed, bench.spec.seed);
    assert_eq!(tape.header.dwell, Duration::ZERO, "sim imposes no dwell");
    // Text round trip is exact.
    assert_eq!(Tape::parse(&tape.to_text()).unwrap(), tape);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_replay_trips_on_probe_sequence_divergence() {
    let dir = tmp_dir("divergence");
    let bench = paper_benchmark(6).unwrap();
    let recorder = BackendRegistry::standard()
        .resolve(&format!("record:{}/d.tape", dir.display()))
        .unwrap();
    let _ = extract_on(recorder.as_ref(), &bench);

    // A consumer with a *different* probe plan (shrinking disabled
    // changes the sweep sequence) must hit the strict-mode tripwire,
    // not silently read wrong currents.
    let replayer = BackendRegistry::standard()
        .resolve(&format!("replay:{}/d.tape", dir.display()))
        .unwrap();
    let mut session = replayer
        .session(SourceScenario::new(bench.csd.clone()))
        .unwrap();
    let diverging = FastExtractor::with_config(ExtractorConfig {
        sweep: SweepConfig { shrink: false },
        ..ExtractorConfig::default()
    });
    let tripped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = extract_with(&diverging, &mut session);
    }));
    let message = match tripped {
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
        Ok(_) => panic!("diverging consumer must trip the strict replay"),
    };
    assert!(message.contains("replay divergence"), "{message}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn throttled_backend_sleeps_real_dwell_without_changing_results() {
    let bench = paper_benchmark(6).unwrap();
    let registry = BackendRegistry::standard();
    let plain = extract_on(registry.resolve("sim").unwrap().as_ref(), &bench);
    let started = std::time::Instant::now();
    let throttled = extract_on(
        registry.resolve("throttled:200us").unwrap().as_ref(),
        &bench,
    );
    let wall = started.elapsed();

    assert_eq!(throttled.slope_h.to_bits(), plain.slope_h.to_bits());
    assert_eq!(throttled.slope_v.to_bits(), plain.slope_v.to_bits());
    assert_eq!(throttled.probes, plain.probes);
    assert!(
        wall >= Duration::from_micros(200) * plain.probes as u32,
        "every probe must dwell: {} probes took {wall:?}",
        plain.probes
    );
}

#[test]
fn backends_run_through_the_erased_batch_path() {
    // The point of the redesign: BatchExtractor's &dyn Extractor path
    // accepts runtime-selected sources, bit-identical to compile-time
    // CsdSource sessions.
    let suite: Vec<GeneratedBenchmark> = (3..=5).map(|i| paper_benchmark(i).unwrap()).collect();
    let backend = BackendRegistry::standard().resolve("sim").unwrap();

    let typed = BatchExtractor::new()
        .with_jobs(2)
        .run(&FastExtractor::new(), suite.len(), |i| {
            MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
        });
    let erased = BatchExtractor::new()
        .with_jobs(2)
        .run(&FastExtractor::new(), suite.len(), |i| {
            backend
                .session(SourceScenario::new(suite[i].csd.clone()))
                .expect("sim opens")
        });
    for (t, e) in typed.iter().zip(&erased) {
        assert_eq!(t.probes, e.probes);
        assert_eq!(t.scatter, e.scatter);
        match (&t.outcome, &e.outcome) {
            (Ok(tr), Ok(er)) => {
                assert_eq!(tr.slope_h.to_bits(), er.slope_h.to_bits());
                assert_eq!(tr.slope_v.to_bits(), er.slope_v.to_bits());
            }
            (t, e) => panic!("outcome mismatch: {t:?} vs {e:?}"),
        }
    }
}
