//! Integration tests for the unified extraction API: trait-object
//! dispatch across every shipped method, pipeline/observer event
//! ordering and completeness, and the structured `ExtractError`
//! taxonomy.

use fastvg::prelude::*;
use std::error::Error as _;
use std::sync::{Arc, Mutex};

/// Every shipped method runs through `Box<dyn Extractor>` on a paper
/// benchmark and reports the unified outcome.
#[test]
fn trait_object_dispatch_covers_all_methods() {
    let bench = paper_benchmark(6).expect("benchmark generates");
    let methods: Vec<Box<dyn Extractor>> = vec![
        Box::new(FastExtractor::new()),
        Box::new(HoughBaseline::new()),
        Box::new(TuningLoop::new()),
    ];
    let criteria = SuccessCriteria::default();

    for method in &methods {
        let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        let report = extract_with(method.as_ref(), &mut session)
            .unwrap_or_else(|e| panic!("{} failed: {e}", method.method()));
        assert_eq!(report.method, method.method());
        assert!(
            criteria.judge(report.alpha12(), report.alpha21(), &bench.truth),
            "{}: alphas off truth ({:.3}, {:.3})",
            report.method,
            report.alpha12(),
            report.alpha21()
        );
        assert_eq!(report.probes, session.probe_count());
        assert!(!report.stages.is_empty(), "{}: no stages", report.method);
        assert_eq!(
            report.probes,
            report.stages.iter().map(|s| s.probes).sum::<usize>(),
            "{}: stage probe accounting must add up",
            report.method
        );
        // The typed trace rides inside the unified report.
        match report.method {
            Method::HoughBaseline => assert!(report.details.baseline().is_some()),
            _ => assert!(report.details.fast().is_some()),
        }
    }
}

/// The fast method probes a fraction of what the baseline probes — the
/// paper's headline — and the unified reports expose it uniformly.
#[test]
fn unified_reports_preserve_the_papers_contrast() {
    let bench = paper_benchmark(6).expect("benchmark generates");
    let run = |e: &dyn Extractor| {
        let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
        extract_with(e, &mut session).expect("clean benchmark extracts")
    };
    let fast = run(&FastExtractor::new());
    let base = run(&HoughBaseline::new());
    assert!(fast.coverage < 0.25);
    assert!((base.coverage - 1.0).abs() < 1e-12);
    assert!(fast.probes * 4 < base.probes);
    assert!(fast.total_runtime() < base.total_runtime());
}

/// Observer event stream: starts with `on_start`, ends with
/// `on_complete`, stages nest and pair up, and exactly one costed probe
/// event fires per dwell-costing probe.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<String>>,
}

impl Observer for Recorder {
    fn on_start(&self, method: Method) {
        self.events.lock().unwrap().push(format!("start {method}"));
    }
    fn on_stage_start(&self, stage: Stage) {
        self.events.lock().unwrap().push(format!("+{stage}"));
    }
    fn on_probe(&self, probe: &ProbeObservation) {
        if probe.costed {
            self.events.lock().unwrap().push("p".into());
        }
    }
    fn on_stage_end(&self, timing: &StageTiming) {
        self.events
            .lock()
            .unwrap()
            .push(format!("-{}", timing.stage));
    }
    fn on_attempt_start(&self, attempt: usize, total: usize) {
        self.events
            .lock()
            .unwrap()
            .push(format!("attempt {attempt}/{total}"));
    }
    fn on_complete(&self, _report: &ExtractionReport) {
        self.events.lock().unwrap().push("complete".into());
    }
    fn on_error(&self, _error: &ExtractError) {
        self.events.lock().unwrap().push("error".into());
    }
}

#[test]
fn observer_events_are_ordered_and_complete() {
    let bench = paper_benchmark(6).expect("benchmark generates");
    let recorder = Arc::new(Recorder::default());
    let pipeline = Pipeline::fast()
        .with_retry(TuningLoop::new())
        .with_observer(recorder.clone())
        .build();
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let report = pipeline.run(&mut session).expect("pipeline extracts");

    let events = recorder.events.lock().unwrap();
    assert_eq!(events.first().map(String::as_str), Some("start Tuned Fast"));
    assert_eq!(events.get(1).map(String::as_str), Some("attempt 1/3"));
    assert_eq!(events.last().map(String::as_str), Some("complete"));

    let mut depth = 0usize;
    let mut costed = 0usize;
    let mut stage_pairs = 0usize;
    for e in events.iter() {
        if e == "p" {
            assert!(depth > 0, "probe event outside any stage");
            costed += 1;
        } else if e.starts_with('+') {
            depth += 1;
        } else if e.starts_with('-') {
            assert!(depth > 0, "stage end without matching start");
            depth -= 1;
            stage_pairs += 1;
        }
    }
    assert_eq!(depth, 0, "unbalanced stage events");
    assert_eq!(costed, report.probes, "one costed probe event per probe");
    assert_eq!(stage_pairs, report.stages.len());
    assert_eq!(report.attempts, 1, "clean data succeeds on rung 1");
}

#[test]
fn observer_sees_retries_and_errors_on_hopeless_data() {
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 64, 64).expect("grid");
    let flat = Csd::constant(grid, 1.0).expect("csd");
    let recorder = Arc::new(Recorder::default());
    let pipeline = Pipeline::tuned().with_observer(recorder.clone()).build();
    let mut session = MeasurementSession::new(CsdSource::new(flat));
    assert!(pipeline.run(&mut session).is_err());

    let events = recorder.events.lock().unwrap();
    assert_eq!(events.last().map(String::as_str), Some("error"));
    let attempts = events.iter().filter(|e| e.starts_with("attempt")).count();
    assert_eq!(attempts, 3, "all three rungs must be attempted");
}

/// The `ExtractError` taxonomy: constructors land in their category,
/// `Display` leads with it, and `source()` chains reach the originating
/// lower-crate errors.
#[test]
fn error_taxonomy_display_and_source_round_trip() {
    let cases: Vec<(ExtractError, ErrorCategory)> = vec![
        (ExtractError::window_too_small(20, 4), ErrorCategory::Probe),
        (
            ExtractError::degenerate_anchors((3, 3), (3, 3)),
            ErrorCategory::Geometry,
        ),
        (
            ExtractError::too_few_transition_points(0, 4),
            ErrorCategory::Geometry,
        ),
        (
            ExtractError::unphysical_slopes(0.5, -0.1),
            ErrorCategory::Fit,
        ),
        (ExtractError::low_contrast(0.1, 0.8), ErrorCategory::Verify),
    ];
    for (e, category) in &cases {
        assert_eq!(e.category(), *category, "{e}");
        assert!(
            e.to_string().starts_with(&category.to_string()),
            "display {e:?} must lead with {category}"
        );
        // Level 1 of the chain is the taxonomy sub-error whose message
        // is embedded in the top-level display.
        let inner = e.source().expect("taxonomy level present");
        assert!(
            e.to_string().contains(&inner.to_string()),
            "outer display should embed {inner}"
        );
    }

    // Real pipeline failures land in the right categories.
    let tiny_grid = VoltageGrid::new(0.0, 0.0, 1.0, 12, 12).expect("grid");
    let tiny = Csd::from_fn(tiny_grid, |v1, v2| v1 + v2).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(tiny));
    let err = FastExtractor::new().extract(&mut session).unwrap_err();
    assert_eq!(err.category(), ErrorCategory::Probe);
    assert!(matches!(
        err,
        ExtractError::Probe(ProbeError::WindowTooSmall { min: _, got: 12 })
    ));

    let flat_grid = VoltageGrid::new(0.0, 0.0, 1.0, 64, 64).expect("grid");
    let flat = Csd::constant(flat_grid, 1.0).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(flat));
    let err = FastExtractor::new().extract(&mut session).unwrap_err();
    assert_eq!(err.category(), ErrorCategory::Geometry);
}

/// Wrapped lower-crate errors chain through two `source()` levels to the
/// original error value.
#[test]
fn error_sources_chain_to_lower_crates() {
    let e = ExtractError::from(fastvg::vision::VisionError::NoEdges);
    assert_eq!(e.category(), ErrorCategory::Geometry);
    let level2 = e
        .source()
        .and_then(|s| s.source())
        .expect("two-level chain");
    assert!(level2
        .downcast_ref::<fastvg::vision::VisionError>()
        .is_some());

    let n = ExtractError::from(fastvg::numerics::NumericsError::EmptyInput);
    assert_eq!(n.category(), ErrorCategory::Fit);
    assert!(n
        .source()
        .and_then(|s| s.source())
        .and_then(|s| s.downcast_ref::<fastvg::numerics::NumericsError>())
        .is_some());
}

/// `BatchExtractor` accepts any extractor; results through the erased
/// path are bit-identical to the typed path.
#[test]
fn batch_runs_any_extractor_deterministically() {
    let suite: Vec<GeneratedBenchmark> = (3..=6)
        .map(|i| paper_benchmark(i).expect("benchmark generates"))
        .collect();
    let runner = BatchExtractor::new().with_jobs(2);

    let typed = runner.run_fast(suite.len(), |i| {
        MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
    });
    let erased = runner.run(&FastExtractor::new(), suite.len(), |i| {
        MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
    });
    for (t, e) in typed.iter().zip(&erased) {
        assert_eq!(t.probes, e.probes);
        assert_eq!(t.scatter, e.scatter);
        match (&t.outcome, &e.outcome) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.slope_h.to_bits(), b.slope_h.to_bits());
                assert_eq!(a.slope_v.to_bits(), b.slope_v.to_bits());
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            _ => panic!("typed and erased outcomes diverged"),
        }
    }

    // A retry-laddered pipeline drops into the same batch path.
    let pipeline = Pipeline::tuned().build();
    let outcomes = runner.run(&pipeline, suite.len(), |i| {
        MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
    });
    assert!(outcomes.iter().all(|o| o.is_ok()));
}
