//! Tier-1 remote-extraction coverage: a `fastvg-serve` daemon is a
//! drop-in `&dyn Extractor` — a [`RemoteExtractor`] and a local
//! [`Pipeline`] run through the *same* erased batch path and report
//! identical extractions — plus the `/healthz` build info and the
//! request-level backend validation the serving satellites added.

use fastvg::prelude::*;
use fastvg::serve::{start, REQUEST_BACKEND_SCHEMES};

fn boot() -> ServiceHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        extract_jobs: 2,
        ..ServeConfig::default()
    })
    .expect("daemon boots")
}

#[test]
fn remote_and_local_extractors_match_through_the_shared_batch_path() {
    let daemon = boot();
    let suite = paper_suite().expect("suite generates");
    let runner = BatchExtractor::new().with_jobs(2);

    // The acceptance path: both extractors are nothing but
    // `&dyn Extractor`s to the batch layer.
    let extractors: [Box<dyn Extractor>; 2] = [
        Box::new(Pipeline::fast().build()),
        Box::new(RemoteExtractor::new(daemon.addr().to_string())),
    ];
    let [local, remote] = extractors.map(|extractor| {
        runner.run(extractor.as_ref(), suite.len(), |i| {
            MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
        })
    });

    for ((l, r), bench) in local.iter().zip(&remote).zip(&suite) {
        let index = bench.spec.index;
        match (&l.outcome, &r.outcome) {
            (Ok(lr), Ok(rr)) => {
                assert_eq!(rr.method, lr.method, "benchmark {index}");
                assert_eq!(
                    rr.slope_h.to_bits(),
                    lr.slope_h.to_bits(),
                    "benchmark {index}: slope_h"
                );
                assert_eq!(
                    rr.slope_v.to_bits(),
                    lr.slope_v.to_bits(),
                    "benchmark {index}: slope_v"
                );
                assert_eq!(rr.matrix, lr.matrix, "benchmark {index}");
                assert_eq!(rr.probes, lr.probes, "benchmark {index}: probes");
                assert_eq!(rr.unique_pixels, lr.unique_pixels, "benchmark {index}");
                assert_eq!(
                    rr.coverage.to_bits(),
                    lr.coverage.to_bits(),
                    "benchmark {index}: coverage"
                );
            }
            (Err(le), Err(re)) => {
                // The suite's hard benchmarks fail the same way on both
                // sides, and the remote failure keeps the server-side
                // category.
                assert_eq!(
                    re.category(),
                    le.category(),
                    "benchmark {index}: {le} vs {re}"
                );
            }
            (l, r) => panic!("benchmark {index}: outcome mismatch — local {l:?}, remote {r:?}"),
        }
    }

    daemon.shutdown();
    daemon.join();
}

#[test]
fn healthz_reports_build_and_backend_info() {
    let daemon = boot();
    let mut client = Client::connect(&daemon.addr().to_string()).expect("connect");
    let doc = client.get("/healthz").expect("healthz").json().unwrap();

    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "healthz must report the crate version"
    );
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("sim"));
    let schemes: Vec<&str> = doc
        .get("backends")
        .and_then(Json::as_arr)
        .expect("enabled backends listed")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(
        schemes,
        vec![
            "sim",
            "throttled",
            "replay",
            "record",
            "hwsim",
            "multiplexed"
        ]
    );
    let request_schemes: Vec<&str> = doc
        .get("request_backends")
        .and_then(Json::as_arr)
        .expect("request-reachable backends listed")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(request_schemes, REQUEST_BACKEND_SCHEMES.to_vec());

    daemon.shutdown();
    daemon.join();
}

#[test]
fn request_backends_are_validated_at_the_door() {
    let daemon = boot();
    let mut client = Client::connect(&daemon.addr().to_string()).expect("connect");

    // A request-selected throttled backend extracts identically to sim
    // (dwell changes wall time, never readings) but caches separately.
    let sim = client
        .post("/extract?wait", br#"{"benchmark": 6}"#)
        .expect("sim request");
    assert_eq!(sim.status, 200);
    let throttled = client
        .post(
            "/extract?wait",
            br#"{"benchmark": 6, "backend": "throttled:100us"}"#,
        )
        .expect("throttled request");
    assert_eq!(throttled.status, 200);
    assert_eq!(
        throttled.header("x-fastvg-cache"),
        Some("miss"),
        "a different backend is a different cache entry"
    );
    let report = |response: &fastvg::serve::ClientResponse| {
        ExtractionReport::from_json(response.json().unwrap().get("report").unwrap()).unwrap()
    };
    let (a, b) = (report(&sim), report(&throttled));
    assert_eq!(a.slope_h.to_bits(), b.slope_h.to_bits());
    assert_eq!(a.probes, b.probes);

    // Dwell spellings normalize into one cache entry.
    let again = client
        .post(
            "/extract?wait",
            br#"{"benchmark": 6, "backend": "throttled:100000ns"}"#,
        )
        .expect("normalized request");
    assert_eq!(again.header("x-fastvg-cache"), Some("hit"));

    // A request-selected hwsim profile is wire-reachable: its dwell is
    // virtual accounting, so the dwell cap passes, and `hwsim:nominal`
    // reads bit-identically to sim while caching separately.
    let hwsim = client
        .post(
            "/extract?wait",
            br#"{"benchmark": 6, "backend": "hwsim:nominal"}"#,
        )
        .expect("hwsim request");
    assert_eq!(hwsim.status, 200);
    assert_eq!(hwsim.header("x-fastvg-cache"), Some("miss"));
    let c = report(&hwsim);
    assert_eq!(a.slope_h.to_bits(), c.slope_h.to_bits());
    assert_eq!(a.probes, c.probes);

    // A request-selected multiplexed pool is wire-reachable, including
    // the inner-spec carve-out (`+inner` is only legal under the
    // `multiplexed:` scheme, and the inner spec re-enters the same
    // allowlist), and reads bit-identically to sim.
    let muxed = client
        .post(
            "/extract?wait",
            br#"{"benchmark": 6, "backend": "multiplexed:1+throttled:100us"}"#,
        )
        .expect("multiplexed request");
    assert_eq!(muxed.status, 200);
    assert_eq!(muxed.header("x-fastvg-cache"), Some("miss"));
    let d = report(&muxed);
    assert_eq!(a.slope_h.to_bits(), d.slope_h.to_bits());
    assert_eq!(a.probes, d.probes);

    // Hostile backends bounce with 400 at the door: tape schemes touch
    // the server's filesystem, compositions smuggle them in (directly
    // or through a multiplexed inner spec), huge dwells park workers,
    // unknown schemes don't exist, and malformed hwsim or mux specs die
    // in the registry's range checks.
    for hostile in [
        r#"{"benchmark": 6, "backend": "record:/tmp/evil.tape"}"#,
        r#"{"benchmark": 6, "backend": "replay:/etc/passwd"}"#,
        r#"{"benchmark": 6, "backend": "throttled:1ms+record:/tmp/evil.tape"}"#,
        r#"{"benchmark": 6, "backend": "throttled:1ms+hwsim:nominal"}"#,
        r#"{"benchmark": 6, "backend": "throttled:10s"}"#,
        r#"{"benchmark": 6, "backend": "throttled:oops"}"#,
        r#"{"benchmark": 6, "backend": "hardware:qpu0"}"#,
        r#"{"benchmark": 6, "backend": "hwsim:"}"#,
        r#"{"benchmark": 6, "backend": "hwsim:warp"}"#,
        r#"{"benchmark": 6, "backend": "hwsim:nominal,dead=2.0"}"#,
        r#"{"benchmark": 6, "backend": "hwsim:nominal,bits=4"}"#,
        r#"{"benchmark": 6, "backend": "multiplexed:0"}"#,
        r#"{"benchmark": 6, "backend": "multiplexed:1,cap=4,cap=8"}"#,
        r#"{"benchmark": 6, "backend": "multiplexed:1+record:/tmp/evil.tape"}"#,
        r#"{"benchmark": 6, "backend": "multiplexed:1+throttled:10s"}"#,
        r#"{"benchmark": 6, "backend": 3}"#,
    ] {
        let response = client
            .post("/extract?wait", hostile.as_bytes())
            .expect("request completes");
        assert_eq!(response.status, 400, "{hostile}");
    }

    daemon.shutdown();
    daemon.join();
}
