//! Cross-crate integration: benchmark diagrams survive serialization and
//! replay identically through the instrument layer.

use fastvg::csd::io::{from_csv, to_csv};
use fastvg::csd::render::to_pgm;
use fastvg::dataset::paper_benchmark;
use fastvg::instrument::{CsdSource, CurrentSource};

#[test]
fn csv_round_trip_preserves_benchmark() {
    let bench = paper_benchmark(3).expect("benchmark generates");
    let text = to_csv(&bench.csd);
    let back = from_csv(&text).expect("round trip parses");
    assert_eq!(back, bench.csd);
}

#[test]
fn replayed_source_is_bit_identical() {
    let bench = paper_benchmark(4).expect("benchmark generates");
    let text = to_csv(&bench.csd);
    let replayed = from_csv(&text).expect("round trip parses");

    let mut original = CsdSource::new(bench.csd.clone());
    let mut replay = CsdSource::new(replayed);
    let g = bench.csd.grid();
    for y in (0..g.height()).step_by(7) {
        for x in (0..g.width()).step_by(5) {
            let (v1, v2) = g.voltage_of(x, y);
            assert_eq!(original.current(v1, v2), replay.current(v1, v2));
        }
    }
}

#[test]
fn pgm_export_has_correct_payload_size() {
    let bench = paper_benchmark(5).expect("benchmark generates");
    let bytes = to_pgm(&bench.csd).expect("renders");
    let (w, h) = bench.csd.size();
    let header = format!("P5\n{w} {h}\n255\n");
    assert_eq!(bytes.len(), header.len() + w * h);
    assert!(bytes.starts_with(header.as_bytes()));
}

#[test]
fn generation_is_reproducible_across_calls() {
    let a = paper_benchmark(10).expect("generates");
    let b = paper_benchmark(10).expect("generates");
    assert_eq!(a.csd, b.csd);
    assert_eq!(a.truth.slope_h, b.truth.slope_h);
    assert_eq!(a.truth.slope_v, b.truth.slope_v);
}
