//! Tier-1 wire round-trips: every document the protocol transmits —
//! [`ExtractionReport`], every [`ExtractError`] category via
//! [`WireFailure`], benchmark specs — serializes and parses back
//! losslessly through `fastvg::wire::Json`.

use fastvg::prelude::*;

fn session_for(bench: &GeneratedBenchmark) -> MeasurementSession<CsdSource> {
    MeasurementSession::new(CsdSource::new(bench.csd.clone()))
}

#[test]
fn every_method_report_round_trips_losslessly() {
    let bench = paper_benchmark(6).expect("paper benchmark");
    let methods: Vec<Box<dyn Extractor>> = vec![
        Box::new(FastExtractor::new()),
        Box::new(HoughBaseline::new()),
        Box::new(TuningLoop::new()),
    ];
    for method in &methods {
        let mut session = session_for(&bench);
        let report = extract_with(method.as_ref(), &mut session).expect("extraction");

        let text = report.to_json().dump();
        let back = ExtractionReport::from_json(&Json::parse(&text).unwrap()).unwrap();

        // Every transmitted field survives bit-for-bit.
        assert_eq!(back.method, report.method);
        assert_eq!(back.slope_h.to_bits(), report.slope_h.to_bits());
        assert_eq!(back.slope_v.to_bits(), report.slope_v.to_bits());
        assert_eq!(back.matrix, report.matrix);
        assert_eq!(back.alpha12().to_bits(), report.alpha12().to_bits());
        assert_eq!(back.probes, report.probes);
        assert_eq!(back.unique_pixels, report.unique_pixels);
        assert_eq!(back.coverage.to_bits(), report.coverage.to_bits());
        assert_eq!(back.simulated_dwell, report.simulated_dwell);
        assert_eq!(back.compute_time, report.compute_time);
        assert_eq!(back.attempts, report.attempts);
        assert_eq!(back.retry_failures, report.retry_failures);
        assert_eq!(back.stages, report.stages);
        assert_eq!(
            back.details,
            ExtractionDetails::Summary(report.details.summarize())
        );
        // A parsed report is a fixpoint: re-serialization is identical.
        assert_eq!(back.to_json().dump(), text, "{}", report.method);
    }
}

#[test]
fn every_error_category_round_trips_with_flattened_chain() {
    // One representative error per taxonomy category, including ones
    // whose source() chain reaches the lower crates.
    let errors: Vec<ExtractError> = vec![
        ExtractError::window_too_small(20, 5),
        ExtractError::degenerate_anchors((1, 2), (3, 4)),
        ExtractError::too_few_transition_points(1, 4),
        ExtractError::unphysical_slopes(0.5, -0.1),
        ExtractError::low_contrast(0.12, 0.8),
        ExtractError::from(fastvg::vision::VisionError::NoEdges),
        ExtractError::from(fastvg::numerics::NumericsError::EmptyInput),
    ];
    let mut seen = std::collections::HashSet::new();
    for error in &errors {
        let wire = error.to_wire();
        seen.insert(wire.category);

        // The chain flattens the full source() walk, message by message.
        let mut expected = Vec::new();
        let mut cursor = std::error::Error::source(error);
        while let Some(e) = cursor {
            expected.push(e.to_string());
            cursor = e.source();
        }
        assert_eq!(wire.chain, expected, "{error}");
        assert_eq!(wire.message, error.to_string());

        let text = wire.to_json().dump();
        let back = WireFailure::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, wire, "{error}");
        assert_eq!(back.to_json().dump(), text);
    }
    assert_eq!(seen.len(), 4, "all four categories exercised");
}

#[test]
fn specs_and_stage_timings_round_trip() {
    for spec in fastvg::dataset::paper_specs() {
        let text = spec.to_json().dump();
        let back = BenchmarkSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.size, spec.size);
        assert_eq!(back.seed, spec.seed);
        assert_eq!(back.lever_arms, spec.lever_arms);
        assert_eq!(back.noise, spec.noise);
    }
    let timing = StageTiming {
        stage: Stage::RowSweep,
        probes: 321,
        elapsed: std::time::Duration::from_nanos(123_456_789),
    };
    let back = StageTiming::from_json(&Json::parse(&timing.to_json().dump()).unwrap()).unwrap();
    assert_eq!(back, timing);
}

#[test]
fn wire_tokens_are_stable() {
    // The protocol document pins these strings; breaking them breaks
    // deployed clients.
    assert_eq!(Method::FastExtraction.wire_name(), "fast");
    assert_eq!(Method::HoughBaseline.wire_name(), "hough");
    assert_eq!(Method::TunedFast.wire_name(), "tuned");
    assert_eq!(ErrorCategory::Probe.name(), "probe");
    assert_eq!(ErrorCategory::Geometry.name(), "geometry");
    assert_eq!(ErrorCategory::Fit.name(), "fit");
    assert_eq!(ErrorCategory::Verify.name(), "verify");
    assert_eq!(Stage::Anchors.name(), "anchors");
    assert_eq!(Stage::RowSweep.name(), "row-sweep");
}
