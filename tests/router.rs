//! Tier-1 fleet smoke: a router over two daemons is indistinguishable
//! from a single daemon (bitwise on the deterministic report fields,
//! byte-identical on cache hits), survives a mid-suite shard kill with
//! zero failed requests, and peers warm caches onto freshly joined
//! shards. (The ring/health/proxy unit matrix lives in `crates/router`.)

use fastvg::prelude::*;
use fastvg::router::{start as start_router, RouterConfig, ShardSpec};
use fastvg::serve::{start as start_daemon, ServeConfig, ServiceHandle};
use std::time::Duration;

fn daemon() -> ServiceHandle {
    start_daemon(ServeConfig {
        addr: "127.0.0.1:0".into(),
        extract_jobs: 2,
        ..ServeConfig::default()
    })
    .expect("daemon boots")
}

fn router_over(shards: &[&ServiceHandle]) -> fastvg::router::RouterHandle {
    start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: shards
            .iter()
            .map(|d| ShardSpec::new(d.addr().to_string()))
            .collect(),
        // Fast enough that the kill sweep ejects the dead shard within
        // the test, slow enough not to spam probe traffic.
        health_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("router boots")
}

fn sweep(client: &mut Client) -> Vec<ClientResponseLite> {
    (1..=12)
        .map(|bench| {
            let body = format!("{{\"benchmark\": {bench}, \"method\": \"fast\"}}");
            let response = client
                .post("/extract?wait", body.as_bytes())
                .unwrap_or_else(|e| panic!("benchmark {bench} through fleet: {e}"));
            assert_eq!(response.status, 200, "benchmark {bench} must be served");
            ClientResponseLite {
                cache: response.header("x-fastvg-cache").unwrap_or("?").to_string(),
                status: response
                    .header("x-fastvg-status")
                    .unwrap_or("?")
                    .to_string(),
                body: response.body.clone(),
            }
        })
        .collect()
}

struct ClientResponseLite {
    cache: String,
    status: String,
    body: Vec<u8>,
}

/// The deterministic slice of a result document: outcome plus (for
/// successes) the exact slope bits and probe count. Wall-clock timing
/// fields legitimately differ between runs, so raw-byte comparison is
/// only valid for cache-replayed bodies.
fn deterministic_fields(body: &[u8]) -> (bool, Option<(u64, u64, u64)>) {
    let doc = Json::parse(String::from_utf8_lossy(body).trim_end()).expect("result document");
    let ok = doc.get("ok").and_then(Json::as_bool).expect("ok flag");
    let report = doc.get("report").map(|r| {
        let report = ExtractionReport::from_json(r).expect("report parses");
        (
            report.slope_h.to_bits(),
            report.slope_v.to_bits(),
            report.probes as u64,
        )
    });
    (ok, report)
}

#[test]
fn router_matches_direct_daemon_and_survives_shard_kill() {
    let a = daemon();
    let b = daemon();
    let fleet = router_over(&[&a, &b]);
    let mut via_router = Client::connect(&fleet.addr().to_string()).expect("connect router");

    // The router speaks the daemon's own healthz dialect, aggregated.
    let health = via_router.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let doc = health.json().unwrap();
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(doc.get("shards_total").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("shards_healthy").and_then(Json::as_u64), Some(2));

    // Cold sweep through the router ≡ a direct daemon, benchmark by
    // benchmark, on every deterministic field.
    let cold = sweep(&mut via_router);
    let direct_daemon = daemon();
    let mut direct = Client::connect(&direct_daemon.addr().to_string()).expect("connect direct");
    let reference = sweep(&mut direct);
    for (bench, (through, alone)) in cold.iter().zip(&reference).enumerate() {
        assert_eq!(
            deterministic_fields(&through.body),
            deterministic_fields(&alone.body),
            "benchmark {} differs through the router",
            bench + 1
        );
        assert_eq!(through.status, alone.status, "benchmark {}", bench + 1);
    }
    direct_daemon.shutdown();

    // Hot sweep: every request is a fleet cache hit, byte-identical.
    let hot = sweep(&mut via_router);
    for (bench, (h, c)) in hot.iter().zip(&cold).enumerate() {
        assert_eq!(h.cache, "hit", "benchmark {} should be warm", bench + 1);
        assert_eq!(
            h.body,
            c.body,
            "benchmark {} hot body must be byte-identical",
            bench + 1
        );
    }

    // Kill shard B mid-suite: the router must keep answering every
    // request (failover + recompute on A), with zero failures.
    let mut killed = Vec::new();
    for bench in 1..=12 {
        if bench == 4 {
            b.shutdown();
        }
        let body = format!("{{\"benchmark\": {bench}, \"method\": \"fast\"}}");
        let response = via_router
            .post("/extract?wait", body.as_bytes())
            .unwrap_or_else(|e| panic!("benchmark {bench} during shard kill: {e}"));
        assert_eq!(
            response.status, 200,
            "benchmark {bench} failed during the shard kill"
        );
        killed.push(ClientResponseLite {
            cache: response.header("x-fastvg-cache").unwrap_or("?").to_string(),
            status: response
                .header("x-fastvg-status")
                .unwrap_or("?")
                .to_string(),
            body: response.body.clone(),
        });
    }
    b.join();
    for (bench, (k, c)) in killed.iter().zip(&cold).enumerate() {
        assert_eq!(
            deterministic_fields(&k.body),
            deterministic_fields(&c.body),
            "benchmark {} changed after the shard kill",
            bench + 1
        );
        assert_eq!(k.status, c.status, "benchmark {}", bench + 1);
    }

    // The fleet view reflects the loss; the router itself stays healthy.
    let health = via_router.get("/healthz").expect("healthz after kill");
    assert_eq!(health.status, 200);
    let doc = health.json().unwrap();
    assert_eq!(doc.get("shards_healthy").and_then(Json::as_u64), Some(1));

    // One more sweep consolidates every key onto A: entries that lived
    // only in B's cache (hits served before the kill) are recomputed and
    // cached on the survivor. A's cache now holds all 12 bodies.
    let consolidated = sweep(&mut via_router);

    fleet.shutdown();
    fleet.join(); // returning proves workers, prober and reactor drained

    // Cache peering: resharding onto a fleet with a brand-new empty
    // shard serves warm keys from the sibling (header `peer`), with
    // bodies byte-identical to the warm shard's stored bytes, and seeds
    // the new owner so the *next* sweep hits locally everywhere.
    let fresh = daemon();
    let refleet = router_over(&[&a, &fresh]);
    let mut via_refleet = Client::connect(&refleet.addr().to_string()).expect("connect refleet");
    let peered = sweep(&mut via_refleet);
    let peer_count = peered.iter().filter(|r| r.cache == "peer").count();
    assert!(
        peer_count > 0,
        "resharding 12 keys onto a new shard must peer some of them, got {:?}",
        peered.iter().map(|r| r.cache.as_str()).collect::<Vec<_>>()
    );
    for (bench, r) in peered.iter().enumerate() {
        assert!(
            r.cache == "peer" || r.cache == "hit",
            "benchmark {} recomputed despite a warm sibling (cache={})",
            bench + 1,
            r.cache
        );
        // Shard A's cache holds exactly the consolidated bodies, so
        // every relayed answer — owner hit or peer — must match them
        // byte-for-byte.
        assert_eq!(
            r.body,
            consolidated[bench].body,
            "benchmark {} peered body must be byte-identical to the warm shard's bytes",
            bench + 1
        );
    }
    let sealed = sweep(&mut via_refleet);
    for (bench, r) in sealed.iter().enumerate() {
        assert_eq!(
            r.cache,
            "hit",
            "benchmark {} owner should be seeded after peering",
            bench + 1
        );
    }

    // Peer traffic is observable on the router's metrics surface.
    let metrics = via_refleet.get("/metrics").expect("metrics");
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(
        text.contains("fastvg_router_routed_total{cache=\"peer\"}"),
        "router metrics must expose peer routing"
    );

    refleet.shutdown();
    refleet.join();
    a.shutdown();
    fresh.shutdown();
    a.join();
    fresh.join();
}
