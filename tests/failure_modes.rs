//! Failure-injection integration tests: every pathological input must
//! produce a clean error (or a clean rejection), never a panic or a
//! silently wrong matrix.

use fastvg::core::baseline::HoughBaseline;
use fastvg::core::extraction::FastExtractor;
use fastvg::core::report::SuccessCriteria;
use fastvg::core::tuning::TuningLoop;
use fastvg::core::{ErrorCategory, ExtractError, ProbeError};
use fastvg::csd::{Csd, VoltageGrid};
use fastvg::dataset::{generate, zoo_specs, Severity, ZooFamily, DEFAULT_ZOO_SEED};
use fastvg::instrument::{
    BackendRegistry, CsdSource, FnSource, MeasurementSession, SourceScenario, VoltageWindow,
};

fn window(n: usize) -> VoltageWindow {
    VoltageWindow {
        x_min: 0.0,
        y_min: 0.0,
        x_max: (n - 1) as f64,
        y_max: (n - 1) as f64,
        delta: 1.0,
    }
}

#[test]
fn flat_diagram_fails_cleanly_everywhere() {
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 64, 64).expect("grid");
    let flat = Csd::constant(grid, 2.5).expect("csd");

    let mut s1 = MeasurementSession::new(CsdSource::new(flat.clone()));
    assert!(FastExtractor::new().extract(&mut s1).is_err());

    let mut s2 = MeasurementSession::new(CsdSource::new(flat.clone()));
    assert!(HoughBaseline::new().extract(&mut s2).is_err());

    let mut s3 = MeasurementSession::new(CsdSource::new(flat));
    let outcome = TuningLoop::new().run(&mut s3);
    assert!(outcome.result.is_err());
}

#[test]
fn pure_noise_fails_or_is_rejected() {
    // A deterministic hash-noise source with no structure at all.
    let noise = FnSource::new(
        |v1: f64, v2: f64| {
            let h = (v1 * 12.9898 + v2 * 78.233).sin() * 43758.5453;
            h - h.floor()
        },
        window(100),
    );
    let mut session = MeasurementSession::new(noise);
    match FastExtractor::new().extract(&mut session) {
        Err(_) => {} // the expected outcome
        Ok(r) => {
            // If a fluke geometry slips through it must at least satisfy
            // the physics bounds (sign pattern) — never arbitrary values.
            assert!(r.slope_v < -1.0);
            assert!(r.slope_h < 0.0 && r.slope_h > -1.0);
        }
    }
}

#[test]
fn window_too_small_is_reported() {
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 12, 12).expect("grid");
    let csd = Csd::from_fn(grid, |v1, v2| v1 + v2).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(csd));
    let err = FastExtractor::new().extract(&mut session).unwrap_err();
    assert!(
        matches!(err, ExtractError::Probe(ProbeError::WindowTooSmall { .. })),
        "{err}"
    );
}

#[test]
fn monotone_gradient_without_lines_is_rejected() {
    // A smooth ramp has gradients everywhere but no transition lines; the
    // fitted "lines" must fail the physics validation.
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 80, 80).expect("grid");
    let ramp = Csd::from_fn(grid, |v1, v2| -0.05 * (v1 + 0.5 * v2)).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(ramp));
    let r = FastExtractor::new().extract(&mut session);
    assert!(r.is_err(), "a featureless ramp must not extract: {r:?}");
}

#[test]
fn inverted_contrast_fails_validation() {
    // Current *rising* across the lines (inverted sensor): the feature
    // gradient is negative on the lines, anchors/sweeps land elsewhere,
    // and the result must not pass as physical.
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 100, 100).expect("grid");
    let inverted = Csd::from_fn(grid, |v1, v2| {
        let mut i = 2.0 + 0.002 * (v1 + v2);
        if v2 > -4.0 * (v1 - 62.0) {
            i += 1.0;
        }
        if v2 > 58.0 - 0.3 * v1 {
            i += 0.8;
        }
        i
    })
    .expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(inverted));
    let r = FastExtractor::new().extract(&mut session);
    assert!(r.is_err(), "inverted contrast must be rejected: {r:?}");
}

#[test]
fn errors_format_without_panicking() {
    let errs: Vec<ExtractError> = vec![
        ExtractError::window_too_small(20, 4),
        ExtractError::degenerate_anchors((3, 3), (3, 3)),
        ExtractError::too_few_transition_points(0, 4),
        ExtractError::unphysical_slopes(f64::NAN, f64::INFINITY),
        ExtractError::scattered_fit(0.21, 0.5),
        ExtractError::stuck_at_zero(0.18, 0.02),
    ];
    for e in errs {
        assert!(!format!("{e}").is_empty());
        assert!(!format!("{e:?}").is_empty());
    }
}

#[test]
fn hostile_zoo_instruments_fail_classified_never_silently_wrong() {
    // A dead-pixel-dominated instrument (the zoo's DeadChannels family
    // at moderate/severe: 5–20% dead pixels, coarse clipped DACs) must
    // surface *classified* extraction errors — a probe/geometry/fit/
    // verify category with a non-empty message — or a result that is
    // actually right. Panics and silently wrong slopes are the two
    // forbidden outcomes.
    let registry = BackendRegistry::standard();
    let criteria = SuccessCriteria::default();
    let zoo = zoo_specs(2, DEFAULT_ZOO_SEED);
    let slice: Vec<_> = zoo
        .iter()
        .filter(|s| {
            s.family == ZooFamily::DeadChannels
                && matches!(s.severity, Severity::Moderate | Severity::Severe)
        })
        .collect();
    assert!(slice.len() >= 4, "zoo slice too small: {}", slice.len());

    let mut classified = 0usize;
    for scenario in slice {
        let bench = generate(&scenario.spec).expect("zoo spec generates");
        let backend = registry
            .resolve(&scenario.backend)
            .expect("zoo backend resolves");
        let mut session = backend
            .session(
                SourceScenario::new(bench.csd.clone())
                    .with_label(scenario.label())
                    .with_seed(scenario.spec.seed),
            )
            .expect("hwsim opens");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FastExtractor::new().extract(&mut session)
        }));
        let label = scenario.label();
        match outcome {
            Err(_) => panic!("{label}: extraction panicked on a hostile instrument"),
            Ok(Err(e)) => {
                assert!(
                    matches!(
                        e.category(),
                        ErrorCategory::Probe
                            | ErrorCategory::Geometry
                            | ErrorCategory::Fit
                            | ErrorCategory::Verify
                    ),
                    "{label}: unexpected category {:?}",
                    e.category()
                );
                assert!(!e.to_string().is_empty(), "{label}: empty error message");
                classified += 1;
            }
            Ok(Ok(r)) => {
                // If extraction claims success against a broken
                // instrument, the slopes must genuinely match truth —
                // that is exactly the "silent wrong slope" trap.
                assert!(
                    criteria.judge(r.alpha12(), r.alpha21(), &bench.truth),
                    "{label}: silently wrong slopes {:.3}/{:.3} vs truth {:.3}/{:.3}",
                    r.alpha12(),
                    r.alpha21(),
                    bench.truth.alpha12,
                    bench.truth.alpha21,
                );
            }
        }
    }
    // The moderate/severe dead band is built to break extraction most
    // of the time — if nothing errored, the family no longer tests the
    // error taxonomy and needs re-tuning.
    assert!(classified >= 2, "only {classified} classified failures");
}

#[test]
fn session_probe_budget_is_bounded_even_on_failure() {
    // Failures must not spiral into unbounded probing: even on garbage
    // data the pipeline probes at most a modest multiple of the paper's
    // budget.
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 100, 100).expect("grid");
    let garbage =
        Csd::from_fn(grid, |v1, v2| ((v1 * 7.3).sin() * (v2 * 3.1).cos()).abs()).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(garbage));
    let _ = FastExtractor::new().extract(&mut session);
    assert!(
        session.probe_count() < 4000,
        "failure probed {} points",
        session.probe_count()
    );
}
