//! Minimal, dependency-free readiness polling.
//!
//! This workspace builds offline, so instead of depending on `mio` or
//! `polling` from crates.io we vendor the one slice of those crates the
//! serve daemon actually needs: a level-triggered readiness poller plus a
//! cross-thread waker. On Linux (the deployment target and CI platform)
//! the backend is raw `epoll` + `eventfd`; on other Unixes a portable
//! `poll(2)` + self-pipe fallback keeps the crate compiling.
//!
//! All `unsafe` in the workspace lives here, confined to the FFI layer —
//! `fastvg-serve` itself keeps `#![forbid(unsafe_code)]` and consumes the
//! safe [`Poller`] / [`Waker`] API:
//!
//! - [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] register a
//!   file descriptor with a `u64` token and an [`Interest`] mask.
//! - [`Poller::wait`] blocks (with optional timeout) and fills a caller
//!   buffer with [`Event`]s. Registrations are level-triggered: a readable
//!   socket keeps reporting readable until drained.
//! - [`Waker::wake`] is safe to call from any thread and makes a
//!   concurrent or future `wait` return with the waker's token.

#![warn(missing_docs)]

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Which readiness classes a registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (data, accepted connection, or EOF).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// An error condition is pending on the descriptor.
    pub error: bool,
    /// The peer hung up (read side will soon return EOF).
    pub hangup: bool,
}

/// A level-triggered readiness poller over a set of registered
/// file descriptors.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create a new empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd.as_raw_fd(), token, interest)
    }

    /// Change the interest mask (and token) of an already-registered `fd`.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd.as_raw_fd(), token, interest)
    }

    /// Remove `fd` from the poller. Must be called before closing the
    /// descriptor on the fallback backend; harmless but recommended on
    /// Linux.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(fd.as_raw_fd())
    }

    /// Block until at least one registered descriptor is ready or the
    /// timeout elapses (`None` blocks indefinitely). Clears `events` and
    /// fills it with the ready set; returns the number of events.
    ///
    /// Returns `Ok(0)` on timeout. An interrupted wait (`EINTR`) is
    /// surfaced as `ErrorKind::Interrupted` so callers can recompute
    /// their timeout and retry.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

/// A cross-thread wakeup handle tied to one [`Poller`].
///
/// Cloneable via `Arc`; `wake` is safe to call from any thread and from
/// signal-free contexts. The owning reactor should call [`Waker::drain`]
/// when it sees the waker's token so the descriptor goes quiet again.
#[derive(Debug)]
pub struct Waker {
    inner: sys::Waker,
}

impl Waker {
    /// Create a waker registered on `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        Ok(Waker {
            inner: sys::Waker::new(&poller.inner, token)?,
        })
    }

    /// Make the poller return an event carrying the waker's token.
    /// Idempotent: multiple wakes before a drain coalesce.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }

    /// Consume any pending wakeups so the waker stops reporting readable.
    pub fn drain(&self) {
        self.inner.drain();
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! Linux backend: `epoll` + `eventfd`.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};
    use std::time::Duration;

    // `struct epoll_event` is packed on x86 so the 64-bit data field
    // straddles what would otherwise be padding; other architectures use
    // natural alignment. Mirroring glibc's layout exactly is load-bearing.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;

    /// Largest batch of kernel events translated per `wait` call.
    const MAX_EVENTS: usize = 1024;

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.readable {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 has no pointer arguments; a negative
            // return is the only failure mode.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            let event_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event as *mut EpollEvent
            };
            // SAFETY: `event` outlives the call (the kernel copies it) and
            // `epfd`/`fd` are descriptors we own or were handed by value.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 1ns timeout does not spin at 0ms.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(c_int::MAX as u128) as c_int,
            };
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            // SAFETY: `raw` is a valid writable buffer of MAX_EVENTS
            // entries for the duration of the call.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for entry in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let events = entry.events;
                let token = entry.data;
                out.push(Event {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & EPOLLERR != 0,
                    hangup: events & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing a descriptor we own exactly once.
            unsafe { close(self.epfd) };
        }
    }

    #[derive(Debug)]
    pub struct Waker {
        efd: RawFd,
    }

    impl Waker {
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            // SAFETY: eventfd has no pointer arguments.
            let efd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            if efd < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = Waker { efd };
            poller.add(waker.efd, token, Interest::READABLE)?;
            Ok(waker)
        }

        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            // SAFETY: writing 8 bytes from a valid, live stack location.
            let rc = unsafe { write(self.efd, (&one as *const u64).cast::<c_void>(), 8) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // Counter saturated: the poller is already signalled.
                if err.kind() == io::ErrorKind::WouldBlock {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // SAFETY: reading 8 bytes into a valid, live stack location.
            // A nonblocking eventfd read resets the counter in one call.
            unsafe { read(self.efd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing a descriptor we own exactly once.
            unsafe { close(self.efd) };
        }
    }

    // SAFETY: the wrapped descriptors are plain integers; every syscall
    // used here is thread-safe per POSIX.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}
}

#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
mod sys {
    //! Portable Unix fallback: `poll(2)` + self-pipe. Functional but not
    //! tuned — the deployment target is the Linux backend above.

    use super::{Event, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_uint, c_void};
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Pollfd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut Pollfd, nfds: c_uint, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    const F_SETFL: c_int = 4;
    // BSD-family value; Linux uses the epoll backend instead.
    const O_NONBLOCK: c_int = 0x0004;

    #[derive(Debug)]
    pub struct Poller {
        registry: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registry: Mutex::new(BTreeMap::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registry
                .lock()
                .expect("poller registry poisoned")
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.add(fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registry
                .lock()
                .expect("poller registry poisoned")
                .remove(&fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let snapshot: Vec<(RawFd, u64, Interest)> = self
                .registry
                .lock()
                .expect("poller registry poisoned")
                .iter()
                .map(|(&fd, &(token, interest))| (fd, token, interest))
                .collect();
            let mut fds: Vec<Pollfd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| Pollfd {
                    fd,
                    events: {
                        let mut mask = 0;
                        if interest.readable {
                            mask |= POLLIN;
                        }
                        if interest.writable {
                            mask |= POLLOUT;
                        }
                        mask
                    },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(c_int::MAX as u128) as c_int,
            };
            // SAFETY: `fds` is a valid writable slice for the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for (slot, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if slot.revents != 0 {
                    out.push(Event {
                        token,
                        readable: slot.revents & (POLLIN | POLLHUP) != 0,
                        writable: slot.revents & POLLOUT != 0,
                        error: slot.revents & POLLERR != 0,
                        hangup: slot.revents & POLLHUP != 0,
                    });
                }
            }
            Ok(out.len())
        }
    }

    #[derive(Debug)]
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Waker {
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a valid 2-element buffer.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: setting flags on descriptors we just created.
                unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
            }
            let waker = Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            poller.add(waker.read_fd, token, Interest::READABLE)?;
            Ok(waker)
        }

        pub fn wake(&self) -> io::Result<()> {
            let byte = 1u8;
            // SAFETY: writing one byte from a live stack location.
            unsafe { write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1) };
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reading into a valid stack buffer.
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing descriptors we own exactly once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    // SAFETY: plain integers + syscalls that are thread-safe per POSIX.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}
}

#[cfg(not(unix))]
compile_error!("mini-epoll supports only Unix platforms (epoll on Linux, poll elsewhere)");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let poller = Poller::new().expect("poller");
        poller.add(&listener, 7, Interest::READABLE).expect("add");

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert_eq!(n, 0, "no event before a client connects");

        let _client = TcpStream::connect(addr).expect("connect");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn stream_readable_and_writable_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");

        let poller = Poller::new().expect("poller");
        poller.add(&client, 1, Interest::BOTH).expect("add");

        // A fresh socket with an empty send buffer is writable, not readable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        assert!(!events.iter().any(|e| e.token == 1 && e.readable));

        // After the peer writes, readable readiness must appear; drop the
        // writable interest to prove `modify` takes effect.
        poller
            .modify(&client, 1, Interest::READABLE)
            .expect("modify");
        server_side.write_all(b"ping").expect("write");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readable event never arrived");
        }
        let mut buf = [0u8; 4];
        let mut reader = &client;
        reader.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Arc::new(Poller::new().expect("poller"));
        let waker = Arc::new(Waker::new(&poller, 99).expect("waker"));

        let wake_from = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            wake_from.wake().expect("wake");
        });

        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 99);
        assert!(started.elapsed() < Duration::from_secs(5));
        waker.drain();
        handle.join().expect("join");

        // Drained: the next wait times out instead of spinning.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn wakes_coalesce() {
        let poller = Poller::new().expect("poller");
        let waker = Waker::new(&poller, 5).expect("waker");
        for _ in 0..100 {
            waker.wake().expect("wake");
        }
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .expect("wait");
        assert_eq!(n, 1);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
