//! Minimal, dependency-free stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the small slice of `rand` it actually uses:
//!
//! - [`RngCore`] (object-safe raw generator) and [`SeedableRng`];
//! - [`Rng`] with `random`, `random_range` and `random_bool`;
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 — the same construction the xoshiro reference
//!   implementation recommends.
//!
//! Determinism is part of the contract: the physics-noise and dataset
//! tests compare streams from equal seeds, so `StdRng` must produce
//! identical sequences across runs and platforms. Swap this crate for the
//! real `rand` (same major API) when registry access is available; seeds
//! will then produce different — but still deterministic — streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The raw generator interface: a source of uniform random bits.
///
/// Object-safe so noise models can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`'s bit stream
/// (the shim's equivalent of sampling the `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

/// Ranges that `Rng::random_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // `start + u * span` can round up to `end` even with u < 1;
        // resample to honor the half-open contract (same approach as
        // real rand's uniform float sampling).
        for _ in 0..8 {
            let u = f64::sample(rng);
            let v = self.start + u * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
        // Repeated misses mean the span itself is degenerate (e.g. it
        // overflows to infinity); the start is the only safe answer.
        self.start
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (sized or not, so `&mut dyn RngCore` works directly).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`
    /// (`f64` lands in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded by expanding a `u64` through SplitMix64.
    ///
    /// Not cryptographically secure — it backs reproducible simulations
    /// only.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let i: usize = r.random_range(3..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = StdRng::seed_from_u64(11);
        let dynr: &mut dyn RngCore = &mut r;
        let u: f64 = dynr.random();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
