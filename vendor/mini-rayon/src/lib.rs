//! Minimal, dependency-free stand-in for `rayon`.
//!
//! The build environment has no access to the crates.io registry, so this
//! shim provides the small data-parallel surface the workspace needs: a
//! [`ThreadPool`] whose [`par_map`](ThreadPool::par_map) fans work out
//! over `std::thread::scope` workers and whose
//! [`par_chunks_mut`](ThreadPool::par_chunks_mut) splits a mutable buffer
//! into per-worker contiguous chunks (aligned to a caller-chosen unit,
//! e.g. an image row).
//!
//! # Determinism by construction
//!
//! Parallelism here never changes *results*, only wall-clock time:
//!
//! * `par_map` collects results **in input order** regardless of which
//!   worker computed what or in what order tasks finished;
//! * `par_chunks_mut` hands every worker a disjoint slice whose contents
//!   depend only on the slice's own offset;
//! * nothing in the pool provides shared mutable state — tasks that need
//!   randomness must derive a seed from their own index (the convention
//!   the workspace follows), never from a pool-global RNG.
//!
//! Workers are spawned per call inside a [`std::thread::scope`], so
//! borrowed (non-`'static`) data can flow into tasks and panics propagate
//! to the caller instead of being swallowed. Spawn cost is a few tens of
//! microseconds per worker — negligible against the coarse tasks
//! (benchmark extractions, image passes) this workspace parallelizes.
//!
//! Swap in the real `rayon` when registry access is available; call sites
//! are a mechanical `par_iter().map().collect()` away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width scoped worker pool.
///
/// The pool is a parallelism *degree*, not a set of live threads: each
/// parallel call spawns up to `workers` scoped threads and joins them
/// before returning, so there is no background state between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl Default for ThreadPool {
    /// A pool as wide as [`available_workers`].
    fn default() -> Self {
        Self::new(available_workers())
    }
}

/// Degree of hardware parallelism available to this process, at least 1.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl ThreadPool {
    /// A pool running at most `workers` tasks concurrently.
    ///
    /// `workers == 0` is treated as 1 (serial); 1 never spawns threads.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The configured parallelism degree.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` in parallel, returning results **in input
    /// order**.
    ///
    /// `f` receives the item index alongside the item so per-task state
    /// (an RNG seed, a job id) can be derived deterministically. Tasks
    /// are pulled from a shared counter, so uneven task costs balance
    /// across workers automatically.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic on the calling thread.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("pool computed every index exactly once"))
            .collect()
    }

    /// Runs `f` over up to `workers` disjoint contiguous chunks of
    /// `data`, each chunk's length a multiple of `unit` (except possibly
    /// the last).
    ///
    /// `unit` is the indivisible stride of the buffer — pass an image's
    /// row length to guarantee chunks never split a row. `f` receives the
    /// chunk's element offset into `data` plus the chunk itself.
    ///
    /// # Panics
    ///
    /// Panics if `unit == 0`; worker panics propagate to the caller.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], unit: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(unit > 0, "chunk unit must be non-zero");
        let n = data.len();
        if n == 0 {
            return;
        }
        let units = n.div_ceil(unit);
        let workers = self.workers.min(units);
        if workers <= 1 {
            f(0, data);
            return;
        }
        let chunk_len = units.div_ceil(workers) * unit;
        std::thread::scope(|s| {
            for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                s.spawn(move || f(ci * chunk_len, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.par_map(&items, |i, &x| {
            // Stagger completion times so out-of-order finishes are likely.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_exactly() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * i as f64).to_bits();
        let serial = ThreadPool::new(1).par_map(&items, f);
        let parallel = ThreadPool::new(8).par_map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let pool = ThreadPool::new(4);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map(&[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_passes_the_index() {
        let pool = ThreadPool::new(3);
        let items = vec![10, 20, 30, 40];
        let out = pool.par_map(&items, |i, &x| (i, x));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.par_map(&[1, 2, 3], |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 103];
        pool.par_chunks_mut(&mut data, 1, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u64;
            }
        });
        let expect: Vec<u64> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn par_chunks_mut_respects_unit_alignment() {
        let cols = 7;
        let rows = 23;
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; cols * rows];
        pool.par_chunks_mut(&mut data, cols, |offset, chunk| {
            assert_eq!(offset % cols, 0, "chunk must start on a row boundary");
            if offset + chunk.len() < cols * rows {
                assert_eq!(chunk.len() % cols, 0, "interior chunk must hold whole rows");
            }
            for v in chunk.iter_mut() {
                *v = offset / cols;
            }
        });
        // Every row was written with one single chunk id.
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            assert!(
                row.iter().all(|&v| v == row[0]),
                "row {r} split across chunks"
            );
        }
    }

    #[test]
    fn par_chunks_mut_serial_when_one_worker() {
        let pool = ThreadPool::new(1);
        let mut data = vec![1i32; 10];
        pool.par_chunks_mut(&mut data, 3, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 10);
            chunk.iter_mut().for_each(|v| *v = 5);
        });
        assert_eq!(data, vec![5; 10]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map(&items, |_, &x| {
                assert!(x != 9, "task 9 exploded");
                x
            })
        }));
        assert!(trip.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
