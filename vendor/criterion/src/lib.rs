//! Minimal, dependency-free stand-in for `criterion`.
//!
//! The build environment has no access to the crates.io registry, so this
//! shim implements just the surface the `fastvg-bench` benches use:
//! [`Criterion`] with `bench_function` / `bench_with_input` /
//! `benchmark_group`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Mode selection follows cargo's harness protocol: `cargo bench` passes
//! `--bench` to the binary, which triggers real timed runs (warm-up, then
//! a sampling budget; the median per-iteration time is printed). Any other
//! invocation — notably `cargo test`, which builds and runs bench targets
//! for liveness — executes each benchmark body exactly once as a smoke
//! test, so the test suite stays fast.
//!
//! No statistics, plots, or baselines: swap in the real `criterion` when
//! registry access is available; call sites are source-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Wall-clock time budget per benchmark in measurement mode.
const MEASURE_BUDGET: Duration = Duration::from_secs(2);
/// Warm-up budget per benchmark in measurement mode.
const WARMUP_BUDGET: Duration = Duration::from_millis(300);

/// Identifier for one benchmark: a function/group name and an optional
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl ToString) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter.to_string()),
        }
    }

    /// An id carrying only the parameter; the group supplies the prefix.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    measure: bool,
    /// Median per-iteration time, filled in after a measured run.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its per-iteration time.
    ///
    /// In smoke mode (anything but `cargo bench`) the routine runs exactly
    /// once and no timing is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: run until the budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size that keeps each sample around 10 ms.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE_BUDGET && samples.len() < 512 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.elapsed = Some(Duration::from_secs_f64(median));
    }
}

fn humanize(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    measure: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    /// Configures from the command line, following cargo's harness
    /// protocol: `--bench` selects measurement mode, the first free
    /// argument is a substring filter.
    ///
    /// Unknown `--flag value` pairs (real-criterion options such as
    /// `--save-baseline main`) are skipped whole, so the value is not
    /// mistaken for a name filter.
    fn default() -> Self {
        let mut measure = false;
        let mut filter = None;
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--bench" => measure = true,
                "--test" => measure = false,
                // Common valueless libtest/criterion flags must not
                // swallow the argument after them.
                "--verbose" | "--quiet" | "--nocapture" | "--exact" | "--list" | "--ignored"
                | "--include-ignored" | "--show-output" => {}
                a if a.starts_with("--") => skip_value = !a.contains('='),
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { measure, filter }
    }
}

impl Criterion {
    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measure: self.measure,
            elapsed: None,
        };
        f(&mut b);
        if self.measure {
            match b.elapsed {
                Some(d) => println!("{name:<50} time: {}", humanize(d)),
                None => println!("{name:<50} (no iterations recorded)"),
            }
        } else {
            println!("{name}: ok (smoke run)");
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run(name, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.name, |b| f(b, input));
    }

    /// Opens a named group; ids inside it are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A prefix namespace for related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's time-budget sampler ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group, parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run(&full, |b| f(b, input));
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let full = format!("{}/{name}", self.name);
        self.criterion.run(&full, f);
    }

    /// Closes the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
