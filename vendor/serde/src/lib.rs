//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment has no access to the crates.io registry. The
//! workspace only *derives* `Serialize`/`Deserialize` (no code currently
//! serializes through serde's data model — `qd_csd::io` implements its
//! CSV/binary formats by hand), so this shim provides the two traits as
//! markers plus derive macros that implement them. Replacing this crate
//! with the real `serde` (the derives keep the same names and call sites)
//! upgrades the markers to full serialization without touching any
//! downstream code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that a serde serializer could encode.
///
/// Implemented via `#[derive(Serialize)]`; carries no methods in this
/// offline shim.
pub trait Serialize {}

/// Marker for types that a serde deserializer could decode.
///
/// Implemented via `#[derive(Deserialize)]`; carries no methods in this
/// offline shim.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
