//! Derive macros for the offline `serde` shim.
//!
//! Each derive scans the item's token stream for the type name following
//! the `struct`/`enum`/`union` keyword and emits an empty marker-trait
//! impl. Generic types are rejected with a compile error rather than
//! silently miscompiled — no type in this workspace needs them.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` definition and
/// reports whether a generic parameter list follows it.
fn parse_type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                return match tokens.next() {
                    Some(TokenTree::Ident(name)) => match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
                            "the offline serde shim cannot derive for generic type `{name}`"
                        )),
                        _ => Ok(name.to_string()),
                    },
                    other => Err(format!("expected type name after `{kw}`, found {other:?}")),
                };
            }
        }
    }
    Err("expected a struct, enum or union definition".to_string())
}

fn derive_marker(input: TokenStream, template: impl Fn(&str) -> String) -> TokenStream {
    match parse_type_name(input) {
        Ok(name) => template(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Implements the shim's marker `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Implements the shim's marker `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
