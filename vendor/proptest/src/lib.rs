//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment has no access to the crates.io registry, so this
//! shim implements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], the [`strategy::Strategy`] trait with `prop_map` and
//! `prop_filter`, range and tuple strategies, and
//! [`collection::vec`].
//!
//! Semantics versus the real crate:
//!
//! - **Deterministic sampling, no shrinking.** Each test runs
//!   [`DEFAULT_CASES`] cases (override with `PROPTEST_CASES`) from a seed
//!   derived from the test name, so failures reproduce exactly; a failing
//!   case reports its inputs via the assertion message but is not
//!   minimized.
//! - **Rejection budget.** `prop_assume!` and `prop_filter` discard the
//!   case without counting it; exceeding [`MAX_REJECTS`] total discards
//!   fails the test, matching proptest's global-reject guard.
//!
//! Swap in the real `proptest` when registry access is available; call
//! sites are source-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cases per property unless `PROPTEST_CASES` overrides it.
pub const DEFAULT_CASES: u32 = 64;
/// Total discarded cases allowed per property before giving up.
pub const MAX_REJECTS: u32 = 65_536;

/// Why a test case did not produce a verdict of "pass".
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed or a filter rejected
    /// every sampling attempt); it does not count toward the case budget.
    Reject(String),
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant; used by the assertion macros.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant; used by `prop_assume!`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic generator backing every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; the runner derives the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::{TestCaseError, TestRng};

    /// How many times `prop_filter` re-samples before rejecting the case.
    const FILTER_ATTEMPTS: u32 = 64;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly and never shrink.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or rejects the test case.
        ///
        /// # Errors
        ///
        /// Returns [`TestCaseError::Reject`] when a filter could not find
        /// an acceptable value; the runner discards the case.
        fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`, re-sampling on misses.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
            for _ in 0..FILTER_ATTEMPTS {
                let v = self.inner.sample(rng)?;
                if (self.f)(&v) {
                    return Ok(v);
                }
            }
            Err(TestCaseError::reject(self.reason))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
            Ok(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "cannot sample empty range");
                    let offset = (rng.next_u64() as u128) % span;
                    Ok((self.start as i128 + offset as i128) as $t)
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                    Ok(($(self.$idx.sample(rng)?,)+))
                }
            }
        };
    }
    impl_strategy_tuple!(S0 / 0);
    impl_strategy_tuple!(S0 / 0, S1 / 1);
    impl_strategy_tuple!(S0 / 0, S1 / 1, S2 / 2);
    impl_strategy_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_strategy_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_strategy_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    impl_strategy_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    impl_strategy_tuple!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::{TestCaseError, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
            let len = self.size.clone().sample(rng)?;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples cases, tracks rejections, panics on the
/// first failure with the offending case index and seed.
///
/// Called by the [`proptest!`] expansion — not part of the public
/// proptest API, but public so the macro can reach it.
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES);
    // FNV-1a over the test name: stable, deterministic seeds per property.
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let mut rng = TestRng::new(seed);
    let mut passed = 0;
    let mut rejected = 0;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < MAX_REJECTS,
                    "property `{name}`: too many rejected cases \
                     ({rejected} rejects for {passed} accepted)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed after {passed} passing cases \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Everything a property-test module needs: the macros, [`Strategy`] and
/// the `prop::` namespace.
///
/// [`Strategy`]: crate::strategy::Strategy
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, TestCaseError};

    /// The `prop::` namespace (`prop::collection::vec` and friends).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: each `fn` runs its body against sampled
/// inputs.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            __proptest_rng,
                        )?;
                    )+
                    let __proptest_outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    __proptest_outcome
                });
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    // The no-message arm must not route the stringified condition
    // through `format!` — conditions containing braces (e.g. `matches!`
    // struct patterns) would be parsed as format specs.
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Discards the current test case unless `cond` holds (does not count as
/// a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5..4.5f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.5).contains(&y));
        }

        /// Conditions containing braces (struct patterns in `matches!`)
        /// must survive the no-message `prop_assert!` arm.
        #[test]
        fn brace_conditions_compile(n in 0u32..4) {
            struct Wrap {
                v: u32,
            }
            let w = Wrap { v: n };
            prop_assert!(matches!(w, Wrap { .. }));
            prop_assert!(w.v < 4);
        }

        #[test]
        fn map_and_filter_compose(
            v in prop::collection::vec((0usize..10, 0usize..10), 1..20)
                .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>())
        ) {
            prop_assert!(!v.is_empty());
            for s in &v {
                prop_assert!(*s <= 18);
            }
        }

        #[test]
        fn filter_keeps_predicate(
            pair in (0u32..100, 0u32..100).prop_filter("must differ", |(a, b)| a != b)
        ) {
            prop_assert!(pair.0 != pair.1, "{} == {}", pair.0, pair.1);
        }

        #[test]
        fn assume_discards(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        proptest! {
            fn always_fails(_n in 0u32..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
