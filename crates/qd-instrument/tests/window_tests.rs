//! Extra coverage for the voltage-window arithmetic that every probe
//! passes through.

use qd_csd::VoltageGrid;
use qd_instrument::{CsdSource, CurrentSource, MeasurementSession, VoltageWindow};

#[test]
fn fractional_delta_windows_quantize_consistently() {
    // A 60 V span over 100 px has delta ≈ 0.606 — the benchmark regime.
    let w = VoltageWindow {
        x_min: -5.0,
        y_min: 12.0,
        x_max: -5.0 + 60.0,
        y_max: 12.0 + 60.0,
        delta: 60.0 / 99.0,
    };
    assert_eq!(w.width_px(), 100);
    assert_eq!(w.height_px(), 100);
    // Every exact pixel voltage must round-trip to its own index.
    for px in [0usize, 1, 49, 98, 99] {
        let v1 = w.x_min + px as f64 * w.delta;
        let (qx, _) = w.quantize(v1, w.y_min);
        assert_eq!(qx as usize, px, "pixel {px} mis-quantized");
    }
}

#[test]
fn quantize_midpoints_round_to_nearest() {
    let w = VoltageWindow {
        x_min: 0.0,
        y_min: 0.0,
        x_max: 9.0,
        y_max: 9.0,
        delta: 1.0,
    };
    assert_eq!(w.quantize(0.49, 0.0).0, 0);
    assert_eq!(w.quantize(0.51, 0.0).0, 1);
    assert_eq!(w.quantize(8.5, 0.0).0, 9); // ties round half-up via f64::round
}

#[test]
fn negative_origin_windows_work() {
    let grid = VoltageGrid::new(-30.0, -20.0, 0.5, 40, 40).expect("grid");
    let csd = qd_csd::Csd::from_fn(grid, |v1, v2| v1 * 10.0 + v2).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(csd));
    // Probe exactly at a negative-voltage pixel.
    let i = session.get_current(-29.5, -19.0);
    assert_eq!(i, -29.5 * 10.0 + -19.0);
    assert_eq!(session.unique_pixels(), 1);
}

#[test]
fn window_from_grid_round_trips_through_source() {
    let grid = VoltageGrid::new(3.0, 7.0, 0.25, 21, 17).expect("grid");
    let csd = qd_csd::Csd::constant(grid, 1.0).expect("csd");
    let source = CsdSource::new(csd);
    let w = source.window();
    assert_eq!(w.x_min, 3.0);
    assert_eq!(w.y_min, 7.0);
    assert_eq!(w.width_px(), 21);
    assert_eq!(w.height_px(), 17);
    assert_eq!(w.len(), 21 * 17);
}

#[test]
fn coverage_accounts_only_unique_pixels() {
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 10, 10).expect("grid");
    let csd = qd_csd::Csd::constant(grid, 1.0).expect("csd");
    let mut session = MeasurementSession::new(CsdSource::new(csd)).caching(false);
    for _ in 0..5 {
        let _ = session.get_current(2.0, 2.0); // same pixel, 5 dwells
    }
    assert_eq!(session.probe_count(), 5);
    assert_eq!(session.unique_pixels(), 1);
    assert!((session.coverage() - 0.01).abs() < 1e-12);
}
