//! Property-based coverage of the `hwsim` DAC register model, on the
//! vendored proptest shim: quantization round-trips, limit-table
//! clamping, and slew-cost monotonicity hold over the whole profile
//! space, not just the hand-picked unit cases.

use proptest::prelude::*;
use qd_instrument::hwsim::{DacChannel, HwSimProfile};
use qd_instrument::VoltageWindow;

/// An arbitrary square window strategy: origin in ±50 V, span 1..120 V.
fn windows() -> impl Strategy<Value = VoltageWindow> {
    (-50.0..50.0, 1.0..120.0).prop_map(|(lo, span)| VoltageWindow {
        x_min: lo,
        y_min: lo,
        x_max: lo + span,
        y_max: lo + span,
        delta: span / 64.0,
    })
}

/// A valid profile strategy over the full override space.
fn profiles() -> impl Strategy<Value = HwSimProfile> {
    (6u32..17, 0.0..0.2, 0.0..0.25, 0.0..0.5).prop_map(|(bits, clip, xt, dead)| {
        HwSimProfile::parse(&format!(
            "nominal,bits={bits},clip={clip},xt={xt},dead={dead}"
        ))
        .expect("in-range overrides parse")
    })
}

proptest! {
    /// Quantize→dequantize lands within 1 LSB of any voltage the limit
    /// table admits, for every bit width, clip margin and window.
    #[test]
    fn quantization_round_trips_within_one_lsb(
        pw in (profiles(), windows()),
        unit in 0.0..1.0,
    ) {
        let (profile, window) = pw;
        let dac = profile.dac_for(&window);
        for ch in dac.channels {
            let v = ch.v_min() + unit * (ch.v_max() - ch.v_min());
            let back = ch.dequantize(ch.quantize(v));
            prop_assert!(
                (back - v).abs() <= ch.lsb,
                "{v} -> {back}, lsb {} (bits {})",
                ch.lsb,
                dac.bits
            );
        }
    }

    /// Every code a channel emits honors its limit table — including
    /// for requests far outside the window and for hand-built
    /// asymmetric tables, and railed requests land exactly on the rail.
    #[test]
    fn clamping_honors_per_channel_limit_tables(
        pw in (profiles(), windows()),
        v in -1e6..1e6,
        table in (0u16..2000, 0u16..2000),
    ) {
        let (profile, window) = pw;
        let dac = profile.dac_for(&window);
        for ch in dac.channels {
            let code = ch.quantize(v);
            prop_assert!(code >= ch.min_code && code <= ch.max_code);
            if v < ch.v_min() {
                prop_assert_eq!(code, ch.min_code);
            }
            if v > ch.v_max() {
                prop_assert_eq!(code, ch.max_code);
            }
        }
        // The same invariant for an arbitrary (non-derived) table.
        let top = ((1u32 << dac.bits) - 1) as u16;
        let lo = table.0.min(top);
        let hi = lo.max(table.1.min(top));
        let ch = DacChannel { min_code: lo, max_code: hi, ..dac.channels[0] };
        let code = ch.quantize(v);
        prop_assert!(code >= lo && code <= hi, "{code} outside [{lo}, {hi}]");
    }

    /// Probe cost is monotone (non-decreasing) in the gate-voltage
    /// delta: stepping further from the same starting point never gets
    /// cheaper. This is the property that prices sweeps realistically.
    #[test]
    fn slew_cost_is_monotone_in_voltage_delta(
        pw in (profiles(), windows()),
        start in 0.0..1.0,
        d in (0.0..1.0, 0.0..1.0),
    ) {
        let (profile, window) = pw;
        let dac = profile.dac_for(&window);
        let span = window.x_max - window.x_min;
        let v0 = window.x_min + start * span;
        let (near, far) = (d.0.min(d.1), d.0.max(d.1));
        let from = Some(dac.quantize(v0, window.y_min));
        let cost = |delta: f64| {
            profile.probe_cost(&dac, from, dac.quantize(v0 + delta * span, window.y_min))
        };
        prop_assert!(
            cost(near) <= cost(far),
            "cost({near}) > cost({far}) from {v0} over {span} V"
        );
    }

    /// `describe()` is canonical: parsing a profile's own canonical
    /// string reproduces it exactly, for arbitrary overrides.
    #[test]
    fn canonical_profiles_round_trip(profile in profiles()) {
        let args = profile.canonical_args();
        let again = HwSimProfile::parse(&args);
        prop_assert!(again.is_ok(), "{args:?} must re-parse");
        prop_assert_eq!(again.unwrap(), profile, "{}", args);
    }
}
