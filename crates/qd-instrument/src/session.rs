//! The measurement session: source + dwell clock + ledger + cache.

use crate::{CurrentSource, DwellClock, ProbeLedger, VoltageWindow};
use std::collections::HashMap;
use std::time::Duration;

/// Object-safe view of a measurement session: probing plus the
/// accounting every extraction method reports on.
///
/// [`MeasurementSession`] implements this for every [`CurrentSource`],
/// so generic pipeline code written against `P: ProbeSession + ?Sized`
/// accepts both a concrete session and `&mut dyn ProbeSession`. The
/// trait is what makes method-agnostic driver code possible — an
/// object-safe extractor cannot name the source type parameter, so it
/// probes through this interface instead.
pub trait ProbeSession {
    /// The paper's `getCurrent(v1, v2)`: one dwell-costing probe (or a
    /// free cache hit), recorded in the ledger.
    fn get_current(&mut self, v1: f64, v2: f64) -> f64;

    /// The voltage window being probed.
    fn window(&self) -> VoltageWindow;

    /// Dwell-costing probes so far (Table 1's "points probed").
    fn probe_count(&self) -> usize;

    /// Distinct pixels probed.
    fn unique_pixels(&self) -> usize;

    /// Fraction of the window probed.
    fn coverage(&self) -> f64;

    /// Simulated dwell time accrued (`probes × dwell`).
    fn simulated_dwell(&self) -> Duration;

    /// Distinct probed pixels in first-probe order (Figure 7 scatters).
    fn scatter(&self) -> Vec<(i64, i64)>;

    /// Probes left before a configured budget trips, or `None` if
    /// uncapped.
    fn remaining_budget(&self) -> Option<usize>;
}

impl<S: CurrentSource> ProbeSession for MeasurementSession<S> {
    fn get_current(&mut self, v1: f64, v2: f64) -> f64 {
        MeasurementSession::get_current(self, v1, v2)
    }

    fn window(&self) -> VoltageWindow {
        MeasurementSession::window(self)
    }

    fn probe_count(&self) -> usize {
        MeasurementSession::probe_count(self)
    }

    fn unique_pixels(&self) -> usize {
        MeasurementSession::unique_pixels(self)
    }

    fn coverage(&self) -> f64 {
        MeasurementSession::coverage(self)
    }

    fn simulated_dwell(&self) -> Duration {
        MeasurementSession::simulated_dwell(self)
    }

    fn scatter(&self) -> Vec<(i64, i64)> {
        self.ledger().scatter()
    }

    fn remaining_budget(&self) -> Option<usize> {
        MeasurementSession::remaining_budget(self)
    }
}

/// A stateful measurement session wrapping a [`CurrentSource`].
///
/// Every *new* pixel probed costs one dwell tick and one ledger entry.
/// With caching enabled (the default, matching the paper's simulated
/// evaluation) re-probing a pixel returns the stored value for free; with
/// caching disabled every call costs a dwell, as on hardware where drift
/// makes re-measurement meaningful.
#[derive(Debug)]
pub struct MeasurementSession<S> {
    source: S,
    window: VoltageWindow,
    clock: DwellClock,
    ledger: ProbeLedger,
    cache: HashMap<(i64, i64), f64>,
    caching: bool,
    cache_hits: u64,
    budget: Option<usize>,
}

impl<S: CurrentSource> MeasurementSession<S> {
    /// Creates a session with the paper's 50 ms dwell and caching on.
    pub fn new(source: S) -> Self {
        Self::with_clock(source, DwellClock::paper())
    }

    /// Creates a session with a custom dwell clock.
    pub fn with_clock(source: S, clock: DwellClock) -> Self {
        let window = source.window();
        Self {
            source,
            window,
            clock,
            ledger: ProbeLedger::new(),
            cache: HashMap::new(),
            caching: true,
            cache_hits: 0,
            budget: None,
        }
    }

    /// Enables or disables the measurement cache (builder style).
    #[must_use]
    pub fn caching(mut self, enable: bool) -> Self {
        self.caching = enable;
        self
    }

    /// Caps the number of dwell-costing probes (builder style). Once the
    /// budget is exhausted, [`MeasurementSession::get_current`] panics —
    /// a runaway-algorithm tripwire for unattended tuning loops, set well
    /// above any expected consumption. Use
    /// [`MeasurementSession::remaining_budget`] to steer before that.
    #[must_use]
    pub fn with_probe_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Probes left before the budget trips, or `None` if uncapped.
    pub fn remaining_budget(&self) -> Option<usize> {
        self.budget
            .map(|b| b.saturating_sub(self.ledger.total_probes()))
    }

    /// The paper's `getCurrent(v1, v2)`: quantizes to the source's pixel
    /// grid, accounts one dwell for uncached pixels, records the probe,
    /// and returns the sensor current.
    ///
    /// # Panics
    ///
    /// Panics if a probe budget was set with
    /// [`MeasurementSession::with_probe_budget`] and is exhausted.
    pub fn get_current(&mut self, v1: f64, v2: f64) -> f64 {
        let key = self.window.quantize(v1, v2);
        if self.caching {
            if let Some(&v) = self.cache.get(&key) {
                self.cache_hits += 1;
                return v;
            }
        }
        if let Some(budget) = self.budget {
            assert!(
                self.ledger.total_probes() < budget,
                "probe budget of {budget} exhausted"
            );
        }
        self.clock.tick();
        self.ledger.record(key.0, key.1, v1, v2);
        let value = self.source.current(v1, v2);
        if self.caching {
            self.cache.insert(key, value);
        }
        value
    }

    /// The voltage window being probed.
    pub fn window(&self) -> VoltageWindow {
        self.window
    }

    /// Dwell-costing probes so far (Table 1's "points probed").
    pub fn probe_count(&self) -> usize {
        self.ledger.total_probes()
    }

    /// Distinct pixels probed.
    pub fn unique_pixels(&self) -> usize {
        self.ledger.unique_pixels()
    }

    /// Cache hits (free re-probes).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Fraction of the window probed.
    pub fn coverage(&self) -> f64 {
        self.ledger.coverage(self.window.len())
    }

    /// Simulated dwell time accrued (`probes × dwell`).
    pub fn simulated_dwell(&self) -> Duration {
        self.clock.elapsed()
    }

    /// The probe ledger (for Figure 7 scatters and trace inspection).
    pub fn ledger(&self) -> &ProbeLedger {
        &self.ledger
    }

    /// Borrows the underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Consumes the session, returning the source and the ledger.
    pub fn into_parts(self) -> (S, ProbeLedger) {
        (self.source, self.ledger)
    }

    /// Clears ledger, clock and cache, keeping the source.
    pub fn reset(&mut self) {
        self.ledger.reset();
        self.clock.reset();
        self.cache.clear();
        self.cache_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSource;

    fn window() -> VoltageWindow {
        VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 9.0,
            y_max: 9.0,
            delta: 1.0,
        }
    }

    fn session() -> MeasurementSession<FnSource<impl FnMut(f64, f64) -> f64>> {
        MeasurementSession::new(FnSource::new(|a, b| 10.0 * a + b, window()))
    }

    #[test]
    fn probes_cost_dwell_and_are_recorded() {
        let mut s = session();
        assert_eq!(s.get_current(1.0, 2.0), 12.0);
        assert_eq!(s.probe_count(), 1);
        assert_eq!(s.simulated_dwell(), Duration::from_millis(50));
    }

    #[test]
    fn cached_reprobe_is_free() {
        let mut s = session();
        let _ = s.get_current(1.0, 2.0);
        let _ = s.get_current(1.0, 2.0);
        assert_eq!(s.probe_count(), 1);
        assert_eq!(s.cache_hits(), 1);
        assert_eq!(s.simulated_dwell(), Duration::from_millis(50));
    }

    #[test]
    fn quantization_dedups_nearby_voltages() {
        let mut s = session();
        let _ = s.get_current(1.0, 2.0);
        let _ = s.get_current(1.2, 2.3); // same pixel after rounding
        assert_eq!(s.probe_count(), 1);
        assert_eq!(s.unique_pixels(), 1);
    }

    #[test]
    fn caching_disabled_reprobes() {
        let mut s = session().caching(false);
        let _ = s.get_current(1.0, 2.0);
        let _ = s.get_current(1.0, 2.0);
        assert_eq!(s.probe_count(), 2);
        assert_eq!(s.unique_pixels(), 1);
        assert_eq!(s.cache_hits(), 0);
    }

    #[test]
    fn coverage_over_window() {
        let mut s = session();
        for x in 0..10 {
            let _ = s.get_current(x as f64, 0.0);
        }
        assert!((s.coverage() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_but_keeps_source() {
        let mut s = session();
        let _ = s.get_current(3.0, 3.0);
        s.reset();
        assert_eq!(s.probe_count(), 0);
        assert_eq!(s.cache_hits(), 0);
        assert_eq!(s.get_current(3.0, 3.0), 33.0);
    }

    #[test]
    fn into_parts_returns_ledger() {
        let mut s = session();
        let _ = s.get_current(4.0, 5.0);
        let (_, ledger) = s.into_parts();
        assert_eq!(ledger.total_probes(), 1);
        assert_eq!(ledger.scatter(), vec![(4, 5)]);
    }

    #[test]
    fn budget_trips_after_cap() {
        let mut s = session().with_probe_budget(3);
        assert_eq!(s.remaining_budget(), Some(3));
        let _ = s.get_current(0.0, 0.0);
        let _ = s.get_current(1.0, 0.0);
        // Cached re-probe does not consume budget.
        let _ = s.get_current(0.0, 0.0);
        assert_eq!(s.remaining_budget(), Some(1));
        let _ = s.get_current(2.0, 0.0);
        assert_eq!(s.remaining_budget(), Some(0));
        let trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.get_current(3.0, 0.0);
        }));
        assert!(trip.is_err(), "budget must trip");
    }

    #[test]
    fn uncapped_session_has_no_budget() {
        let s = session();
        assert_eq!(s.remaining_budget(), None);
    }

    #[test]
    fn sessions_over_send_sources_are_send() {
        // The batch layer moves whole sessions into worker threads; this
        // pins the Send guarantee at compile time for every shipped source.
        fn assert_send<T: Send>() {}
        assert_send::<crate::CsdSource>();
        assert_send::<crate::PhysicsSource>();
        assert_send::<MeasurementSession<crate::CsdSource>>();
        assert_send::<MeasurementSession<crate::PhysicsSource>>();
        assert_send::<MeasurementSession<crate::ThrottledSource<crate::CsdSource>>>();
    }

    #[test]
    fn probe_session_is_object_safe() {
        let mut s = session();
        let dyn_s: &mut dyn ProbeSession = &mut s;
        let _ = dyn_s.get_current(1.0, 2.0);
        assert_eq!(dyn_s.probe_count(), 1);
        assert_eq!(dyn_s.scatter(), vec![(1, 2)]);
        assert_eq!(dyn_s.window().delta, 1.0);
        assert!(dyn_s.remaining_budget().is_none());
    }

    #[test]
    fn custom_clock_dwell() {
        let src = FnSource::new(|_, _| 0.0, window());
        let mut s = MeasurementSession::with_clock(src, DwellClock::new(Duration::from_millis(10)));
        let _ = s.get_current(0.0, 0.0);
        let _ = s.get_current(1.0, 0.0);
        assert_eq!(s.simulated_dwell(), Duration::from_millis(20));
    }
}
