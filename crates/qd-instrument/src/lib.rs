//! Simulated measurement stack for quantum dot tuning experiments.
//!
//! The paper's Algorithm 1 is the whole instrument interface: set two gate
//! voltages, wait a dwell time (~50 ms on charge-sensor devices), read the
//! sensor current. Every speedup the paper reports comes from calling this
//! function fewer times. This crate reproduces that accounting:
//!
//! * [`CurrentSource`] — the `getCurrent(v1, v2)` abstraction, implemented
//!   by [`CsdSource`] (replay a recorded/synthetic diagram, what the paper
//!   does with qflow data) and [`PhysicsSource`] (live constant-interaction
//!   model with optional noise).
//! * [`DwellClock`] — a virtual clock accruing one dwell per probe, with an
//!   opt-in real-sleep mode for timing-faithful demos.
//! * [`ProbeLedger`] — records every probed pixel in order, for the probe
//!   counts in Table 1 and the scatter plots of Figure 7.
//! * [`MeasurementSession`] — glues the three together and adds an optional
//!   measurement cache (re-probing a pixel costs nothing, as in the paper's
//!   simulated evaluation).
//! * [`SourceBackend`] + [`BackendRegistry`] — runtime probe-source
//!   selection behind one object-safe seam: `sim`, `throttled:<dwell>`,
//!   `replay:<tape>`, `record:<tape>[+inner]`, plus embedder-registered
//!   schemes (see [`backend`]).
//! * [`RecordingSource`] / [`ReplaySource`] — probe tapes: record every
//!   dwell-costing probe to newline-framed JSON and play it back
//!   bit-identically without the source (see [`tape`]).
//! * [`HwSimBackend`] — `hwsim:<profile>`: the diagram behind a
//!   register-level DAC hardware model (code quantization, limit
//!   tables, bus/slew probe cost, crosstalk, 1/f drift, dead pixels),
//!   deterministic from the scenario seed (see [`hwsim`]).
//! * [`MultiplexedBackend`] — `multiplexed:<N>[+inner]`: any inner
//!   backend behind a [`ChannelPool`] of `N` shared probe channels,
//!   with conflict-avoiding dwell-slot schedules ([`ProbeScheduler`]:
//!   round-robin or equi-difference CAC codewords) and deterministic
//!   virtual-time contention accounting (see [`mux`]).
//!
//! # Example
//!
//! ```
//! use qd_csd::{Csd, VoltageGrid};
//! use qd_instrument::{CsdSource, MeasurementSession};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoltageGrid::new(0.0, 0.0, 1.0, 32, 32)?;
//! let csd = Csd::from_fn(grid, |v1, v2| if v1 + 0.25 * v2 < 20.0 { 5.0 } else { 3.0 })?;
//! let mut session = MeasurementSession::new(CsdSource::new(csd));
//!
//! let i = session.get_current(4.0, 4.0);
//! assert_eq!(i, 5.0);
//! assert_eq!(session.probe_count(), 1);
//! // A cached re-probe is free.
//! let _ = session.get_current(4.0, 4.0);
//! assert_eq!(session.probe_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod hwsim;
pub mod ledger;
pub mod mux;
pub mod scan;
pub mod session;
pub mod source;
pub mod tape;
pub mod throttle;

pub use backend::{
    BackendError, BackendRegistry, BoxedSource, RecordBackend, ReplayBackend, SimBackend,
    SourceBackend, SourceScenario, ThrottledBackend,
};
pub use clock::DwellClock;
pub use hwsim::{
    BusStats, DacChannel, DacModel, HwSimBackend, HwSimPreset, HwSimProfile, HwSimSource,
};
pub use ledger::{ProbeEvent, ProbeLedger};
pub use mux::{
    ChannelPool, ChannelStats, EquiDifference, MultiplexedBackend, MuxConfig, MuxPolicy, MuxSource,
    MuxStats, ProbeScheduler, RoundRobin, SessionWait,
};
pub use scan::ScanPattern;
pub use session::{MeasurementSession, ProbeSession};
pub use source::{CsdSource, CurrentSource, FnSource, PhysicsSource, VoltageWindow};
pub use tape::{RecordingSource, ReplayMode, ReplaySource, Tape, TapeError, TapeHeader, TapeProbe};
pub use throttle::ThrottledSource;
