//! Runtime probe-source selection: the object-safe [`SourceBackend`]
//! trait and the string-keyed [`BackendRegistry`].
//!
//! Before this module every harness hard-wired its probe source at
//! compile time (`MeasurementSession::new(CsdSource::new(csd))`), so
//! swapping in a throttled source, a recorded tape, or eventually real
//! hardware meant editing and recompiling every entry point. A
//! [`SourceBackend`] erases that choice behind one object-safe seam —
//! the same redesign the extraction layer got with
//! `fastvg_core::api::Extractor` — and the registry makes it
//! addressable from a CLI flag or a service request:
//!
//! | spec | backend |
//! |---|---|
//! | `sim` | replay the scenario's diagram directly ([`CsdSource`]) |
//! | `throttled:<dwell>` | `sim` behind a real per-probe sleep ([`crate::ThrottledSource`]) |
//! | `replay:<tape>` | play a recorded tape back, strictly ([`ReplaySource`]) |
//! | `record:<tape>` | `sim`, taping every probe to `<tape>` ([`RecordingSource`]) |
//! | `record:<tape>+<inner>` | any inner spec, taped |
//! | `hwsim:<profile>` | the diagram behind a register-level DAC model ([`crate::hwsim`]) |
//! | `multiplexed:<N>[+<inner>]` | any inner spec behind `N` shared probe channels ([`crate::mux`]) |
//!
//! `<dwell>` is an integer with a unit (`50us`, `2ms`, `1s`, `0`),
//! validated and capped at the door like `qd-dataset`'s wire specs.
//! Tape paths may contain `{label}`, substituted with the scenario's
//! (sanitized) label at open time so one spec fans out to per-benchmark
//! tapes.
//!
//! # Example
//!
//! ```
//! use qd_csd::{Csd, VoltageGrid};
//! use qd_instrument::backend::{BackendRegistry, SourceScenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = BackendRegistry::standard();
//! let backend = registry.resolve("throttled:0")?;
//!
//! let grid = VoltageGrid::new(0.0, 0.0, 1.0, 32, 32)?;
//! let csd = Csd::from_fn(grid, |v1, v2| v1 + v2)?;
//! let mut session = backend.session(SourceScenario::new(csd))?;
//! assert_eq!(session.get_current(2.0, 3.0), 5.0);
//! # Ok(())
//! # }
//! ```

use crate::tape::{RecordingSource, ReplayMode, ReplaySource, TapeError};
use crate::{CsdSource, CurrentSource, MeasurementSession, ThrottledSource};
use qd_csd::Csd;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A type-erased probe source, as produced by [`SourceBackend::open`].
pub type BoxedSource = Box<dyn CurrentSource + Send>;

/// Largest dwell a `throttled:<dwell>` spec accepts. Real charge-sensor
/// dwells are ~50 ms; 10 s leaves demo headroom without letting a typo
/// (or a hostile request) park a worker for hours per probe.
pub const MAX_BACKEND_DWELL: Duration = Duration::from_secs(10);

/// Errors resolving a backend spec or opening a source through one.
#[derive(Debug)]
#[non_exhaustive]
pub enum BackendError {
    /// The spec's scheme is not in the registry.
    UnknownScheme {
        /// The scheme that failed to resolve.
        scheme: String,
        /// The schemes the registry knows, for the error message.
        known: Vec<String>,
    },
    /// The spec's arguments are malformed or out of range.
    InvalidSpec {
        /// What was wrong.
        message: String,
    },
    /// The same knob appeared twice in one spec. Last-wins would let a
    /// typo silently override an earlier value
    /// (`hwsim:nominal,xt=0.1,xt=0.9`), so duplicates are a named,
    /// matchable rejection instead.
    DuplicateOption {
        /// The scheme whose arguments repeated the knob.
        scheme: String,
        /// The repeated key.
        key: String,
    },
    /// A tape could not be read, written or parsed.
    Tape(TapeError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnknownScheme { scheme, known } => write!(
                f,
                "unknown backend scheme {scheme:?} (known: {})",
                known.join(", ")
            ),
            BackendError::InvalidSpec { message } => {
                write!(f, "invalid backend spec: {message}")
            }
            BackendError::DuplicateOption { scheme, key } => {
                write!(f, "duplicate {scheme} option {key:?}")
            }
            BackendError::Tape(e) => write!(f, "backend tape error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Tape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TapeError> for BackendError {
    fn from(e: TapeError) -> Self {
        BackendError::Tape(e)
    }
}

fn invalid(message: impl Into<String>) -> BackendError {
    BackendError::InvalidSpec {
        message: message.into(),
    }
}

/// What a backend opens a probe source *over*: the realized diagram
/// plus the metadata recorded into tape headers.
///
/// Every entry point realizes its scenario (a Table 1 benchmark, a wire
/// spec, an inline grid) into a [`Csd`] first; the backend then decides
/// how that diagram is probed — directly, throttled, taped, or not at
/// all (replay ignores the diagram and serves the tape).
#[derive(Debug, Clone)]
pub struct SourceScenario {
    /// The realized diagram.
    pub csd: Csd,
    /// Free-form run label (`bench03-fast`, a job id, …); substituted
    /// into `{label}` tape-path templates and recorded in tape headers.
    pub label: String,
    /// The generation seed behind the diagram (0 when not applicable);
    /// recorded in tape headers.
    pub seed: u64,
}

impl SourceScenario {
    /// A scenario over `csd` with the default label `"run"` and seed 0.
    pub fn new(csd: Csd) -> Self {
        Self {
            csd,
            label: "run".to_string(),
            seed: 0,
        }
    }

    /// Sets the run label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the generation seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// An object-safe probe-source provider — the instrument-layer
/// counterpart of `fastvg_core::api::Extractor`.
///
/// Implementations decide how a realized scenario is measured. They are
/// shared across worker threads (`Send + Sync`) and each
/// [`SourceBackend::open`] call must produce an *independent* source:
/// batch layers open one per job, concurrently.
pub trait SourceBackend: Send + Sync {
    /// The registry scheme this backend answers to (`"sim"`, …).
    fn scheme(&self) -> &str;

    /// The canonical spec string describing this exact configuration
    /// (`"throttled:2ms"`); resolving it reproduces the backend.
    fn describe(&self) -> String;

    /// The real per-probe dwell this backend imposes
    /// ([`Duration::ZERO`] for pure simulation). Recorded into tape
    /// headers by recording wrappers.
    fn dwell(&self) -> Duration {
        Duration::ZERO
    }

    /// Opens a fresh probe source over `scenario`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] when the source cannot be constructed
    /// (unreadable tape, unwritable tape path, …).
    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError>;

    /// Opens a source and wraps it in a caching [`MeasurementSession`]
    /// — the common consumer-side one-liner.
    ///
    /// # Errors
    ///
    /// Whatever [`SourceBackend::open`] returns.
    fn session(
        &self,
        scenario: SourceScenario,
    ) -> Result<MeasurementSession<BoxedSource>, BackendError> {
        Ok(MeasurementSession::new(self.open(scenario)?))
    }

    /// The shared [`crate::mux::ChannelPool`] behind this backend, if it
    /// multiplexes its sources over one — `None` for everything else.
    /// Lets observers (the serve daemon's `/metrics`, trace spans) read
    /// contention counters through the object-safe seam without
    /// downcasting.
    fn channel_pool(&self) -> Option<&crate::mux::ChannelPool> {
        None
    }
}

impl std::fmt::Debug for dyn SourceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dyn SourceBackend({})", self.describe())
    }
}

/// The compile-time-default backend: probe the scenario's diagram
/// directly through a [`CsdSource`] — exactly what every harness did
/// before backends existed, now as the registry's `sim` entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl SourceBackend for SimBackend {
    fn scheme(&self) -> &str {
        "sim"
    }

    fn describe(&self) -> String {
        "sim".to_string()
    }

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        Ok(Box::new(CsdSource::new(scenario.csd)))
    }
}

/// `throttled:<dwell>[+<inner>]` — any inner backend behind a real
/// per-probe sleep ([`ThrottledSource`]), making throughput harnesses
/// latency-bound like hardware.
#[derive(Debug)]
pub struct ThrottledBackend {
    dwell: Duration,
    inner: Arc<dyn SourceBackend>,
}

impl ThrottledBackend {
    /// Throttles `inner` to one probe per `dwell`.
    ///
    /// # Errors
    ///
    /// Rejects dwells above [`MAX_BACKEND_DWELL`].
    pub fn new(dwell: Duration, inner: Arc<dyn SourceBackend>) -> Result<Self, BackendError> {
        if dwell > MAX_BACKEND_DWELL {
            return Err(invalid(format!(
                "dwell {dwell:?} exceeds the {MAX_BACKEND_DWELL:?} cap"
            )));
        }
        Ok(Self { dwell, inner })
    }

    /// Throttled simulation — the common case.
    ///
    /// # Errors
    ///
    /// Rejects dwells above [`MAX_BACKEND_DWELL`].
    pub fn simulated(dwell: Duration) -> Result<Self, BackendError> {
        Self::new(dwell, Arc::new(SimBackend))
    }
}

impl SourceBackend for ThrottledBackend {
    fn scheme(&self) -> &str {
        "throttled"
    }

    fn describe(&self) -> String {
        let inner = self.inner.describe();
        if inner == "sim" {
            format!("throttled:{}", format_dwell(self.dwell))
        } else {
            format!("throttled:{}+{inner}", format_dwell(self.dwell))
        }
    }

    fn dwell(&self) -> Duration {
        self.dwell.max(self.inner.dwell())
    }

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        Ok(Box::new(ThrottledSource::new(
            self.inner.open(scenario)?,
            self.dwell,
        )))
    }
}

/// `replay:<tape>` — serve probes off a recorded tape
/// ([`ReplaySource`]), strictly by default. The scenario's diagram is
/// ignored; the tape *is* the instrument.
#[derive(Debug)]
pub struct ReplayBackend {
    path: PathBuf,
    mode: ReplayMode,
}

impl ReplayBackend {
    /// Replays the tape at `path` (may contain `{label}`).
    pub fn new(path: impl Into<PathBuf>, mode: ReplayMode) -> Self {
        Self {
            path: path.into(),
            mode,
        }
    }
}

impl SourceBackend for ReplayBackend {
    fn scheme(&self) -> &str {
        "replay"
    }

    fn describe(&self) -> String {
        format!("replay:{}", self.path.display())
    }

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        let path = resolve_tape_path(&self.path, &scenario.label);
        let source = ReplaySource::load(&path, self.mode)?;
        Ok(Box::new(source))
    }
}

/// `record:<tape>[+<inner>]` — any inner backend with every probe taped
/// to `<tape>` ([`RecordingSource`]).
#[derive(Debug)]
pub struct RecordBackend {
    path: PathBuf,
    inner: Arc<dyn SourceBackend>,
}

impl RecordBackend {
    /// Tapes `inner` to `path` (may contain `{label}`; without it,
    /// concurrent opens overwrite each other's tape — use the template
    /// whenever a batch opens more than one source).
    pub fn new(path: impl Into<PathBuf>, inner: Arc<dyn SourceBackend>) -> Self {
        Self {
            path: path.into(),
            inner,
        }
    }
}

impl SourceBackend for RecordBackend {
    fn scheme(&self) -> &str {
        "record"
    }

    fn describe(&self) -> String {
        format!("record:{}+{}", self.path.display(), self.inner.describe())
    }

    fn dwell(&self) -> Duration {
        self.inner.dwell()
    }

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        let path = resolve_tape_path(&self.path, &scenario.label);
        let label = scenario.label.clone();
        let seed = scenario.seed;
        let dwell = self.inner.dwell();
        let inner = self.inner.open(scenario)?;
        let source = RecordingSource::create(inner, &path, &label, dwell, seed)?;
        Ok(Box::new(source))
    }
}

/// Replaces `{label}` in a tape path with the sanitized scenario label.
fn resolve_tape_path(template: &std::path::Path, label: &str) -> PathBuf {
    let text = template.to_string_lossy();
    if !text.contains("{label}") {
        return template.to_path_buf();
    }
    let sanitized: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    // "." and ".." survive the character filter but are path
    // components, not names — a {label} of ".." in a multi-component
    // template would escape the tape directory.
    let sanitized = if sanitized.is_empty() || sanitized.chars().all(|c| c == '.') {
        "run".to_string()
    } else {
        sanitized
    };
    PathBuf::from(text.replace("{label}", &sanitized))
}

/// Parses a dwell spec: an unsigned integer with a unit (`ns`, `us`,
/// `ms`, `s`), or a bare `0`. Values above [`MAX_BACKEND_DWELL`] are
/// rejected — hostile dwells are stopped at the door, like
/// `qd-dataset`'s wire-spec ranges.
///
/// # Errors
///
/// Returns [`BackendError::InvalidSpec`] on malformed or out-of-range
/// input.
pub fn parse_dwell(text: &str) -> Result<Duration, BackendError> {
    let text = text.trim();
    if text == "0" {
        return Ok(Duration::ZERO);
    }
    let split = text
        .find(|c: char| !c.is_ascii_digit())
        .filter(|&i| i > 0)
        .ok_or_else(|| {
            invalid(format!(
                "dwell {text:?} must be an unsigned integer with a unit (ns|us|ms|s), e.g. 50us"
            ))
        })?;
    let (digits, unit) = text.split_at(split);
    let value: u64 = digits
        .parse()
        .map_err(|_| invalid(format!("dwell value {digits:?} does not fit u64")))?;
    let dwell = match unit {
        "ns" => Duration::from_nanos(value),
        "us" => Duration::from_micros(value),
        "ms" => Duration::from_millis(value),
        "s" => Duration::from_secs(value),
        other => {
            return Err(invalid(format!(
                "dwell unit {other:?} must be one of ns|us|ms|s"
            )))
        }
    };
    if dwell > MAX_BACKEND_DWELL {
        return Err(invalid(format!(
            "dwell {dwell:?} exceeds the {MAX_BACKEND_DWELL:?} cap"
        )));
    }
    Ok(dwell)
}

/// Formats a dwell in the largest exact unit, inverse of
/// [`parse_dwell`].
pub(crate) fn format_dwell(dwell: Duration) -> String {
    let ns = dwell.as_nanos();
    if ns == 0 {
        "0".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// A factory resolving one scheme's argument string (everything after
/// the first `:`) into a backend. The registry itself is passed back in
/// so composite schemes (`record:…+<inner>`) can resolve their inner
/// spec recursively.
pub type BackendFactory = Box<
    dyn Fn(&str, &BackendRegistry) -> Result<Arc<dyn SourceBackend>, BackendError> + Send + Sync,
>;

/// The string-keyed backend registry: maps spec strings
/// (`scheme[:args]`) to [`SourceBackend`] instances.
///
/// [`BackendRegistry::standard`] ships the four built-in schemes;
/// embedders register additional ones (a hardware driver, a network
/// instrument) with [`BackendRegistry::register`] and every `--backend`
/// flag and service scenario picks them up — that is the seam the
/// redesign exists for.
pub struct BackendRegistry {
    factories: Vec<(String, BackendFactory)>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("schemes", &self.schemes())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl BackendRegistry {
    /// A registry with no schemes.
    pub fn empty() -> Self {
        Self {
            factories: Vec::new(),
        }
    }

    /// The built-in schemes: `sim`, `throttled`, `replay`, `record`,
    /// `hwsim`, `multiplexed`.
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry.register("sim", |args, _| {
            if args.is_empty() {
                Ok(Arc::new(SimBackend) as Arc<dyn SourceBackend>)
            } else {
                Err(invalid(format!("sim takes no arguments, got {args:?}")))
            }
        });
        registry.register("throttled", |args, registry| {
            let (dwell, inner) = match args.split_once('+') {
                Some((dwell, inner)) => (dwell, registry.resolve(inner)?),
                None => (args, Arc::new(SimBackend) as Arc<dyn SourceBackend>),
            };
            Ok(Arc::new(ThrottledBackend::new(parse_dwell(dwell)?, inner)?) as _)
        });
        registry.register("replay", |args, _| {
            if args.is_empty() {
                return Err(invalid("replay needs a tape path: replay:<tape>"));
            }
            Ok(Arc::new(ReplayBackend::new(args, ReplayMode::Strict)) as _)
        });
        registry.register("record", |args, registry| {
            let (path, inner) = match args.split_once('+') {
                Some((path, inner)) => (path, registry.resolve(inner)?),
                None => (args, Arc::new(SimBackend) as Arc<dyn SourceBackend>),
            };
            if path.is_empty() {
                return Err(invalid("record needs a tape path: record:<tape>[+<inner>]"));
            }
            Ok(Arc::new(RecordBackend::new(path, inner)) as _)
        });
        registry.register("hwsim", |args, _| {
            let profile = crate::hwsim::HwSimProfile::parse(args)?;
            Ok(Arc::new(crate::hwsim::HwSimBackend::new(profile)) as _)
        });
        registry.register("multiplexed", |args, registry| {
            let (config, inner) = match args.split_once('+') {
                Some((config, inner)) => (config, registry.resolve(inner)?),
                None => (args, Arc::new(SimBackend) as Arc<dyn SourceBackend>),
            };
            let config = crate::mux::MuxConfig::parse(config)?;
            Ok(Arc::new(crate::mux::MultiplexedBackend::new(config, inner)?) as _)
        });
        registry
    }

    /// Registers (or replaces) a scheme.
    pub fn register(
        &mut self,
        scheme: impl Into<String>,
        factory: impl Fn(&str, &BackendRegistry) -> Result<Arc<dyn SourceBackend>, BackendError>
            + Send
            + Sync
            + 'static,
    ) {
        let scheme = scheme.into();
        self.factories.retain(|(s, _)| *s != scheme);
        self.factories.push((scheme, Box::new(factory)));
    }

    /// The registered schemes, in registration order.
    pub fn schemes(&self) -> Vec<&str> {
        self.factories.iter().map(|(s, _)| s.as_str()).collect()
    }

    /// Splits a spec string into `(scheme, args)` exactly the way
    /// [`BackendRegistry::resolve`] does: trim, then cut at the first
    /// `:` (no `:` means no args). This is the one scheme parser —
    /// request-level allowlists (the serve daemon) use it instead of
    /// re-implementing prefix matching.
    pub fn split_spec(spec: &str) -> (&str, &str) {
        let spec = spec.trim();
        match spec.split_once(':') {
            Some((scheme, args)) => (scheme, args),
            None => (spec, ""),
        }
    }

    /// Resolves a spec string (`scheme[:args]`) into a backend.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::UnknownScheme`] for unregistered schemes
    /// and whatever the scheme's factory returns for malformed
    /// arguments.
    pub fn resolve(&self, spec: &str) -> Result<Arc<dyn SourceBackend>, BackendError> {
        let (scheme, args) = Self::split_spec(spec);
        let factory = self
            .factories
            .iter()
            .find(|(s, _)| s == scheme)
            .map(|(_, f)| f)
            .ok_or_else(|| BackendError::UnknownScheme {
                scheme: scheme.to_string(),
                known: self.schemes().iter().map(|s| s.to_string()).collect(),
            })?;
        factory(args, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_csd::VoltageGrid;

    fn scenario() -> SourceScenario {
        let grid = VoltageGrid::new(0.0, 0.0, 1.0, 16, 16).unwrap();
        let csd = Csd::from_fn(grid, |v1, v2| 100.0 * v1 + v2).unwrap();
        SourceScenario::new(csd).with_label("unit").with_seed(3)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fastvg-backend-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn sim_backend_probes_the_diagram() {
        let backend = BackendRegistry::standard().resolve("sim").unwrap();
        assert_eq!(backend.scheme(), "sim");
        assert_eq!(backend.describe(), "sim");
        assert_eq!(backend.dwell(), Duration::ZERO);
        let mut session = backend.session(scenario()).unwrap();
        assert_eq!(session.get_current(2.0, 5.0), 205.0);
        assert_eq!(session.probe_count(), 1);
    }

    #[test]
    fn throttled_spec_parses_and_round_trips() {
        let registry = BackendRegistry::standard();
        for (spec, dwell) in [
            ("throttled:0", Duration::ZERO),
            ("throttled:50us", Duration::from_micros(50)),
            ("throttled:2ms", Duration::from_millis(2)),
            ("throttled:1s", Duration::from_secs(1)),
            ("throttled:750ns", Duration::from_nanos(750)),
        ] {
            let backend = registry.resolve(spec).unwrap();
            assert_eq!(backend.dwell(), dwell, "{spec}");
            assert_eq!(backend.describe(), spec, "canonical form");
            // The canonical form resolves back to the same backend.
            let again = registry.resolve(&backend.describe()).unwrap();
            assert_eq!(again.dwell(), dwell);
        }
    }

    #[test]
    fn hostile_dwells_are_rejected_at_the_door() {
        let registry = BackendRegistry::standard();
        for spec in [
            "throttled:",
            "throttled:50",                       // no unit
            "throttled:-1ms",                     // negative
            "throttled:1.5ms",                    // fractional
            "throttled:11s",                      // over the cap
            "throttled:9999999999999999999999ms", // overflow
            "throttled:50xs",                     // unknown unit
            "throttled:ms",                       // no digits
        ] {
            let err = registry.resolve(spec).unwrap_err();
            assert!(
                matches!(err, BackendError::InvalidSpec { .. }),
                "{spec} -> {err}"
            );
        }
    }

    #[test]
    fn unknown_schemes_name_the_alternatives() {
        let err = BackendRegistry::standard()
            .resolve("hardware:qpu0")
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("hardware"), "{text}");
        assert!(text.contains("sim"), "{text}");
        assert!(text.contains("replay"), "{text}");
    }

    #[test]
    fn sim_rejects_arguments() {
        assert!(BackendRegistry::standard().resolve("sim:fast").is_err());
    }

    #[test]
    fn record_then_replay_reproduces_readings() {
        let registry = BackendRegistry::standard();
        let path = tmp("roundtrip.tape");
        let spec = format!("record:{}", path.display());
        let recorder = registry.resolve(&spec).unwrap();
        assert_eq!(recorder.describe(), format!("{spec}+sim"));

        let mut session = recorder.session(scenario()).unwrap();
        let a = session.get_current(1.0, 2.0);
        let b = session.get_current(3.0, 4.0);
        drop(session); // flush

        let replayer = registry
            .resolve(&format!("replay:{}", path.display()))
            .unwrap();
        let mut session = replayer.session(scenario()).unwrap();
        assert_eq!(session.get_current(1.0, 2.0).to_bits(), a.to_bits());
        assert_eq!(session.get_current(3.0, 4.0).to_bits(), b.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn label_templates_fan_out_tapes() {
        let dir = tmp("labels");
        let spec = format!("record:{}/{{label}}.tape", dir.display());
        let backend = BackendRegistry::standard().resolve(&spec).unwrap();
        for label in ["bench01-fast", "bench02-fast"] {
            let mut session = backend.session(scenario().with_label(label)).unwrap();
            let _ = session.get_current(0.0, 0.0);
        }
        assert!(dir.join("bench01-fast.tape").exists());
        assert!(dir.join("bench02-fast.tape").exists());
        // Hostile label characters are sanitized: '/' cannot survive
        // into the tape path, so the label stays one path component.
        let mut session = backend.session(scenario().with_label("../escape")).unwrap();
        let _ = session.get_current(0.0, 0.0);
        assert!(dir.join("..-escape.tape").exists());
        // A bare ".." label is a path *component* and must not survive
        // into the template (tapes/{label}/… would escape the dir).
        let mut session = backend.session(scenario().with_label("..")).unwrap();
        let _ = session.get_current(0.0, 0.0);
        assert!(dir.join("run.tape").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_wraps_throttled_and_tapes_its_dwell() {
        let path = tmp("throttled.tape");
        let spec = format!("record:{}+throttled:1ms", path.display());
        let backend = BackendRegistry::standard().resolve(&spec).unwrap();
        assert_eq!(backend.dwell(), Duration::from_millis(1));
        let mut session = backend.session(scenario()).unwrap();
        let _ = session.get_current(1.0, 1.0);
        drop(session);
        let tape = crate::tape::Tape::load(&path).unwrap();
        assert_eq!(tape.header.dwell, Duration::from_millis(1));
        assert_eq!(tape.header.seed, 3);
        assert_eq!(tape.header.label, "unit");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_missing_tape_fails_cleanly() {
        let backend = BackendRegistry::standard()
            .resolve("replay:/nonexistent/no.tape")
            .unwrap();
        let err = backend.open(scenario()).unwrap_err();
        assert!(matches!(err, BackendError::Tape(_)), "{err}");
        // The I/O cause is reachable through the source chain.
        let mut cursor: Option<&(dyn std::error::Error + 'static)> =
            std::error::Error::source(&err);
        let mut found_io = false;
        while let Some(e) = cursor {
            found_io |= e.downcast_ref::<std::io::Error>().is_some();
            cursor = e.source();
        }
        assert!(found_io, "chain must reach the io::Error");
    }

    #[test]
    fn custom_schemes_can_be_registered() {
        let mut registry = BackendRegistry::standard();
        registry.register("null", |_, _| {
            #[derive(Debug)]
            struct NullBackend;
            impl SourceBackend for NullBackend {
                fn scheme(&self) -> &str {
                    "null"
                }
                fn describe(&self) -> String {
                    "null".to_string()
                }
                fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
                    let window = crate::VoltageWindow::from_grid(scenario.csd.grid());
                    Ok(Box::new(crate::FnSource::new(|_, _| 0.0, window)))
                }
            }
            Ok(Arc::new(NullBackend) as _)
        });
        assert!(registry.schemes().contains(&"null"));
        let mut session = registry
            .resolve("null")
            .unwrap()
            .session(scenario())
            .unwrap();
        assert_eq!(session.get_current(3.0, 3.0), 0.0);
    }

    #[test]
    fn boxed_sources_compose_with_sessions_and_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BoxedSource>();
        assert_send::<MeasurementSession<BoxedSource>>();
    }
}
