//! The `getCurrent` abstraction (paper Algorithm 1) and its
//! implementations.

use qd_csd::{Csd, VoltageGrid};
use qd_physics::noise::NoiseModel;
use qd_physics::LinearArrayDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The rectangular voltage window a source can be probed on, plus the
/// granularity `δ` (pixel size) measurements are quantized to.
///
/// Probes outside the window are clamped to its edge — a real instrument
/// would rail its DAC the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageWindow {
    /// Lowest `V_P1`.
    pub x_min: f64,
    /// Lowest `V_P2`.
    pub y_min: f64,
    /// Highest `V_P1`.
    pub x_max: f64,
    /// Highest `V_P2`.
    pub y_max: f64,
    /// Voltage granularity (the paper's pixel size `δ`).
    pub delta: f64,
}

impl VoltageWindow {
    /// The window spanned by a [`VoltageGrid`].
    pub fn from_grid(grid: &VoltageGrid) -> Self {
        let (x0, y0) = grid.origin();
        let (x1, y1) = grid.voltage_of(grid.width() - 1, grid.height() - 1);
        Self {
            x_min: x0,
            y_min: y0,
            x_max: x1,
            y_max: y1,
            delta: grid.delta(),
        }
    }

    /// Width in pixels (inclusive of both edges).
    pub fn width_px(&self) -> usize {
        ((self.x_max - self.x_min) / self.delta).round() as usize + 1
    }

    /// Height in pixels (inclusive of both edges).
    pub fn height_px(&self) -> usize {
        ((self.y_max - self.y_min) / self.delta).round() as usize + 1
    }

    /// Total pixels in the window.
    pub fn len(&self) -> usize {
        self.width_px() * self.height_px()
    }

    /// Whether the window is degenerate (never for valid grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Quantizes voltages to the integer pixel indices used for probe
    /// deduplication, clamping to the window.
    pub fn quantize(&self, v1: f64, v2: f64) -> (i64, i64) {
        let x = ((v1 - self.x_min) / self.delta).round() as i64;
        let y = ((v2 - self.y_min) / self.delta).round() as i64;
        (
            x.clamp(0, self.width_px() as i64 - 1),
            y.clamp(0, self.height_px() as i64 - 1),
        )
    }
}

/// A source of charge-sensor current readings — the paper's
/// `getCurrent(v1, v2)` (Algorithm 1) minus the dwell, which
/// [`crate::MeasurementSession`] accounts separately.
pub trait CurrentSource {
    /// Reads the sensor current at plunger voltages `(v1, v2)`.
    /// Out-of-window voltages clamp to the window edge.
    fn current(&mut self, v1: f64, v2: f64) -> f64;

    /// The voltage window this source is defined on.
    fn window(&self) -> VoltageWindow;
}

impl std::fmt::Debug for dyn CurrentSource + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn CurrentSource")
    }
}

/// Boxed sources probe like the source they wrap, so type-erased
/// sources from a [`crate::backend::SourceBackend`] slot into every
/// generic consumer (`MeasurementSession<Box<dyn CurrentSource + Send>>`
/// is the runtime-selected session type).
impl<S: CurrentSource + ?Sized> CurrentSource for Box<S> {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        (**self).current(v1, v2)
    }

    fn window(&self) -> VoltageWindow {
        (**self).window()
    }
}

/// Replays a recorded or synthetic [`Csd`] — exactly how the paper
/// evaluates on the qflow dataset: "the `getCurrent` function will return
/// a current from a CSD in the dataset".
#[derive(Debug, Clone)]
pub struct CsdSource {
    csd: Csd,
}

impl CsdSource {
    /// Wraps a diagram.
    pub fn new(csd: Csd) -> Self {
        Self { csd }
    }

    /// The wrapped diagram.
    pub fn csd(&self) -> &Csd {
        &self.csd
    }

    /// Unwraps the diagram.
    pub fn into_inner(self) -> Csd {
        self.csd
    }
}

impl CurrentSource for CsdSource {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        let g = self.csd.grid();
        let (fx, fy) = g.fractional_pixel_of(v1, v2);
        let x = (fx.round().clamp(0.0, (g.width() - 1) as f64)) as usize;
        let y = (fy.round().clamp(0.0, (g.height() - 1) as f64)) as usize;
        self.csd.at(x, y)
    }

    fn window(&self) -> VoltageWindow {
        VoltageWindow::from_grid(self.csd.grid())
    }
}

/// Live evaluation of a [`LinearArrayDevice`]: two chosen plunger gates are
/// swept while the remaining gates are held at fixed bias voltages, with an
/// optional stateful noise stack applied per probe.
///
/// This is the "real experiment" path: unlike [`CsdSource`] nothing is
/// precomputed, and noise depends on probe *order* (drift accumulates
/// between measurements exactly as it would on hardware).
pub struct PhysicsSource {
    device: LinearArrayDevice,
    gate_x: usize,
    gate_y: usize,
    bias: Vec<f64>,
    window: VoltageWindow,
    noise: Option<Box<dyn NoiseModel + Send>>,
    rng: StdRng,
}

impl std::fmt::Debug for PhysicsSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicsSource")
            .field("gate_x", &self.gate_x)
            .field("gate_y", &self.gate_y)
            .field("window", &self.window)
            .field("noisy", &self.noise.is_some())
            .finish()
    }
}

impl PhysicsSource {
    /// Creates a source sweeping gates `gate_x` (maps to `v1`) and
    /// `gate_y` (maps to `v2`) of `device`, other gates pinned at `bias`,
    /// over `window`.
    ///
    /// # Panics
    ///
    /// Panics if the gate indices are out of range, equal, or `bias` has
    /// the wrong length — these are programming errors in harness code.
    pub fn new(
        device: LinearArrayDevice,
        gate_x: usize,
        gate_y: usize,
        bias: Vec<f64>,
        window: VoltageWindow,
    ) -> Self {
        let n = device.n_dots();
        assert!(
            gate_x < n && gate_y < n && gate_x != gate_y,
            "bad gate indices"
        );
        assert_eq!(bias.len(), n, "bias must have one entry per gate");
        Self {
            device,
            gate_x,
            gate_y,
            bias,
            window,
            noise: None,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Attaches a noise stack, seeded for reproducibility.
    #[must_use]
    pub fn with_noise(mut self, noise: impl NoiseModel + Send + 'static, seed: u64) -> Self {
        self.noise = Some(Box::new(noise));
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl CurrentSource for PhysicsSource {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        let w = self.window;
        let v1 = v1.clamp(w.x_min, w.x_max);
        let v2 = v2.clamp(w.y_min, w.y_max);
        let mut volts = self.bias.clone();
        volts[self.gate_x] = v1;
        volts[self.gate_y] = v2;
        // The device model only fails on shape mismatches, which the
        // constructor has ruled out.
        let clean = self
            .device
            .current(&volts)
            .expect("gate vector shape verified at construction");
        match &mut self.noise {
            Some(n) => clean + n.sample(&mut self.rng),
            None => clean,
        }
    }

    fn window(&self) -> VoltageWindow {
        self.window
    }
}

/// Adapts a closure as a current source — handy in tests and examples.
pub struct FnSource<F> {
    f: F,
    window: VoltageWindow,
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("FnSource")
            .field("window", &self.window)
            .finish()
    }
}

impl<F> FnSource<F>
where
    F: FnMut(f64, f64) -> f64,
{
    /// Wraps `f` with the given window.
    pub fn new(f: F, window: VoltageWindow) -> Self {
        Self { f, window }
    }
}

impl<F> CurrentSource for FnSource<F>
where
    F: FnMut(f64, f64) -> f64,
{
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        (self.f)(v1, v2)
    }

    fn window(&self) -> VoltageWindow {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_physics::{DeviceBuilder, WhiteNoise};

    fn grid() -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, 16, 16).unwrap()
    }

    #[test]
    fn window_from_grid() {
        let w = VoltageWindow::from_grid(&grid());
        assert_eq!(w.x_min, 0.0);
        assert_eq!(w.x_max, 15.0);
        assert_eq!(w.width_px(), 16);
        assert_eq!(w.height_px(), 16);
        assert_eq!(w.len(), 256);
        assert!(!w.is_empty());
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        let w = VoltageWindow::from_grid(&grid());
        assert_eq!(w.quantize(3.4, 3.6), (3, 4));
        assert_eq!(w.quantize(-10.0, 100.0), (0, 15));
    }

    #[test]
    fn csd_source_returns_pixel_values() {
        let csd = Csd::from_fn(grid(), |v1, v2| v1 * 100.0 + v2).unwrap();
        let mut s = CsdSource::new(csd);
        assert_eq!(s.current(3.0, 5.0), 305.0);
        // Rounding to nearest pixel.
        assert_eq!(s.current(3.4, 5.4), 305.0);
        assert_eq!(s.current(3.6, 5.6), 406.0);
    }

    #[test]
    fn csd_source_clamps_out_of_window() {
        let csd = Csd::from_fn(grid(), |v1, v2| v1 * 100.0 + v2).unwrap();
        let mut s = CsdSource::new(csd);
        assert_eq!(s.current(-5.0, -5.0), 0.0);
        assert_eq!(s.current(50.0, 50.0), 1515.0);
    }

    #[test]
    fn csd_source_accessors() {
        let csd = Csd::constant(grid(), 1.0).unwrap();
        let s = CsdSource::new(csd.clone());
        assert_eq!(s.csd(), &csd);
        assert_eq!(s.into_inner(), csd);
    }

    #[test]
    fn physics_source_matches_device() {
        let device = DeviceBuilder::double_dot().build_array().unwrap();
        let expected = device.current(&[10.0, 20.0]).unwrap();
        let w = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 100.0,
            y_max: 100.0,
            delta: 1.0,
        };
        let mut s = PhysicsSource::new(device, 0, 1, vec![0.0, 0.0], w);
        assert_eq!(s.current(10.0, 20.0), expected);
    }

    #[test]
    fn physics_source_noise_is_reproducible() {
        let w = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 100.0,
            y_max: 100.0,
            delta: 1.0,
        };
        let make = || {
            let device = DeviceBuilder::double_dot().build_array().unwrap();
            PhysicsSource::new(device, 0, 1, vec![0.0, 0.0], w).with_noise(WhiteNoise::new(0.1), 7)
        };
        let mut a = make();
        let mut b = make();
        for i in 0..20 {
            let v = i as f64;
            assert_eq!(a.current(v, v), b.current(v, v));
        }
    }

    #[test]
    fn physics_source_noise_depends_on_order() {
        // Drift noise: probing A,B differs from B,A at the second probe.
        use qd_physics::DriftNoise;
        let w = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 100.0,
            y_max: 100.0,
            delta: 1.0,
        };
        let make = || {
            let device = DeviceBuilder::double_dot().build_array().unwrap();
            PhysicsSource::new(device, 0, 1, vec![0.0, 0.0], w)
                .with_noise(DriftNoise::new(0.5, 0.0), 3)
        };
        let mut fwd = make();
        let a1 = fwd.current(10.0, 10.0);
        let _b1 = fwd.current(20.0, 20.0);
        let mut rev = make();
        let _b2 = rev.current(20.0, 20.0);
        let a2 = rev.current(10.0, 10.0);
        assert_ne!(a1, a2, "drift must make probe order matter");
    }

    #[test]
    fn fn_source_delegates() {
        let w = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 10.0,
            y_max: 10.0,
            delta: 1.0,
        };
        let mut s = FnSource::new(|a, b| a + b, w);
        assert_eq!(s.current(2.0, 3.0), 5.0);
        assert_eq!(s.window(), w);
    }

    #[test]
    #[should_panic(expected = "bad gate indices")]
    fn physics_source_rejects_equal_gates() {
        let device = DeviceBuilder::double_dot().build_array().unwrap();
        let w = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 1.0,
            y_max: 1.0,
            delta: 1.0,
        };
        let _ = PhysicsSource::new(device, 0, 0, vec![0.0, 0.0], w);
    }
}
