//! Register-level DAC hardware simulation: the `hwsim:<profile>`
//! backend.
//!
//! The `sim` backend probes a diagram through an *ideal* instrument:
//! every requested voltage is applied exactly, every probe costs the
//! same flat dwell, and the sensor never misbehaves. Real plunger gates
//! sit behind multi-channel DAC chips, and the drivers for those chips
//! (see the exemplars collected in `SNIPPETS.md`: 24-bit command words,
//! per-channel limit tables, vRef/gain output stages) impose a very
//! different contract:
//!
//! * **Quantization** — a channel outputs `offset + code · LSB` for a
//!   `bits`-wide code against its `vRef × gain` span; the requested
//!   voltage is rounded to the nearest representable code.
//! * **Clamping** — each channel carries a `[min_code, max_code]` limit
//!   table (protecting the device); requests outside it rail.
//! * **Bus latency** — changing a channel means clocking a command word
//!   (`CCCC AAAA DDDDDDDDDDDDDDDD`: command nibble, address nibble,
//!   16-bit data) plus an update strobe, and the analog output then
//!   slews to the new voltage at a finite rate. Probe cost is therefore
//!   a *function of the gate-voltage delta*: a large jump across the
//!   window pays slew time a one-pixel step does not.
//! * **Imperfections** — capacitive crosstalk between the two channels,
//!   1/f-style background drift of the sensor operating point
//!   ([`qd_physics::noise::PinkNoise`]), and dead pixels (stuck sensor
//!   readings) injected at a configurable rate.
//!
//! Everything is deterministic from the [`SourceScenario`] seed plus
//! the profile, so the `jobs=1 ≡ jobs=N` and record→replay bitwise
//! guarantees of the backend layer keep holding: dead pixels are a pure
//! hash of `(pixel, seed)`, drift advances one sample per dwell-costing
//! probe, and the bus/DAC models contain no randomness at all.
//!
//! Bus time is *virtual* (accounted, never slept — like the default
//! [`crate::DwellClock`]): [`HwSimSource::bus`] accumulates it per
//! source, and [`HwSimProfile::scatter_cost`] recomputes it from a
//! probe scatter after the fact, which is how the `fastvg-zoo` harness
//! reports per-scenario sweep cost.
//!
//! # Profile grammar
//!
//! ```text
//! hwsim:<preset>[,<key>=<value>]*
//! ```
//!
//! Presets (severity-ordered): `nominal`, `aged`, `worn`, `hostile`.
//! Keys: `bits` (6..=16), `xt` (crosstalk, 0..=0.25), `drift` (1/f σ in
//! nA, 0..=2), `dead` (dead-pixel fraction, 0..=0.5), `clip`
//! (per-channel limit-table margin, 0..=0.2), `slew` (V/ms, positive),
//! `twrite` / `tsettle` (dwell strings, e.g. `2us`). Hostile values are
//! rejected at the door ([`BackendError::InvalidSpec`]), like every
//! other spec surface in the workspace.

use crate::backend::{
    format_dwell, parse_dwell, BackendError, BoxedSource, SourceBackend, SourceScenario,
};
use crate::{CsdSource, CurrentSource, VoltageWindow};
use fastvg_wire::fnv1a64;
use qd_physics::noise::{NoiseModel, PinkNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Command nibble: write a channel's input register (no output change).
pub const CMD_WRITE_INPUT: u32 = 0x1;
/// Command nibble: strobe input registers to the DAC outputs.
pub const CMD_UPDATE_DAC: u32 = 0x2;
/// Command nibble: write a channel and update it in one word.
pub const CMD_WRITE_UPDATE: u32 = 0x3;

/// The sensor current a dead pixel reads: a railed ADC, far below any
/// live charge-sensor level the generator produces.
pub const DEAD_PIXEL_CURRENT: f64 = 0.0;

fn invalid(message: impl Into<String>) -> BackendError {
    BackendError::InvalidSpec {
        message: message.into(),
    }
}

/// Packs one 24-bit DAC command word: a command nibble, a one-hot
/// channel address nibble, and 16 data bits — the layout of the
/// nanoDAC-style drivers in `SNIPPETS.md`.
pub fn command_word(cmd: u32, channel: u32, data: u16) -> u32 {
    debug_assert!(cmd <= 0xf, "command nibble");
    debug_assert!(channel < 4, "address nibble is one-hot over 4 channels");
    (cmd << 20) | ((0x1 << channel) << 16) | data as u32
}

/// One DAC output channel: the code→voltage transfer function plus the
/// channel's limit table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacChannel {
    /// Reference voltage of the output stage.
    pub v_ref: f64,
    /// Output gain (span = `v_ref × gain`, the nanoDAC convention).
    pub gain: f64,
    /// Voltage at code 0.
    pub offset: f64,
    /// Voltage step per code.
    pub lsb: f64,
    /// Lowest code the limit table allows.
    pub min_code: u16,
    /// Highest code the limit table allows.
    pub max_code: u16,
}

impl DacChannel {
    /// Quantizes a requested voltage to the nearest representable code,
    /// railed into the channel's limit table.
    pub fn quantize(&self, v: f64) -> u16 {
        let code = ((v - self.offset) / self.lsb).round();
        let code = if code.is_finite() { code as i64 } else { 0 };
        code.clamp(self.min_code as i64, self.max_code as i64) as u16
    }

    /// The voltage a code actually outputs.
    pub fn dequantize(&self, code: u16) -> f64 {
        self.offset + code as f64 * self.lsb
    }

    /// The power-on code (mid-span of the limit table, like the
    /// per-channel default columns of real driver register maps).
    pub fn default_code(&self) -> u16 {
        self.min_code + (self.max_code - self.min_code) / 2
    }

    /// Lowest voltage the limit table admits.
    pub fn v_min(&self) -> f64 {
        self.dequantize(self.min_code)
    }

    /// Highest voltage the limit table admits.
    pub fn v_max(&self) -> f64 {
        self.dequantize(self.max_code)
    }
}

/// The two-channel DAC a profile realizes over a concrete voltage
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacModel {
    /// Code width in bits (6..=16).
    pub bits: u32,
    /// The plunger channels, `[0] ↦ v1`, `[1] ↦ v2`.
    pub channels: [DacChannel; 2],
}

impl DacModel {
    /// Quantizes a voltage pair to a code pair.
    pub fn quantize(&self, v1: f64, v2: f64) -> (u16, u16) {
        (self.channels[0].quantize(v1), self.channels[1].quantize(v2))
    }

    /// The voltages a code pair outputs.
    pub fn dequantize(&self, codes: (u16, u16)) -> (f64, f64) {
        (
            self.channels[0].dequantize(codes.0),
            self.channels[1].dequantize(codes.1),
        )
    }

    /// The power-on code pair.
    pub fn default_codes(&self) -> (u16, u16) {
        (
            self.channels[0].default_code(),
            self.channels[1].default_code(),
        )
    }
}

/// Bus traffic accounting for one [`HwSimSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Probes served.
    pub probes: u64,
    /// Command words clocked.
    pub words: u64,
    /// Total virtual bus + settle + slew time.
    pub time: Duration,
}

/// The named severity presets a profile starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwSimPreset {
    /// An ideal 16-bit DAC: no crosstalk, drift or dead pixels.
    Nominal,
    /// A lightly degraded instrument (mild severity band).
    Aged,
    /// A visibly degraded instrument (moderate severity band).
    Worn,
    /// A failing instrument (severe severity band).
    Hostile,
}

impl HwSimPreset {
    /// Every preset, severity order.
    pub const ALL: [HwSimPreset; 4] = [
        HwSimPreset::Nominal,
        HwSimPreset::Aged,
        HwSimPreset::Worn,
        HwSimPreset::Hostile,
    ];

    /// The grammar name (`nominal`, …).
    pub fn name(self) -> &'static str {
        match self {
            HwSimPreset::Nominal => "nominal",
            HwSimPreset::Aged => "aged",
            HwSimPreset::Worn => "worn",
            HwSimPreset::Hostile => "hostile",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    fn defaults(self) -> HwSimProfile {
        let us = Duration::from_micros;
        match self {
            HwSimPreset::Nominal => HwSimProfile {
                preset: self,
                bits: 16,
                crosstalk: 0.0,
                drift: 0.0,
                dead: 0.0,
                clip: 0.0,
                slew: 4.0,
                t_write: us(1),
                t_settle: us(20),
            },
            HwSimPreset::Aged => HwSimProfile {
                preset: self,
                bits: 14,
                crosstalk: 0.01,
                drift: 0.02,
                dead: 0.002,
                clip: 0.01,
                slew: 2.0,
                t_write: us(1),
                t_settle: us(50),
            },
            HwSimPreset::Worn => HwSimProfile {
                preset: self,
                bits: 12,
                crosstalk: 0.03,
                drift: 0.06,
                dead: 0.02,
                clip: 0.03,
                slew: 1.0,
                t_write: us(2),
                t_settle: us(200),
            },
            HwSimPreset::Hostile => HwSimProfile {
                preset: self,
                bits: 10,
                crosstalk: 0.08,
                drift: 0.15,
                dead: 0.12,
                clip: 0.06,
                slew: 0.5,
                t_write: us(5),
                t_settle: Duration::from_millis(1),
            },
        }
    }
}

/// A parsed, validated `hwsim` profile: a preset plus key overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct HwSimProfile {
    /// The preset the profile started from.
    pub preset: HwSimPreset,
    /// DAC code width (6..=16).
    pub bits: u32,
    /// Inter-channel capacitive crosstalk fraction (0..=0.25).
    pub crosstalk: f64,
    /// 1/f background-drift standard deviation in nA (0..=2).
    pub drift: f64,
    /// Dead-pixel fraction (0..=0.5).
    pub dead: f64,
    /// Per-channel limit-table margin: the fraction of code range
    /// clamped off at each end (0..=0.2).
    pub clip: f64,
    /// Analog slew rate in volts per millisecond (positive).
    pub slew: f64,
    /// Bus time per command word.
    pub t_write: Duration,
    /// Fixed settle time per probe.
    pub t_settle: Duration,
}

impl HwSimProfile {
    /// A preset profile with no overrides.
    pub fn preset(preset: HwSimPreset) -> Self {
        preset.defaults()
    }

    /// Parses the profile grammar (everything after `hwsim:`):
    /// `<preset>[,<key>=<value>]*`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidSpec`] on an unknown preset or
    /// key or an out-of-range value, and
    /// [`BackendError::DuplicateOption`] on a repeated key.
    pub fn parse(args: &str) -> Result<Self, BackendError> {
        let args = args.trim();
        if args.is_empty() {
            return Err(invalid(
                "hwsim needs a profile: hwsim:<preset>[,<key>=<value>…] \
                 (presets: nominal, aged, worn, hostile)",
            ));
        }
        let mut parts = args.split(',');
        let preset_name = parts.next().unwrap_or("").trim();
        let mut profile = HwSimPreset::from_name(preset_name)
            .ok_or_else(|| {
                invalid(format!(
                    "unknown hwsim preset {preset_name:?} (known: nominal, aged, worn, hostile)"
                ))
            })?
            .defaults();

        let mut seen: Vec<&str> = Vec::new();
        for part in parts {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| invalid(format!("hwsim option {part:?} must be <key>=<value>")))?;
            if seen.contains(&key) {
                return Err(BackendError::DuplicateOption {
                    scheme: "hwsim".to_string(),
                    key: key.to_string(),
                });
            }
            seen.push(key);
            let f64_in = |name: &str, lo: f64, hi: f64| -> Result<f64, BackendError> {
                let v: f64 = value
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| {
                        invalid(format!("hwsim {name}={value:?} must be a finite number"))
                    })?;
                if !(lo..=hi).contains(&v) {
                    return Err(invalid(format!("hwsim {name}={value} outside {lo}..={hi}")));
                }
                Ok(v)
            };
            match key {
                "bits" => {
                    let bits: u32 = value
                        .parse()
                        .map_err(|_| invalid(format!("hwsim bits={value:?} must be an integer")))?;
                    if !(6..=16).contains(&bits) {
                        return Err(invalid(format!("hwsim bits={bits} outside 6..=16")));
                    }
                    profile.bits = bits;
                }
                "xt" => profile.crosstalk = f64_in("xt", 0.0, 0.25)?,
                "drift" => profile.drift = f64_in("drift", 0.0, 2.0)?,
                "dead" => profile.dead = f64_in("dead", 0.0, 0.5)?,
                "clip" => profile.clip = f64_in("clip", 0.0, 0.2)?,
                "slew" => {
                    let v = f64_in("slew", 0.0, 1e6)?;
                    if v <= 0.0 {
                        return Err(invalid("hwsim slew must be positive"));
                    }
                    profile.slew = v;
                }
                "twrite" => profile.t_write = parse_dwell(value)?,
                "tsettle" => profile.t_settle = parse_dwell(value)?,
                other => {
                    return Err(invalid(format!(
                        "unknown hwsim option {other:?} \
                         (known: bits, xt, drift, dead, clip, slew, twrite, tsettle)"
                    )))
                }
            }
        }
        Ok(profile)
    }

    /// The canonical argument string: the preset name plus only the
    /// overridden keys, in fixed order. `parse(canonical_args())`
    /// reproduces the profile exactly — the [`SourceBackend::describe`]
    /// contract.
    pub fn canonical_args(&self) -> String {
        let d = self.preset.defaults();
        let mut out = self.preset.name().to_string();
        if self.bits != d.bits {
            out.push_str(&format!(",bits={}", self.bits));
        }
        if self.crosstalk != d.crosstalk {
            out.push_str(&format!(",xt={}", self.crosstalk));
        }
        if self.drift != d.drift {
            out.push_str(&format!(",drift={}", self.drift));
        }
        if self.dead != d.dead {
            out.push_str(&format!(",dead={}", self.dead));
        }
        if self.clip != d.clip {
            out.push_str(&format!(",clip={}", self.clip));
        }
        if self.slew != d.slew {
            out.push_str(&format!(",slew={}", self.slew));
        }
        if self.t_write != d.t_write {
            out.push_str(&format!(",twrite={}", format_dwell(self.t_write)));
        }
        if self.t_settle != d.t_settle {
            out.push_str(&format!(",tsettle={}", format_dwell(self.t_settle)));
        }
        out
    }

    /// Realizes the DAC this profile drives over a concrete voltage
    /// window: each channel's span covers the window plus a 2 % margin,
    /// the output stage picks the nanoDAC-style gain (2 for wide spans,
    /// 1 otherwise), and the limit tables pull `clip` of the code range
    /// in at both ends.
    pub fn dac_for(&self, window: &VoltageWindow) -> DacModel {
        let levels = (1u32 << self.bits) as f64;
        let top = (1u32 << self.bits) - 1;
        let channel = |lo: f64, hi: f64| -> DacChannel {
            let margin = 0.02 * (hi - lo);
            let offset = lo - margin;
            let range = (hi - lo) + 2.0 * margin;
            let gain = if range > 30.0 { 2.0 } else { 1.0 };
            let clipped = (self.clip * top as f64).round() as u16;
            DacChannel {
                v_ref: range / gain,
                gain,
                offset,
                lsb: range / levels,
                min_code: clipped,
                max_code: (top as u16).saturating_sub(clipped),
            }
        };
        DacModel {
            bits: self.bits,
            channels: [
                channel(window.x_min, window.x_max),
                channel(window.y_min, window.y_max),
            ],
        }
    }

    /// Command words one probe clocks: a `CMD_WRITE_INPUT` per changed
    /// channel plus one `CMD_UPDATE_DAC` strobe when anything changed
    /// (`None` = power-on, both channels written).
    pub fn bus_words(prev: Option<(u16, u16)>, next: (u16, u16)) -> u64 {
        let writes = match prev {
            None => 2,
            Some(p) => (p.0 != next.0) as u64 + (p.1 != next.1) as u64,
        };
        writes + (writes > 0) as u64
    }

    /// The virtual cost of one probe: fixed settle time, bus words, and
    /// the analog slew to the new output voltages. Monotone
    /// (non-decreasing) in the gate-voltage delta — the property that
    /// makes large sweeps expensive and one-pixel steps cheap.
    pub fn probe_cost(
        &self,
        dac: &DacModel,
        prev: Option<(u16, u16)>,
        next: (u16, u16),
    ) -> Duration {
        let from = prev.unwrap_or_else(|| dac.default_codes());
        let (f1, f2) = dac.dequantize(from);
        let (t1, t2) = dac.dequantize(next);
        let dv = (t1 - f1).abs().max((t2 - f2).abs());
        let slew = Duration::from_secs_f64(dv / (self.slew * 1000.0));
        self.t_settle + self.t_write * Self::bus_words(prev, next) as u32 + slew
    }

    /// Recomputes the total bus cost of a dwell-costing probe sequence
    /// (e.g. a session's scatter: unique pixels in first-probe order)
    /// over `window`. With the session cache on, every dwell-costing
    /// probe is a pixel's first probe, so this reproduces exactly what
    /// an [`HwSimSource`] accumulated — without keeping the source.
    pub fn scatter_cost(&self, window: &VoltageWindow, pixels: &[(i64, i64)]) -> Duration {
        let dac = self.dac_for(window);
        let mut prev = None;
        let mut total = Duration::ZERO;
        for &(x, y) in pixels {
            let v1 = window.x_min + x as f64 * window.delta;
            let v2 = window.y_min + y as f64 * window.delta;
            let codes = dac.quantize(v1, v2);
            total += self.probe_cost(&dac, prev, codes);
            prev = Some(codes);
        }
        total
    }
}

/// Whether `(x, y)` is a dead pixel for `seed` at `fraction` — a pure
/// hash, so dead-pixel maps are identical across probe orders, jobs
/// counts and record→replay.
pub fn is_dead_pixel(x: i64, y: i64, seed: u64, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&x.to_le_bytes());
    bytes[8..16].copy_from_slice(&y.to_le_bytes());
    bytes[16..].copy_from_slice(&seed.to_le_bytes());
    let unit = (fnv1a64(&bytes) >> 11) as f64 / (1u64 << 53) as f64;
    unit < fraction
}

/// A [`CurrentSource`] probing a scenario's diagram through the
/// simulated DAC register layer. Created by [`HwSimBackend::open`].
pub struct HwSimSource {
    inner: CsdSource,
    window: VoltageWindow,
    profile: HwSimProfile,
    dac: DacModel,
    seed: u64,
    prev: Option<(u16, u16)>,
    drift: Option<PinkNoise>,
    rng: StdRng,
    bus: BusStats,
}

impl std::fmt::Debug for HwSimSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwSimSource")
            .field("profile", &self.profile.canonical_args())
            .field("bus", &self.bus)
            .finish()
    }
}

impl HwSimSource {
    /// A source over `scenario` through `profile`'s instrument. All
    /// stochastic behavior derives from `scenario.seed` and the
    /// profile, nothing else.
    pub fn new(profile: HwSimProfile, scenario: &SourceScenario) -> Self {
        let window = VoltageWindow::from_grid(scenario.csd.grid());
        let dac = profile.dac_for(&window);
        let salt = fnv1a64(profile.canonical_args().as_bytes());
        let drift = (profile.drift > 0.0).then(|| PinkNoise::new(profile.drift, 4, 0.05));
        Self {
            inner: CsdSource::new(scenario.csd.clone()),
            window,
            dac,
            seed: scenario.seed,
            prev: None,
            drift,
            rng: StdRng::seed_from_u64(scenario.seed ^ salt),
            profile,
            bus: BusStats::default(),
        }
    }

    /// The bus traffic this source has accumulated.
    pub fn bus(&self) -> BusStats {
        self.bus
    }

    /// The realized DAC model.
    pub fn dac(&self) -> &DacModel {
        &self.dac
    }
}

impl CurrentSource for HwSimSource {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        // Register layer: quantize + clamp, pay the bus.
        let codes = self.dac.quantize(v1, v2);
        self.bus.probes += 1;
        self.bus.words += HwSimProfile::bus_words(self.prev, codes);
        self.bus.time += self.profile.probe_cost(&self.dac, self.prev, codes);
        self.prev = Some(codes);
        let (a1, a2) = self.dac.dequantize(codes);

        // Drift advances exactly once per dwell-costing probe, dead or
        // not, so the sample stream is a pure function of the probe
        // sequence.
        let drift = match &mut self.drift {
            Some(p) => p.sample(&mut self.rng),
            None => 0.0,
        };

        let (px, py) = self.window.quantize(a1, a2);
        if is_dead_pixel(px, py, self.seed, self.profile.dead) {
            return DEAD_PIXEL_CURRENT;
        }

        // Capacitive crosstalk, centered on the window so the effect is
        // a pure honeycomb shear rather than a global offset.
        let cx = 0.5 * (self.window.x_min + self.window.x_max);
        let cy = 0.5 * (self.window.y_min + self.window.y_max);
        let e1 = a1 + self.profile.crosstalk * (a2 - cy);
        let e2 = a2 + self.profile.crosstalk * (a1 - cx);
        self.inner.current(e1, e2) + drift
    }

    fn window(&self) -> VoltageWindow {
        self.window
    }
}

/// `hwsim:<profile>` — the scenario's diagram behind a register-level
/// DAC hardware model. See the module docs for the profile grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct HwSimBackend {
    profile: HwSimProfile,
}

impl HwSimBackend {
    /// A backend applying `profile` to every opened scenario.
    pub fn new(profile: HwSimProfile) -> Self {
        Self { profile }
    }

    /// The profile this backend applies.
    pub fn profile(&self) -> &HwSimProfile {
        &self.profile
    }
}

impl SourceBackend for HwSimBackend {
    fn scheme(&self) -> &str {
        "hwsim"
    }

    fn describe(&self) -> String {
        format!("hwsim:{}", self.profile.canonical_args())
    }

    // dwell() stays ZERO: bus/settle/slew time is virtual accounting
    // (BusStats, scatter_cost), not a real sleep — compose with
    // `throttled:<dwell>+hwsim:<profile>` for wall-clock realism.

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        Ok(Box::new(HwSimSource::new(self.profile.clone(), &scenario)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_csd::{Csd, VoltageGrid};

    fn scenario() -> SourceScenario {
        let grid = VoltageGrid::new(-10.0, 5.0, 1.0, 32, 32).unwrap();
        let csd = Csd::from_fn(grid, |v1, v2| 2.0 + 0.1 * v1 + 0.01 * v2).unwrap();
        SourceScenario::new(csd)
            .with_label("hwsim-unit")
            .with_seed(99)
    }

    #[test]
    fn presets_parse_and_round_trip_canonically() {
        for preset in HwSimPreset::ALL {
            let p = HwSimProfile::parse(preset.name()).unwrap();
            assert_eq!(p, HwSimPreset::defaults(preset));
            assert_eq!(p.canonical_args(), preset.name());
            assert_eq!(HwSimProfile::parse(&p.canonical_args()).unwrap(), p);
        }
    }

    #[test]
    fn overrides_survive_the_canonical_round_trip() {
        let p = HwSimProfile::parse("aged,dead=0.25,bits=8,tsettle=3ms,slew=0.125").unwrap();
        assert_eq!(p.dead, 0.25);
        assert_eq!(p.bits, 8);
        assert_eq!(p.t_settle, Duration::from_millis(3));
        let again = HwSimProfile::parse(&p.canonical_args()).unwrap();
        assert_eq!(again, p);
    }

    #[test]
    fn hostile_profiles_are_rejected_at_the_door() {
        for bad in [
            "",                    // no preset
            "qpu0",                // unknown preset
            "nominal,dead=0.6",    // over the cap
            "nominal,dead=-0.1",   // negative
            "nominal,dead=NaN",    // not finite
            "nominal,bits=4",      // too coarse
            "nominal,bits=17",     // wider than the bus data field
            "nominal,xt=0.5",      // over the cap
            "nominal,slew=0",      // no slew
            "nominal,warp=9",      // unknown key
            "nominal,dead",        // not key=value
            "nominal,tsettle=50",  // dwell without unit
            "nominal,tsettle=11s", // dwell over the cap
        ] {
            let err = HwSimProfile::parse(bad).unwrap_err();
            assert!(
                matches!(err, BackendError::InvalidSpec { .. }),
                "{bad:?} -> {err}"
            );
        }
        // A repeated knob is its own named, matchable rejection — not a
        // silent last-wins, and not a generic InvalidSpec.
        let err = HwSimProfile::parse("nominal,dead=0.1,dead=0.2").unwrap_err();
        assert!(
            matches!(
                &err,
                BackendError::DuplicateOption { scheme, key }
                    if scheme == "hwsim" && key == "dead"
            ),
            "{err}"
        );
    }

    #[test]
    fn command_words_pack_like_the_exemplar_drivers() {
        assert_eq!(command_word(CMD_WRITE_INPUT, 0, 0xABCD), 0x11_ABCD);
        assert_eq!(command_word(CMD_UPDATE_DAC, 1, 0), 0x22_0000);
        assert_eq!(command_word(CMD_WRITE_UPDATE, 3, 0xFFFF), 0x38_FFFF);
    }

    #[test]
    fn dac_quantizes_clamps_and_round_trips() {
        let profile = HwSimProfile::parse("nominal,clip=0.1").unwrap();
        let window = VoltageWindow {
            x_min: -10.0,
            y_min: 5.0,
            x_max: 21.0,
            y_max: 36.0,
            delta: 1.0,
        };
        let dac = profile.dac_for(&window);
        let ch = dac.channels[0];
        assert!(ch.min_code > 0 && ch.max_code < 0xFFFF, "limit table bites");
        // Voltages inside the limit table round-trip within 1 LSB.
        for v in [ch.v_min() + 0.1, 0.0, 3.17, ch.v_max() - 0.1] {
            let back = ch.dequantize(ch.quantize(v));
            assert!((back - v).abs() <= ch.lsb, "{v} -> {back} (lsb {})", ch.lsb);
        }
        // Out-of-limit voltages rail to the table, not the code space.
        assert_eq!(ch.quantize(-1e9), ch.min_code);
        assert_eq!(ch.quantize(1e9), ch.max_code);
        assert!(ch.v_min() < ch.v_max());
    }

    #[test]
    fn probe_cost_grows_with_voltage_delta() {
        let profile = HwSimProfile::preset(HwSimPreset::Nominal);
        let window = VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 60.0,
            y_max: 60.0,
            delta: 1.0,
        };
        let dac = profile.dac_for(&window);
        let at = |v: f64| dac.quantize(v, 0.0);
        let from = Some(at(0.0));
        let mut last = Duration::ZERO;
        for v in [0.0, 1.0, 5.0, 20.0, 60.0] {
            let cost = profile.probe_cost(&dac, from, at(v));
            assert!(cost >= last, "cost must be monotone in delta");
            last = cost;
        }
        // A repeat probe clocks no words; a changed one pays the bus.
        assert_eq!(HwSimProfile::bus_words(from, at(0.0)), 0);
        assert_eq!(HwSimProfile::bus_words(from, at(5.0)), 2);
        assert_eq!(HwSimProfile::bus_words(None, at(0.0)), 3);
    }

    #[test]
    fn nominal_source_matches_the_diagram_within_quantization() {
        let s = scenario();
        let backend = HwSimBackend::new(HwSimProfile::preset(HwSimPreset::Nominal));
        assert_eq!(backend.describe(), "hwsim:nominal");
        let mut source = HwSimSource::new(backend.profile().clone(), &s);
        let mut plain = CsdSource::new(s.csd.clone());
        // A 16-bit DAC over a 31 V window has a ~0.5 mV LSB: every probe
        // lands on the same pixel the ideal source reads.
        for (v1, v2) in [(-10.0, 5.0), (0.25, 17.75), (21.0, 36.0)] {
            assert_eq!(source.current(v1, v2), plain.current(v1, v2));
        }
        assert_eq!(source.bus().probes, 3);
        assert!(source.bus().time > Duration::ZERO);
    }

    #[test]
    fn sources_are_deterministic_from_the_scenario_seed() {
        let profile = HwSimProfile::parse("hostile").unwrap();
        let run = || {
            let s = scenario();
            let mut src = HwSimSource::new(profile.clone(), &s);
            (0..40)
                .map(|i| {
                    src.current(-10.0 + i as f64 * 0.7, 5.0 + i as f64 * 0.3)
                        .to_bits()
                })
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run(), "same seed, same probe order -> same bits");

        let other = HwSimSource::new(profile.clone(), &scenario().with_seed(100));
        let mut a = HwSimSource::new(profile, &scenario());
        let mut b = other;
        let va: Vec<u64> = (0..40)
            .map(|i| a.current(i as f64, i as f64).to_bits())
            .collect();
        let vb: Vec<u64> = (0..40)
            .map(|i| b.current(i as f64, i as f64).to_bits())
            .collect();
        assert_ne!(va, vb, "different seeds must differ");
    }

    #[test]
    fn dead_pixels_are_a_stable_map_at_the_configured_rate() {
        let n = 200i64;
        let frac = 0.1;
        let dead = (0..n)
            .flat_map(|x| (0..n).map(move |y| (x, y)))
            .filter(|&(x, y)| is_dead_pixel(x, y, 42, frac))
            .count();
        let rate = dead as f64 / (n * n) as f64;
        assert!((rate - frac).abs() < 0.02, "dead rate {rate}");
        // Stable: same inputs, same verdict; different seed, different map.
        assert_eq!(is_dead_pixel(3, 7, 42, frac), is_dead_pixel(3, 7, 42, frac));
        let differs =
            (0..n).any(|x| is_dead_pixel(x, 0, 42, frac) != is_dead_pixel(x, 0, 43, frac));
        assert!(differs);
    }

    #[test]
    fn dead_pixels_read_the_rail() {
        let s = scenario();
        let mut src = HwSimSource::new(HwSimProfile::parse("nominal,dead=0.3").unwrap(), &s);
        let w = src.window();
        let mut found = None;
        'scan: for x in 0..w.width_px() as i64 {
            for y in 0..w.height_px() as i64 {
                if is_dead_pixel(x, y, s.seed, 0.3) {
                    found = Some((x, y));
                    break 'scan;
                }
            }
        }
        let (x, y) = found.expect("30% dead must hit a 32x32 window");
        let v1 = w.x_min + x as f64 * w.delta;
        let v2 = w.y_min + y as f64 * w.delta;
        assert_eq!(src.current(v1, v2), DEAD_PIXEL_CURRENT);
    }

    #[test]
    fn crosstalk_shears_off_center_readings_only() {
        let s = scenario();
        let mut ideal = HwSimSource::new(HwSimProfile::preset(HwSimPreset::Nominal), &s);
        let mut sheared = HwSimSource::new(HwSimProfile::parse("nominal,xt=0.2").unwrap(), &s);
        let w = ideal.window();
        let (cx, cy) = (0.5 * (w.x_min + w.x_max), 0.5 * (w.y_min + w.y_max));
        // Dead center: no shear.
        assert_eq!(sheared.current(cx, cy), ideal.current(cx, cy));
        // Window corner: visibly displaced reading.
        assert_ne!(
            sheared.current(w.x_min, w.y_max),
            ideal.current(w.x_min, w.y_max)
        );
    }
}
