//! Probe tapes: newline-framed JSON recordings of `getCurrent` traffic.
//!
//! A *tape* is the serialized probe-level trace of one measurement run:
//! a header line describing the instrument (voltage window, per-probe
//! dwell, generation seed, free-form label) followed by one line per
//! dwell-costing probe (raw voltages, quantized pixel, sensor current).
//! Tapes are what make hardware-free regression fixtures possible — a
//! run recorded against any source (simulated, throttled, or a real
//! instrument behind a [`crate::CurrentSource`] adapter) can be replayed
//! bit-identically without the source, by [`ReplaySource`].
//!
//! The format is the workspace's usual newline-framed JSON
//! ([`fastvg_wire::Json`]); see `docs/BACKENDS.md` for the schema. Field
//! values round-trip exactly: voltages and currents are emitted in
//! shortest round-trip form, so `record → save → load → replay`
//! reproduces every reading bit-for-bit.

use crate::{CurrentSource, VoltageWindow};
use fastvg_wire::Json;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Format version emitted in the header's `"fastvg_tape"` member.
pub const TAPE_VERSION: u64 = 1;

/// A malformed, unreadable or unwritable tape.
#[derive(Debug)]
pub struct TapeError {
    /// What went wrong.
    pub message: String,
    /// The underlying I/O error, when the failure was I/O.
    pub source: Option<std::io::Error>,
}

impl TapeError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            source: None,
        }
    }

    fn io(message: impl Into<String>, source: std::io::Error) -> Self {
        Self {
            message: message.into(),
            source: Some(source),
        }
    }
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The I/O cause is reported through `Error::source`, not
        // duplicated here.
        f.write_str(&self.message)
    }
}

impl std::error::Error for TapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_ref().map(|e| e as _)
    }
}

/// The header line of a tape: everything about the run that is not a
/// probe.
#[derive(Debug, Clone, PartialEq)]
pub struct TapeHeader {
    /// Free-form run label (benchmark name, device id, …).
    pub label: String,
    /// The voltage window the recorded source was defined on.
    pub window: VoltageWindow,
    /// The per-probe dwell the recorded source emulated (zero for pure
    /// simulation).
    pub dwell: Duration,
    /// The generation seed of the recorded scenario (0 when unknown).
    pub seed: u64,
}

/// One recorded dwell-costing probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapeProbe {
    /// Raw requested plunger voltage `V_P1`.
    pub v1: f64,
    /// Raw requested plunger voltage `V_P2`.
    pub v2: f64,
    /// Quantized pixel of the probe (window coordinates).
    pub pixel: (i64, i64),
    /// Sensor current returned.
    pub value: f64,
}

/// A parsed probe tape: header plus the probe sequence, in probe order.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape {
    /// The run description.
    pub header: TapeHeader,
    /// Every recorded probe, in the order it was measured.
    pub probes: Vec<TapeProbe>,
}

fn req_f64(json: &Json, key: &str) -> Result<f64, TapeError> {
    json.get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| TapeError::new(format!("tape: bad or missing \"{key}\"")))
}

fn header_json(header: &TapeHeader) -> Json {
    let w = header.window;
    Json::object()
        .field("fastvg_tape", TAPE_VERSION)
        .field("label", header.label.as_str())
        .field(
            "window",
            Json::object()
                .field("x_min", Json::num(w.x_min))
                .field("y_min", Json::num(w.y_min))
                .field("x_max", Json::num(w.x_max))
                .field("y_max", Json::num(w.y_max))
                .field("delta", Json::num(w.delta))
                .build(),
        )
        .field("dwell_ns", header.dwell.as_nanos())
        .field("seed", header.seed)
        .build()
}

fn probe_json(probe: &TapeProbe) -> Json {
    Json::object()
        .field("v1", Json::num(probe.v1))
        .field("v2", Json::num(probe.v2))
        .field("x", probe.pixel.0)
        .field("y", probe.pixel.1)
        .field("value", Json::num(probe.value))
        .build()
}

impl TapeHeader {
    fn from_json(json: &Json) -> Result<Self, TapeError> {
        let version = json
            .get("fastvg_tape")
            .and_then(Json::as_u64)
            .ok_or_else(|| TapeError::new("tape: first line is not a tape header"))?;
        if version != TAPE_VERSION {
            return Err(TapeError::new(format!(
                "tape: unsupported format version {version} (this build reads {TAPE_VERSION})"
            )));
        }
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| TapeError::new("tape: bad or missing \"label\""))?
            .to_string();
        let window = json
            .get("window")
            .ok_or_else(|| TapeError::new("tape: missing \"window\""))?;
        let window = VoltageWindow {
            x_min: req_f64(window, "x_min")?,
            y_min: req_f64(window, "y_min")?,
            x_max: req_f64(window, "x_max")?,
            y_max: req_f64(window, "y_max")?,
            delta: req_f64(window, "delta")?,
        };
        if window.delta <= 0.0 || window.x_max < window.x_min || window.y_max < window.y_min {
            return Err(TapeError::new("tape: degenerate voltage window"));
        }
        let dwell = json
            .get("dwell_ns")
            .and_then(Json::as_u64)
            .map(Duration::from_nanos)
            .ok_or_else(|| TapeError::new("tape: bad or missing \"dwell_ns\""))?;
        let seed = json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| TapeError::new("tape: bad or missing \"seed\""))?;
        Ok(Self {
            label,
            window,
            dwell,
            seed,
        })
    }
}

impl TapeProbe {
    fn from_json(json: &Json) -> Result<Self, TapeError> {
        let coord = |key: &str| -> Result<i64, TapeError> {
            json.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| TapeError::new(format!("tape: bad or missing probe \"{key}\"")))
        };
        Ok(Self {
            v1: req_f64(json, "v1")?,
            v2: req_f64(json, "v2")?,
            pixel: (coord("x")?, coord("y")?),
            value: req_f64(json, "value")?,
        })
    }
}

impl Tape {
    /// Serializes the tape to its newline-framed text form.
    pub fn to_text(&self) -> String {
        let mut out = header_json(&self.header).dump();
        out.push('\n');
        for probe in &self.probes {
            out.push_str(&probe_json(probe).dump());
            out.push('\n');
        }
        out
    }

    /// Parses a tape from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] on a missing/malformed header, an
    /// unsupported format version, or any malformed probe line.
    pub fn parse(text: &str) -> Result<Self, TapeError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines
            .next()
            .ok_or_else(|| TapeError::new("tape: empty file"))?;
        let header = Json::parse(first.trim())
            .map_err(|e| TapeError::new(format!("tape: malformed header line: {e}")))?;
        let header = TapeHeader::from_json(&header)?;
        let mut probes = Vec::new();
        for (n, line) in lines {
            let json = Json::parse(line.trim()).map_err(|e| {
                TapeError::new(format!("tape: malformed probe on line {}: {e}", n + 1))
            })?;
            probes.push(TapeProbe::from_json(&json)?);
        }
        Ok(Self { header, probes })
    }

    /// Reads and parses a tape file.
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] on I/O failures or malformed content.
    pub fn load(path: &Path) -> Result<Self, TapeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TapeError::io(format!("tape: cannot read {}", path.display()), e))?;
        Self::parse(&text)
    }

    /// Writes the tape to a file, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] on I/O failures.
    pub fn save(&self, path: &Path) -> Result<(), TapeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    TapeError::io(format!("tape: cannot create {}", parent.display()), e)
                })?;
            }
        }
        std::fs::write(path, self.to_text())
            .map_err(|e| TapeError::io(format!("tape: cannot write {}", path.display()), e))
    }
}

/// Wraps a [`CurrentSource`], taping every probe that reaches it.
///
/// Sits *below* the [`crate::MeasurementSession`] cache, so the tape
/// holds exactly the dwell-costing probes — the ones that would cost
/// real instrument time — in measurement order. The readings pass
/// through untouched; recording never changes extraction results.
///
/// Probes are streamed to the sink as they happen (header first), so a
/// crashed run still leaves a readable prefix. Call
/// [`RecordingSource::finish`] to flush and surface any deferred write
/// error; dropping the source flushes best-effort.
pub struct RecordingSource<S> {
    inner: S,
    sink: Box<dyn Write + Send>,
    probes: usize,
    write_error: Option<std::io::Error>,
    path: Option<PathBuf>,
}

impl<S: CurrentSource> std::fmt::Debug for RecordingSource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingSource")
            .field("probes", &self.probes)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl<S: CurrentSource> RecordingSource<S> {
    /// Tapes `inner` to a new file at `path` (parent directories are
    /// created), writing the header immediately.
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] when the file cannot be created or the
    /// header cannot be written.
    pub fn create(
        inner: S,
        path: &Path,
        label: &str,
        dwell: Duration,
        seed: u64,
    ) -> Result<Self, TapeError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    TapeError::io(format!("tape: cannot create {}", parent.display()), e)
                })?;
            }
        }
        let file = std::fs::File::create(path)
            .map_err(|e| TapeError::io(format!("tape: cannot create {}", path.display()), e))?;
        let sink = Box::new(std::io::BufWriter::new(file));
        let mut source = Self::to_sink(inner, sink, label, dwell, seed)?;
        source.path = Some(path.to_path_buf());
        Ok(source)
    }

    /// Tapes `inner` to an arbitrary sink (in-memory buffers in tests).
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] when the header cannot be written.
    pub fn to_sink(
        inner: S,
        mut sink: Box<dyn Write + Send>,
        label: &str,
        dwell: Duration,
        seed: u64,
    ) -> Result<Self, TapeError> {
        let header = TapeHeader {
            label: label.to_string(),
            window: inner.window(),
            dwell,
            seed,
        };
        let mut line = header_json(&header).dump();
        line.push('\n');
        sink.write_all(line.as_bytes())
            .map_err(|e| TapeError::io("tape: cannot write header", e))?;
        Ok(Self {
            inner,
            sink,
            probes: 0,
            write_error: None,
            path: None,
        })
    }

    /// Probes taped so far.
    pub fn probes_recorded(&self) -> usize {
        self.probes
    }

    /// Flushes the sink and surfaces any write error deferred during
    /// recording.
    ///
    /// # Errors
    ///
    /// The first deferred write error, or the flush error.
    pub fn finish(mut self) -> Result<(), TapeError> {
        if let Some(e) = self.write_error.take() {
            return Err(TapeError::io("tape: deferred write error", e));
        }
        self.sink
            .flush()
            .map_err(|e| TapeError::io("tape: flush failed", e))
    }
}

impl<S: CurrentSource> CurrentSource for RecordingSource<S> {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        let value = self.inner.current(v1, v2);
        let probe = TapeProbe {
            v1,
            v2,
            pixel: self.window().quantize(v1, v2),
            value,
        };
        let mut line = probe_json(&probe).dump();
        line.push('\n');
        if self.write_error.is_none() {
            if let Err(e) = self.sink.write_all(line.as_bytes()) {
                // Readings must keep flowing (the extraction is not the
                // tape's hostage), but a truncated tape must never pass
                // silently: shout immediately, and again on drop. The
                // error also stays retrievable through `finish`.
                eprintln!(
                    "tape: write failed after {} probes{}: {e} — recording truncated",
                    self.probes,
                    self.path
                        .as_deref()
                        .map(|p| format!(" ({})", p.display()))
                        .unwrap_or_default(),
                );
                self.write_error = Some(e);
            }
        }
        self.probes += 1;
        value
    }

    fn window(&self) -> VoltageWindow {
        self.inner.window()
    }
}

impl<S> Drop for RecordingSource<S> {
    fn drop(&mut self) {
        if let Some(e) = &self.write_error {
            eprintln!(
                "tape: dropping recording with an unreported write error{}: {e} — \
                 the tape is truncated",
                self.path
                    .as_deref()
                    .map(|p| format!(" ({})", p.display()))
                    .unwrap_or_default(),
            );
        } else if let Err(e) = self.sink.flush() {
            eprintln!(
                "tape: final flush failed{}: {e} — the tape may be truncated",
                self.path
                    .as_deref()
                    .map(|p| format!(" ({})", p.display()))
                    .unwrap_or_default(),
            );
        }
    }
}

/// How a [`ReplaySource`] serves probes off a tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// Probes must arrive in exactly the recorded pixel sequence; any
    /// divergence (wrong pixel, or more probes than the tape holds) is
    /// a hard error. This is the regression-fixture mode: it proves the
    /// consumer reproduces the recorded run bit-for-bit.
    #[default]
    Strict,
    /// Probes are served by pixel lookup in any order; only pixels the
    /// tape never recorded are errors. Useful when replaying a tape
    /// against a slightly different consumer (changed configuration,
    /// exploratory analysis).
    AnyOrder,
}

/// Plays a [`Tape`] back as a [`CurrentSource`] — the hardware-free
/// regression instrument.
///
/// In [`ReplayMode::Strict`] (the default) the source verifies that the
/// consumer probes exactly the recorded pixel sequence and **panics on
/// the first divergence** with a message naming the probe index and the
/// expected/actual pixels. Like the probe-budget tripwire on
/// [`crate::MeasurementSession`], this is a deliberate hard stop: a
/// diverged replay has no honest reading to return, and silently wrong
/// currents would corrupt the extraction it is supposed to pin down.
#[derive(Debug)]
pub struct ReplaySource {
    tape: Tape,
    mode: ReplayMode,
    cursor: usize,
    by_pixel: HashMap<(i64, i64), f64>,
}

impl ReplaySource {
    /// A replay source over a parsed tape.
    pub fn new(tape: Tape, mode: ReplayMode) -> Self {
        // First-probe-wins, matching the session cache: the value a
        // cached session saw for a pixel is the first one measured.
        let mut by_pixel = HashMap::with_capacity(tape.probes.len());
        for probe in &tape.probes {
            by_pixel.entry(probe.pixel).or_insert(probe.value);
        }
        Self {
            tape,
            mode,
            cursor: 0,
            by_pixel,
        }
    }

    /// Loads a tape file and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`TapeError`] on I/O failures or malformed content.
    pub fn load(path: &Path, mode: ReplayMode) -> Result<Self, TapeError> {
        Ok(Self::new(Tape::load(path)?, mode))
    }

    /// The tape being replayed.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Probes served so far (strict mode's cursor).
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Probes remaining on the tape in strict mode.
    pub fn remaining(&self) -> usize {
        self.tape.probes.len().saturating_sub(self.cursor)
    }
}

impl CurrentSource for ReplaySource {
    /// # Panics
    ///
    /// In [`ReplayMode::Strict`], panics on any probe-sequence
    /// divergence (wrong pixel or tape exhausted). In
    /// [`ReplayMode::AnyOrder`], panics when the probed pixel was never
    /// recorded.
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        let pixel = self.tape.header.window.quantize(v1, v2);
        match self.mode {
            ReplayMode::Strict => {
                let Some(expected) = self.tape.probes.get(self.cursor) else {
                    panic!(
                        "replay divergence at probe {}: tape {:?} has only {} probes \
                         but the consumer probed pixel {:?}",
                        self.cursor,
                        self.tape.header.label,
                        self.tape.probes.len(),
                        pixel,
                    );
                };
                assert!(
                    expected.pixel == pixel,
                    "replay divergence at probe {}: tape {:?} recorded pixel {:?}, \
                     consumer probed {:?}",
                    self.cursor,
                    self.tape.header.label,
                    expected.pixel,
                    pixel,
                );
                self.cursor += 1;
                expected.value
            }
            ReplayMode::AnyOrder => {
                self.cursor += 1;
                *self.by_pixel.get(&pixel).unwrap_or_else(|| {
                    panic!(
                        "replay miss: tape {:?} never recorded pixel {pixel:?}",
                        self.tape.header.label
                    )
                })
            }
        }
    }

    fn window(&self) -> VoltageWindow {
        self.tape.header.window
    }
}

/// An in-memory sink for [`RecordingSource::to_sink`], shareable with
/// the test that inspects the bytes afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer poisoned").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnSource, MeasurementSession};

    fn window() -> VoltageWindow {
        VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 9.0,
            y_max: 9.0,
            delta: 1.0,
        }
    }

    fn recorded_tape() -> Tape {
        let buffer = SharedBuffer::new();
        let source = RecordingSource::to_sink(
            FnSource::new(|a, b| 10.0 * a + b, window()),
            Box::new(buffer.clone()),
            "unit",
            Duration::from_millis(50),
            7,
        )
        .unwrap();
        let mut session = MeasurementSession::new(source);
        let _ = session.get_current(1.0, 2.0);
        let _ = session.get_current(3.0, 4.0);
        let _ = session.get_current(1.0, 2.0); // cache hit: not taped
        let _ = session.get_current(5.0, 6.0);
        drop(session);
        Tape::parse(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap()
    }

    #[test]
    fn recording_tapes_only_dwell_costing_probes() {
        let tape = recorded_tape();
        assert_eq!(tape.header.label, "unit");
        assert_eq!(tape.header.seed, 7);
        assert_eq!(tape.header.dwell, Duration::from_millis(50));
        assert_eq!(tape.header.window, window());
        assert_eq!(tape.probes.len(), 3, "cache hits never reach the tape");
        assert_eq!(tape.probes[0].pixel, (1, 2));
        assert_eq!(tape.probes[0].value, 12.0);
        assert_eq!(tape.probes[2].pixel, (5, 6));
    }

    #[test]
    fn tape_text_round_trips() {
        let tape = recorded_tape();
        let text = tape.to_text();
        let back = Tape::parse(&text).unwrap();
        assert_eq!(back, tape);
        assert_eq!(back.to_text(), text, "stable re-emission");
    }

    #[test]
    fn tape_file_round_trips() {
        let tape = recorded_tape();
        let path = std::env::temp_dir().join(format!(
            "fastvg-tape-test-{}-{:?}.tape",
            std::process::id(),
            std::thread::current().id()
        ));
        tape.save(&path).unwrap();
        let back = Tape::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, tape);
    }

    #[test]
    fn strict_replay_reproduces_the_run() {
        let tape = recorded_tape();
        let mut replay = ReplaySource::new(tape, ReplayMode::Strict);
        assert_eq!(replay.remaining(), 3);
        assert_eq!(replay.current(1.0, 2.0), 12.0);
        assert_eq!(replay.current(3.0, 4.0), 34.0);
        assert_eq!(replay.current(5.0, 6.0), 56.0);
        assert_eq!(replay.position(), 3);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn strict_replay_panics_on_divergence() {
        let tape = recorded_tape();
        let mut replay = ReplaySource::new(tape, ReplayMode::Strict);
        let _ = replay.current(1.0, 2.0);
        let diverged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = replay.current(9.0, 9.0); // tape recorded (3,4) next
        }));
        let message = *diverged.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("replay divergence"), "{message}");
        assert!(message.contains("(3, 4)"), "{message}");
    }

    #[test]
    fn strict_replay_panics_past_the_end() {
        let tape = recorded_tape();
        let mut replay = ReplaySource::new(tape, ReplayMode::Strict);
        let _ = replay.current(1.0, 2.0);
        let _ = replay.current(3.0, 4.0);
        let _ = replay.current(5.0, 6.0);
        let overrun = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = replay.current(1.0, 2.0);
        }));
        assert!(overrun.is_err(), "tape exhaustion must trip");
    }

    #[test]
    fn any_order_replay_serves_by_pixel() {
        let tape = recorded_tape();
        let mut replay = ReplaySource::new(tape, ReplayMode::AnyOrder);
        assert_eq!(replay.current(5.0, 6.0), 56.0);
        assert_eq!(replay.current(1.0, 2.0), 12.0);
        assert_eq!(replay.current(1.0, 2.0), 12.0); // re-probes fine
        let miss = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = replay.current(9.0, 9.0);
        }));
        assert!(miss.is_err(), "unrecorded pixels must trip");
    }

    #[test]
    fn malformed_tapes_are_rejected() {
        let header_only = recorded_tape()
            .to_text()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let bad_probe = format!("{header_only}\n{{\"v1\": 1.0}}\n");
        for text in [
            "",
            "{}",
            "not json",
            "{\"fastvg_tape\": 99, \"label\": \"x\"}",
            bad_probe.as_str(), // good header, malformed probe line
        ] {
            let err = Tape::parse(text).unwrap_err();
            assert!(!err.to_string().is_empty(), "{text:?}");
        }
    }

    #[test]
    fn finish_surfaces_nothing_on_clean_runs() {
        let buffer = SharedBuffer::new();
        let mut source = RecordingSource::to_sink(
            FnSource::new(|a, b| a + b, window()),
            Box::new(buffer.clone()),
            "finish",
            Duration::ZERO,
            0,
        )
        .unwrap();
        let _ = source.current(1.0, 1.0);
        assert_eq!(source.probes_recorded(), 1);
        source.finish().unwrap();
        let tape = Tape::parse(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
        assert_eq!(tape.probes.len(), 1);
        assert_eq!(tape.header.dwell, Duration::ZERO);
    }
}
