//! Acquisition scan patterns for full-window measurements.
//!
//! The order in which a full CSD is rastered matters on real hardware:
//! drift accumulates along the probe sequence, so a row-major raster
//! leaves horizontal streaks, a serpentine halves the voltage slew
//! between consecutive points, and a column-major raster rotates the
//! streaks by 90°. The baseline's full acquisition takes a pattern so
//! these effects can be studied (and so the dataset generator's raster
//! convention is explicit rather than implicit).

use crate::VoltageWindow;

/// The order a full-window acquisition visits pixels in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPattern {
    /// Row-major, each row left → right (the common default; what the
    /// dataset generator uses).
    #[default]
    RowMajorRaster,
    /// Row-major, alternating direction per row (minimum DAC slew).
    Serpentine,
    /// Column-major, each column bottom → top.
    ColumnMajorRaster,
}

impl ScanPattern {
    /// The pixel visit order for a window of `width × height` pixels.
    ///
    /// Returned coordinates are `(x, y)` pixel indices; every pixel
    /// appears exactly once.
    pub fn order(&self, width: usize, height: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(width * height);
        match self {
            ScanPattern::RowMajorRaster => {
                for y in 0..height {
                    for x in 0..width {
                        out.push((x, y));
                    }
                }
            }
            ScanPattern::Serpentine => {
                for y in 0..height {
                    if y % 2 == 0 {
                        for x in 0..width {
                            out.push((x, y));
                        }
                    } else {
                        for x in (0..width).rev() {
                            out.push((x, y));
                        }
                    }
                }
            }
            ScanPattern::ColumnMajorRaster => {
                for x in 0..width {
                    for y in 0..height {
                        out.push((x, y));
                    }
                }
            }
        }
        out
    }

    /// Total voltage slew (sum of |ΔV| over consecutive probes, both
    /// axes) for this pattern on `window` — the quantity serpentine
    /// scanning minimizes on hardware.
    pub fn total_slew(&self, window: &VoltageWindow) -> f64 {
        let order = self.order(window.width_px(), window.height_px());
        let mut slew = 0.0;
        for pair in order.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            slew += window.delta * ((x1 as f64 - x0 as f64).abs() + (y1 as f64 - y0 as f64).abs());
        }
        slew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(w: usize, h: usize) -> VoltageWindow {
        VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: (w - 1) as f64,
            y_max: (h - 1) as f64,
            delta: 1.0,
        }
    }

    #[test]
    fn every_pattern_visits_each_pixel_once() {
        for p in [
            ScanPattern::RowMajorRaster,
            ScanPattern::Serpentine,
            ScanPattern::ColumnMajorRaster,
        ] {
            let order = p.order(7, 5);
            assert_eq!(order.len(), 35);
            let unique: std::collections::HashSet<_> = order.iter().collect();
            assert_eq!(unique.len(), 35, "{p:?} repeats pixels");
        }
    }

    #[test]
    fn raster_is_row_major() {
        let order = ScanPattern::RowMajorRaster.order(3, 2);
        assert_eq!(order, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn serpentine_alternates() {
        let order = ScanPattern::Serpentine.order(3, 2);
        assert_eq!(order, vec![(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
    }

    #[test]
    fn column_major_is_transposed() {
        let order = ScanPattern::ColumnMajorRaster.order(2, 3);
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn serpentine_minimizes_slew() {
        let w = window(16, 16);
        let raster = ScanPattern::RowMajorRaster.total_slew(&w);
        let serp = ScanPattern::Serpentine.total_slew(&w);
        let col = ScanPattern::ColumnMajorRaster.total_slew(&w);
        assert!(serp < raster, "serpentine {serp} !< raster {raster}");
        // Row- and column-major have identical slew by symmetry here.
        assert!((raster - col).abs() < 1e-9);
    }

    #[test]
    fn default_is_raster() {
        assert_eq!(ScanPattern::default(), ScanPattern::RowMajorRaster);
    }
}
