//! Multiplexed instrument channels: shared-channel arbitration with
//! conflict-avoiding probe schedules.
//!
//! Real cryostats expose a small number of measurement channels shared
//! by many gate pairs, so "run K tuning sessions at once" is only as
//! parallel as the channel schedule lets it be. This module models that
//! constraint as a backend wrapper, `multiplexed:<N>[+inner]`: a
//! [`ChannelPool`] arbitrates `N` probe channels over any inner backend,
//! and a [`ProbeScheduler`] assigns every dwell-costing probe a *dwell
//! slot* on its session's channel so that concurrent sessions never
//! collide.
//!
//! The probe model splits Algorithm 1's `getCurrent` into two phases:
//! programming the gates and settling/integrating (per gate pair — this
//! is where a throttled inner backend's real sleep lands, and it
//! overlaps freely across sessions), and the channel's dwell slot (the
//! shared resource the scheduler hands out). Slot accounting is
//! *virtual time* on a shared [`DwellClock`], exactly like the session
//! dwell clock: deterministic in the probe sequence and the session's
//! preassigned codeword, never in thread timing. Readings pass through
//! the inner source untouched, so a multiplexed run is bit-identical to
//! an unmultiplexed one — only wall clock and contention accounting
//! change.
//!
//! Two scheduling policies ship (the `ProbeScheduler` trait takes
//! more):
//!
//! * [`RoundRobin`] — slot-interleaved TDMA: the `m` codewords on a
//!   channel take turns slot by slot. The baseline; every probe of a
//!   contended channel stalls `m − 1` slots waiting for its turn.
//! * [`EquiDifference`] — codewords from the equi-difference
//!   conflict-avoiding-code construction (Xie & Luo; Feng, Wang &
//!   Wang): within a frame of `n = w·m` slots, the session with rank
//!   `r` owns the image of the arithmetic progression
//!   `{0, i, 2i, …, (w−1)·i}` shifted by `i·w·r`, taken mod `n`. For
//!   any generator `i` coprime to `n` the `m` codewords tile the frame
//!   disjointly, so schedules are collision-free *by construction* for
//!   every occupancy `K ≤ m` — and because each codeword packs `w`
//!   slots per frame, `w − 1` of every `w` probes land at the session's
//!   own pace (a *clean* acquire) instead of stalling between every
//!   probe the way round-robin does. On hardware that's the difference
//!   between retuning the mux every slot and amortizing it over bursts.
//!
//! Both policies are collision-free; they differ in *when* a session's
//! slots land, which the per-channel counters make measurable
//! (`clean`/`stalled` acquires, stall slots, busy fraction) without
//! ever touching the extraction bytes.
//!
//! # Example
//!
//! ```
//! use qd_csd::{Csd, VoltageGrid};
//! use qd_instrument::backend::{BackendRegistry, SourceScenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = BackendRegistry::standard();
//! // Two channels, up to 8 sessions each, equi-difference schedule.
//! let backend = registry.resolve("multiplexed:2,policy=ed")?;
//!
//! let grid = VoltageGrid::new(0.0, 0.0, 1.0, 32, 32)?;
//! let csd = Csd::from_fn(grid, |v1, v2| v1 + v2)?;
//! let mut session = backend.session(SourceScenario::new(csd))?;
//! assert_eq!(session.get_current(2.0, 3.0), 5.0); // readings unchanged
//! let pool = backend.channel_pool().expect("multiplexed exposes its pool");
//! assert_eq!(pool.stats().busy_slots(), 1);
//! # Ok(())
//! # }
//! ```

use crate::backend::{
    format_dwell, parse_dwell, BackendError, BoxedSource, SourceBackend, SourceScenario,
};
use crate::clock::DwellClock;
use crate::source::{CurrentSource, VoltageWindow};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Most channels a `multiplexed:<N>` spec may ask for.
pub const MAX_MUX_CHANNELS: usize = 64;
/// Most concurrent sessions one channel provisions codewords for.
pub const MAX_MUX_CAPACITY: usize = 64;
/// Largest equi-difference codeword weight (slots per frame and
/// session).
pub const MAX_MUX_WEIGHT: usize = 16;
/// Finished per-session wait records the pool retains for
/// [`ChannelPool::take_session_wait`] before dropping the oldest.
const SESSION_WAIT_BACKLOG: usize = 1024;

fn invalid(message: impl Into<String>) -> BackendError {
    BackendError::InvalidSpec {
        message: message.into(),
    }
}

/// Assigns dwell slots on a shared channel to the sessions multiplexed
/// onto it. Implementations must be *collision-free*: for one channel
/// provisioned with `capacity` codewords, no two ranks may ever be
/// assigned the same slot.
///
/// Schedules are frame-periodic: a rank owns [`ProbeScheduler::codeword`]
/// — a strictly increasing set of in-frame slots — and its `j`-th probe
/// lands in frame `j / w` at the codeword's `(j mod w)`-th slot. The
/// provided [`ProbeScheduler::slot`] does exactly that arithmetic, so a
/// policy only describes its codewords.
pub trait ProbeScheduler: Send + Sync + std::fmt::Debug {
    /// The policy's spec token (`"rr"`, `"ed"`).
    fn name(&self) -> &'static str;

    /// Frame length in slots when `capacity` codewords are provisioned.
    fn frame(&self, capacity: usize) -> u64;

    /// The in-frame dwell slots owned by `rank` (strictly increasing,
    /// all below [`ProbeScheduler::frame`]).
    fn codeword(&self, rank: usize, capacity: usize) -> Vec<u64>;

    /// The global slot index of probe `probe` for `rank` — frames of
    /// the rank's codeword, consumed in time order.
    fn slot(&self, rank: usize, probe: u64, capacity: usize) -> u64 {
        let codeword = self.codeword(rank, capacity);
        let w = codeword.len() as u64;
        (probe / w) * self.frame(capacity) + codeword[(probe % w) as usize]
    }
}

/// Slot-interleaved TDMA — the baseline policy. Rank `r` owns in-frame
/// slot `r` of a frame of `capacity` slots, so contended sessions take
/// turns probe by probe and every probe of a busy channel stalls
/// `capacity − 1` slots.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl ProbeScheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn frame(&self, capacity: usize) -> u64 {
        capacity as u64
    }

    fn codeword(&self, rank: usize, _capacity: usize) -> Vec<u64> {
        vec![rank as u64]
    }
}

/// Equi-difference conflict-avoiding schedule: rank `r` owns the image
/// of the equi-difference codeword `{0, i, 2i, …, (w−1)·i}` under the
/// shift `i·w·r`, taken mod the frame `n = w·capacity`.
///
/// Because `x ↦ i·x mod n` is a bijection for `gcd(i, n) = 1` and the
/// blocks `{r·w, …, r·w + w − 1}` tile `Z_n`, the codewords are
/// pairwise disjoint for every generator the spec parser admits —
/// collision-free without any per-probe negotiation between sessions,
/// which is the property the CAC literature buys on unsynchronized
/// hardware.
#[derive(Debug, Clone, Copy)]
pub struct EquiDifference {
    weight: usize,
    generator: usize,
}

impl EquiDifference {
    /// A schedule with `weight` slots per frame and session, generator
    /// `i = generator`.
    ///
    /// # Errors
    ///
    /// Rejects weights outside `1..=`[`MAX_MUX_WEIGHT`] and a zero
    /// generator. Coprimality with the frame depends on the capacity
    /// and is checked where both are known ([`MuxConfig::parse`],
    /// [`ChannelPool::new`]).
    pub fn new(weight: usize, generator: usize) -> Result<Self, BackendError> {
        if weight == 0 || weight > MAX_MUX_WEIGHT {
            return Err(invalid(format!(
                "equi-difference weight {weight} outside 1..={MAX_MUX_WEIGHT}"
            )));
        }
        if generator == 0 {
            return Err(invalid("equi-difference generator must be positive"));
        }
        Ok(Self { weight, generator })
    }

    /// Slots per frame and session.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// The codeword generator `i`.
    pub fn generator(&self) -> usize {
        self.generator
    }
}

impl ProbeScheduler for EquiDifference {
    fn name(&self) -> &'static str {
        "ed"
    }

    fn frame(&self, capacity: usize) -> u64 {
        (self.weight * capacity) as u64
    }

    fn codeword(&self, rank: usize, capacity: usize) -> Vec<u64> {
        let n = self.frame(capacity);
        let i = self.generator as u64;
        let mut slots: Vec<u64> = (0..self.weight as u64)
            .map(|k| (i * (rank as u64 * self.weight as u64 + k)) % n)
            .collect();
        // Codeword slots are consumed in time order within each frame.
        slots.sort_unstable();
        slots
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The scheduling policy of a [`MuxConfig`], spec-addressable as
/// `policy=rr` (default) or `policy=ed[,w=<weight>][,i=<generator>]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxPolicy {
    /// Slot-interleaved TDMA ([`RoundRobin`]).
    RoundRobin,
    /// Equi-difference conflict-avoiding codewords
    /// ([`EquiDifference`]).
    EquiDifference {
        /// Slots per frame and session (`w=`, default 4).
        weight: usize,
        /// Codeword generator (`i=`, default 1; must be coprime to the
        /// frame `w × capacity`).
        generator: usize,
    },
}

impl MuxPolicy {
    /// Instantiates the scheduler this policy names.
    ///
    /// # Errors
    ///
    /// Whatever the scheduler's constructor rejects.
    pub fn scheduler(&self) -> Result<Box<dyn ProbeScheduler>, BackendError> {
        Ok(match *self {
            MuxPolicy::RoundRobin => Box::new(RoundRobin),
            MuxPolicy::EquiDifference { weight, generator } => {
                Box::new(EquiDifference::new(weight, generator)?)
            }
        })
    }
}

/// Parsed `multiplexed:` arguments (everything between the scheme and
/// an optional `+<inner>`): `<channels>[,<key>=<value>]*` with knobs
/// `cap=` (sessions per channel, default 8), `policy=rr|ed`, `w=` /
/// `i=` (equi-difference weight and generator) and `slot=` (dwell-slot
/// length; defaults to the inner backend's dwell, or the paper's 50 ms
/// when the inner imposes none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxConfig {
    /// Probe channels in the pool (`N` of `multiplexed:<N>`).
    pub channels: usize,
    /// Codewords provisioned per channel — the most concurrent
    /// sessions one channel admits.
    pub capacity: usize,
    /// The dwell-slot assignment policy.
    pub policy: MuxPolicy,
    /// Explicit dwell-slot length (`slot=`); `None` derives it from the
    /// inner backend at [`MultiplexedBackend::new`] time.
    pub slot: Option<Duration>,
}

impl MuxConfig {
    /// A pool of `channels` channels with every knob at its default.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            capacity: 8,
            policy: MuxPolicy::RoundRobin,
            slot: None,
        }
    }

    /// Parses the spec arguments (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// [`BackendError::InvalidSpec`] on malformed or out-of-range
    /// values, [`BackendError::DuplicateOption`] when a knob appears
    /// twice.
    pub fn parse(args: &str) -> Result<Self, BackendError> {
        let args = args.trim();
        if args.is_empty() {
            return Err(invalid(
                "multiplexed needs a channel count: multiplexed:<N>[,<key>=<value>…][+<inner>]",
            ));
        }
        let mut parts = args.split(',');
        let channels_text = parts.next().unwrap_or("").trim();
        let channels: usize = channels_text.parse().map_err(|_| {
            invalid(format!(
                "multiplexed channel count {channels_text:?} must be an integer"
            ))
        })?;
        if channels == 0 || channels > MAX_MUX_CHANNELS {
            return Err(invalid(format!(
                "multiplexed channel count {channels} outside 1..={MAX_MUX_CHANNELS}"
            )));
        }

        let mut config = Self::new(channels);
        let (mut policy, mut weight, mut generator) = (None, None, None);
        let mut seen: Vec<&str> = Vec::new();
        for part in parts {
            let part = part.trim();
            let (key, value) = part.split_once('=').ok_or_else(|| {
                invalid(format!("multiplexed option {part:?} must be <key>=<value>"))
            })?;
            if seen.contains(&key) {
                return Err(BackendError::DuplicateOption {
                    scheme: "multiplexed".to_string(),
                    key: key.to_string(),
                });
            }
            seen.push(key);
            let usize_in = |name: &str, hi: usize| -> Result<usize, BackendError> {
                let v: usize = value.parse().map_err(|_| {
                    invalid(format!("multiplexed {name}={value:?} must be an integer"))
                })?;
                if v == 0 || v > hi {
                    return Err(invalid(format!("multiplexed {name}={v} outside 1..={hi}")));
                }
                Ok(v)
            };
            match key {
                "cap" => config.capacity = usize_in("cap", MAX_MUX_CAPACITY)?,
                "policy" => {
                    policy = Some(match value {
                        "rr" => MuxPolicy::RoundRobin,
                        "ed" => MuxPolicy::EquiDifference {
                            weight: 4,
                            generator: 1,
                        },
                        other => {
                            return Err(invalid(format!(
                                "unknown multiplexed policy {other:?} (known: rr, ed)"
                            )))
                        }
                    })
                }
                "w" => weight = Some(usize_in("w", MAX_MUX_WEIGHT)?),
                "i" => generator = Some(usize_in("i", MAX_MUX_WEIGHT * MAX_MUX_CAPACITY)?),
                "slot" => config.slot = Some(parse_dwell(value)?),
                other => {
                    return Err(invalid(format!(
                        "unknown multiplexed option {other:?} \
                         (known: cap, policy, w, i, slot)"
                    )))
                }
            }
        }

        config.policy = match policy.unwrap_or(MuxPolicy::RoundRobin) {
            MuxPolicy::RoundRobin => {
                if weight.is_some() || generator.is_some() {
                    return Err(invalid(
                        "multiplexed w=/i= only apply to policy=ed (round-robin \
                         has no codeword shape)",
                    ));
                }
                MuxPolicy::RoundRobin
            }
            MuxPolicy::EquiDifference {
                weight: dw,
                generator: dg,
            } => {
                let (w, i) = (weight.unwrap_or(dw), generator.unwrap_or(dg));
                let frame = (w * config.capacity) as u64;
                if gcd(i as u64, frame) != 1 {
                    return Err(invalid(format!(
                        "equi-difference generator i={i} shares a factor with the \
                         frame {frame} (= w×cap); codewords would collide"
                    )));
                }
                MuxPolicy::EquiDifference {
                    weight: w,
                    generator: i,
                }
            }
        };
        if config.slot == Some(Duration::ZERO) {
            return Err(invalid("multiplexed slot=0 is not a dwell slot"));
        }
        Ok(config)
    }

    /// The canonical argument string — only non-default knobs, in fixed
    /// order; `parse(canonical_args())` reproduces the config exactly
    /// (the [`SourceBackend::describe`] contract).
    pub fn canonical_args(&self) -> String {
        let mut out = self.channels.to_string();
        if self.capacity != 8 {
            out.push_str(&format!(",cap={}", self.capacity));
        }
        if let MuxPolicy::EquiDifference { weight, generator } = self.policy {
            out.push_str(",policy=ed");
            if weight != 4 {
                out.push_str(&format!(",w={weight}"));
            }
            if generator != 1 {
                out.push_str(&format!(",i={generator}"));
            }
        }
        if let Some(slot) = self.slot {
            out.push_str(&format!(",slot={}", format_dwell(slot)));
        }
        out
    }
}

/// A session's seat in the pool: which channel it probes through and
/// which preassigned codeword (rank) it schedules with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Seat {
    chan: usize,
    rank: usize,
}

/// Per-channel contention accounting, all in dwell slots.
#[derive(Debug, Default)]
struct ChannelState {
    live: Vec<bool>,
    sessions: u64,
    busy: DwellClock,
    makespan_slots: u64,
    wait_slots: u64,
    clean: u64,
    stalled: u64,
}

#[derive(Debug)]
struct PoolState {
    channels: Vec<ChannelState>,
    finished: Vec<SessionWait>,
}

/// Immutable pool shape, shared lock-free by every session.
#[derive(Debug)]
struct PoolMeta {
    slot: Duration,
    policy: &'static str,
    capacity: usize,
    frame: u64,
    /// `codewords[rank]` — the rank's in-frame slots, sorted.
    codewords: Vec<Vec<u64>>,
}

/// `N` probe channels shared by up to `N × capacity` concurrent
/// sessions, with collision-free dwell-slot schedules and virtual-time
/// contention accounting (a shared [`DwellClock`] per channel).
///
/// Cloning is cheap and shares the pool; [`MultiplexedBackend`] hands
/// every opened source a clone, which is how `K` batch jobs end up
/// contending for one pool instead of opening private instruments.
#[derive(Debug, Clone)]
pub struct ChannelPool {
    meta: Arc<PoolMeta>,
    state: Arc<Mutex<PoolState>>,
}

impl ChannelPool {
    /// Builds a pool for `config` with dwell slots of `slot`.
    ///
    /// Provisions one codeword per (channel, rank) up front and
    /// verifies the policy's collision-freedom invariant — codewords
    /// strictly increasing, inside the frame, and pairwise disjoint —
    /// so a policy bug surfaces at resolve time, not as silently
    /// overlapping dwell windows mid-run.
    ///
    /// # Errors
    ///
    /// [`BackendError::InvalidSpec`] on a zero slot or a policy whose
    /// codewords collide.
    pub fn new(config: &MuxConfig, slot: Duration) -> Result<Self, BackendError> {
        if slot.is_zero() {
            return Err(invalid("multiplexed dwell slot must be positive"));
        }
        let scheduler = config.policy.scheduler()?;
        let frame = scheduler.frame(config.capacity);
        let codewords: Vec<Vec<u64>> = (0..config.capacity)
            .map(|rank| scheduler.codeword(rank, config.capacity))
            .collect();
        let mut used = vec![false; frame as usize];
        for (rank, codeword) in codewords.iter().enumerate() {
            if codeword.is_empty() || codeword.windows(2).any(|w| w[0] >= w[1]) {
                return Err(invalid(format!(
                    "policy {:?} emitted a non-increasing codeword for rank {rank}",
                    scheduler.name()
                )));
            }
            for &s in codeword {
                if s >= frame || std::mem::replace(&mut used[s as usize], true) {
                    return Err(invalid(format!(
                        "policy {:?} codewords collide at slot {s} (rank {rank}); \
                         the schedule is not conflict-avoiding",
                        scheduler.name()
                    )));
                }
            }
        }
        let channels = (0..config.channels)
            .map(|_| ChannelState {
                live: vec![false; config.capacity],
                busy: DwellClock::new(slot),
                ..ChannelState::default()
            })
            .collect();
        Ok(Self {
            meta: Arc::new(PoolMeta {
                slot,
                policy: scheduler.name(),
                capacity: config.capacity,
                frame,
                codewords,
            }),
            state: Arc::new(Mutex::new(PoolState {
                channels,
                finished: Vec::new(),
            })),
        })
    }

    /// The dwell-slot length.
    pub fn slot(&self) -> Duration {
        self.meta.slot
    }

    /// The scheduling policy's name (`"rr"`, `"ed"`).
    pub fn policy(&self) -> &'static str {
        self.meta.policy
    }

    /// Channels in the pool.
    pub fn channels(&self) -> usize {
        self.state.lock().expect("mux pool poisoned").channels.len()
    }

    /// Codewords provisioned per channel.
    pub fn capacity(&self) -> usize {
        self.meta.capacity
    }

    /// Seats a new session: the channel with the fewest live sessions
    /// (lowest index on ties), lowest free rank.
    fn checkout(&self) -> Result<Seat, BackendError> {
        let mut state = self.state.lock().expect("mux pool poisoned");
        let chan = (0..state.channels.len())
            .filter(|&c| state.channels[c].live.iter().any(|l| !l))
            .min_by_key(|&c| state.channels[c].live.iter().filter(|l| **l).count())
            .ok_or_else(|| {
                invalid(format!(
                    "channel pool exhausted: {} channels × {} sessions are all live",
                    state.channels.len(),
                    self.meta.capacity
                ))
            })?;
        let channel = &mut state.channels[chan];
        let rank = channel
            .live
            .iter()
            .position(|l| !l)
            .expect("channel chosen with a free rank");
        channel.live[rank] = true;
        channel.sessions += 1;
        Ok(Seat { chan, rank })
    }

    /// Accounts one dwell-costing probe: assigns the session's next
    /// slot, folds busy/stall slots into the channel, and reports the
    /// stall back (in slots).
    fn account(&self, seat: Seat, slot_index: u64, stall: u64) {
        let mut state = self.state.lock().expect("mux pool poisoned");
        let channel = &mut state.channels[seat.chan];
        channel.busy.tick();
        channel.makespan_slots = channel.makespan_slots.max(slot_index + 1);
        channel.wait_slots += stall;
        if stall == 0 {
            channel.clean += 1;
        } else {
            channel.stalled += 1;
        }
    }

    /// Frees a seat and records the session's wait summary for
    /// [`ChannelPool::take_session_wait`].
    fn release(&self, seat: Seat, summary: SessionWait) {
        let mut state = self.state.lock().expect("mux pool poisoned");
        state.channels[seat.chan].live[seat.rank] = false;
        if state.finished.len() >= SESSION_WAIT_BACKLOG {
            state.finished.remove(0);
        }
        state.finished.push(summary);
    }

    /// Removes and returns the wait summary of the finished session
    /// labelled `label` (oldest first), if any — the serve daemon turns
    /// these into `channel-wait` spans.
    pub fn take_session_wait(&self, label: &str) -> Option<SessionWait> {
        let mut state = self.state.lock().expect("mux pool poisoned");
        let at = state.finished.iter().position(|s| s.label == label)?;
        Some(state.finished.remove(at))
    }

    /// A snapshot of the pool's contention counters.
    pub fn stats(&self) -> MuxStats {
        let state = self.state.lock().expect("mux pool poisoned");
        MuxStats {
            slot: self.meta.slot,
            policy: self.meta.policy,
            capacity: self.meta.capacity,
            channels: state
                .channels
                .iter()
                .enumerate()
                .map(|(chan, c)| ChannelStats {
                    chan,
                    sessions: c.sessions,
                    busy_slots: c.busy.ticks(),
                    makespan_slots: c.makespan_slots,
                    wait_slots: c.wait_slots,
                    clean: c.clean,
                    stalled: c.stalled,
                })
                .collect(),
        }
    }
}

/// One channel's contention counters, all in dwell slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Channel index (the `chan` metric label).
    pub chan: usize,
    /// Sessions ever seated on this channel.
    pub sessions: u64,
    /// Dwell slots actually used (= probes served).
    pub busy_slots: u64,
    /// Highest assigned slot + 1 — the channel's schedule horizon.
    pub makespan_slots: u64,
    /// Slots sessions spent stalled between their own probes, waiting
    /// for their next scheduled slot.
    pub wait_slots: u64,
    /// Probes whose slot landed at the session's own pace.
    pub clean: u64,
    /// Probes deferred by the schedule.
    pub stalled: u64,
}

impl ChannelStats {
    /// Used slots over the schedule horizon (1.0 = perfectly packed).
    pub fn busy_fraction(&self) -> f64 {
        if self.makespan_slots == 0 {
            return 0.0;
        }
        self.busy_slots as f64 / self.makespan_slots as f64
    }
}

/// A deterministic snapshot of a [`ChannelPool`]'s virtual-time
/// accounting.
#[derive(Debug, Clone)]
pub struct MuxStats {
    /// The dwell-slot length.
    pub slot: Duration,
    /// The scheduling policy (`"rr"`, `"ed"`).
    pub policy: &'static str,
    /// Codewords provisioned per channel.
    pub capacity: usize,
    /// Per-channel counters, indexed by channel.
    pub channels: Vec<ChannelStats>,
}

impl MuxStats {
    /// Total dwell slots served across channels.
    pub fn busy_slots(&self) -> u64 {
        self.channels.iter().map(|c| c.busy_slots).sum()
    }

    /// Total stall slots across channels, as virtual time.
    pub fn wait(&self) -> Duration {
        let slots: u64 = self.channels.iter().map(|c| c.wait_slots).sum();
        self.slot
            .saturating_mul(u32::try_from(slots).unwrap_or(u32::MAX))
    }

    /// Aggregate used-over-horizon fraction across channels.
    pub fn busy_fraction(&self) -> f64 {
        let horizon: u64 = self.channels.iter().map(|c| c.makespan_slots).sum();
        if horizon == 0 {
            return 0.0;
        }
        self.busy_slots() as f64 / horizon as f64
    }
}

/// One finished session's contention summary, keyed by its scenario
/// label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionWait {
    /// The scenario label the session was opened with.
    pub label: String,
    /// Dwell-costing probes the session made.
    pub probes: u64,
    /// Slots the session stalled waiting for its scheduled turns.
    pub stall_slots: u64,
    /// Probes that stalled at least one slot.
    pub stalled: u64,
    /// The stall, as virtual time (`stall_slots × slot`).
    pub wait: Duration,
}

/// A probe source seated in a [`ChannelPool`]: passes every reading
/// through the inner source untouched while accounting the session's
/// dwell slots against its channel's schedule.
pub struct MuxSource {
    inner: BoxedSource,
    pool: ChannelPool,
    seat: Seat,
    label: String,
    probes: u64,
    last_slot: Option<u64>,
    stall_slots: u64,
    stalled: u64,
}

impl std::fmt::Debug for MuxSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxSource")
            .field("chan", &self.seat.chan)
            .field("rank", &self.seat.rank)
            .field("probes", &self.probes)
            .finish()
    }
}

impl CurrentSource for MuxSource {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        let meta = &*self.pool.meta;
        let codeword = &meta.codewords[self.seat.rank];
        let w = codeword.len() as u64;
        let slot = (self.probes / w) * meta.frame + codeword[(self.probes % w) as usize];
        // The session could have probed one slot after its previous
        // one; anything later is a scheduling stall. Deterministic in
        // (rank, probe index) alone — thread timing never enters.
        let pace = self.last_slot.map_or(0, |s| s + 1);
        let stall = slot - pace;
        self.pool.account(self.seat, slot, stall);
        self.probes += 1;
        self.last_slot = Some(slot);
        self.stall_slots += stall;
        self.stalled += u64::from(stall > 0);
        self.inner.current(v1, v2)
    }

    fn window(&self) -> VoltageWindow {
        self.inner.window()
    }
}

impl Drop for MuxSource {
    fn drop(&mut self) {
        let wait = self
            .pool
            .slot()
            .saturating_mul(u32::try_from(self.stall_slots).unwrap_or(u32::MAX));
        self.pool.release(
            self.seat,
            SessionWait {
                label: std::mem::take(&mut self.label),
                probes: self.probes,
                stall_slots: self.stall_slots,
                stalled: self.stalled,
                wait,
            },
        );
    }
}

/// `multiplexed:<N>[,<key>=<value>]*[+<inner>]` — any inner backend
/// behind a shared [`ChannelPool`], so concurrent sessions contend for
/// `N` probe channels instead of each opening a private instrument.
#[derive(Debug)]
pub struct MultiplexedBackend {
    config: MuxConfig,
    inner: Arc<dyn SourceBackend>,
    pool: ChannelPool,
}

impl MultiplexedBackend {
    /// Multiplexes `inner` behind a pool shaped by `config`. The
    /// dwell-slot length is `config.slot`, the inner backend's dwell,
    /// or the paper's 50 ms, in that order of preference.
    ///
    /// # Errors
    ///
    /// Whatever [`ChannelPool::new`] rejects.
    pub fn new(config: MuxConfig, inner: Arc<dyn SourceBackend>) -> Result<Self, BackendError> {
        let slot = config.slot.unwrap_or_else(|| {
            if inner.dwell().is_zero() {
                DwellClock::PAPER_DWELL
            } else {
                inner.dwell()
            }
        });
        let pool = ChannelPool::new(&config, slot)?;
        Ok(Self {
            config,
            inner,
            pool,
        })
    }

    /// The shared pool — also reachable object-safely through
    /// [`SourceBackend::channel_pool`].
    pub fn pool(&self) -> &ChannelPool {
        &self.pool
    }
}

impl SourceBackend for MultiplexedBackend {
    fn scheme(&self) -> &str {
        "multiplexed"
    }

    fn describe(&self) -> String {
        let inner = self.inner.describe();
        if inner == "sim" {
            format!("multiplexed:{}", self.config.canonical_args())
        } else {
            format!("multiplexed:{}+{inner}", self.config.canonical_args())
        }
    }

    fn dwell(&self) -> Duration {
        self.inner.dwell()
    }

    fn open(&self, scenario: SourceScenario) -> Result<BoxedSource, BackendError> {
        let label = scenario.label.clone();
        let inner = self.inner.open(scenario)?;
        let seat = self.pool.checkout()?;
        Ok(Box::new(MuxSource {
            inner,
            pool: self.pool.clone(),
            seat,
            label,
            probes: 0,
            last_slot: None,
            stall_slots: 0,
            stalled: 0,
        }))
    }

    fn channel_pool(&self) -> Option<&ChannelPool> {
        Some(&self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendRegistry, SimBackend};
    use qd_csd::{Csd, VoltageGrid};

    fn scenario(label: &str) -> SourceScenario {
        let grid = VoltageGrid::new(0.0, 0.0, 1.0, 16, 16).unwrap();
        let csd = Csd::from_fn(grid, |v1, v2| 100.0 * v1 + v2).unwrap();
        SourceScenario::new(csd).with_label(label)
    }

    #[test]
    fn specs_parse_and_round_trip_canonically() {
        let registry = BackendRegistry::standard();
        for spec in [
            "multiplexed:1",
            "multiplexed:2",
            "multiplexed:2,cap=4",
            "multiplexed:2,policy=ed",
            "multiplexed:2,policy=ed,w=3",
            "multiplexed:2,cap=4,policy=ed,w=3,i=5",
            "multiplexed:1,slot=2ms",
            "multiplexed:2+throttled:1ms",
            "multiplexed:2,policy=ed+hwsim:nominal",
        ] {
            let backend = registry.resolve(spec).unwrap();
            assert_eq!(backend.describe(), spec, "canonical form");
            let again = registry.resolve(&backend.describe()).unwrap();
            assert_eq!(again.describe(), spec, "round trip");
        }
    }

    #[test]
    fn hostile_specs_are_rejected_at_the_door() {
        let registry = BackendRegistry::standard();
        for spec in [
            "multiplexed:",              // no channel count
            "multiplexed:0",             // zero channels
            "multiplexed:65",            // over the cap
            "multiplexed:two",           // not a number
            "multiplexed:1,cap=0",       // zero capacity
            "multiplexed:1,cap=65",      // capacity over the cap
            "multiplexed:1,policy=fifo", // unknown policy
            "multiplexed:1,w=4",         // codeword knob without ed
            "multiplexed:1,i=3",         // generator knob without ed
            "multiplexed:1,policy=ed,w=0",
            "multiplexed:1,policy=ed,i=0",
            "multiplexed:1,policy=ed,i=2", // gcd(2, 4·8) ≠ 1
            "multiplexed:1,slot=0",        // not a dwell slot
            "multiplexed:1,slot=11s",      // over the dwell cap
            "multiplexed:1,turbo=1",       // unknown knob
            "multiplexed:1+replay:",       // hostile inner surfaces too
        ] {
            assert!(registry.resolve(spec).is_err(), "{spec:?} must be rejected");
        }
    }

    #[test]
    fn duplicate_knobs_are_a_named_error() {
        let err = BackendRegistry::standard()
            .resolve("multiplexed:2,cap=4,cap=8")
            .unwrap_err();
        match err {
            BackendError::DuplicateOption { scheme, key } => {
                assert_eq!(scheme, "multiplexed");
                assert_eq!(key, "cap");
            }
            other => panic!("expected DuplicateOption, got {other}"),
        }
    }

    #[test]
    fn round_robin_interleaves_and_equi_difference_bursts() {
        let rr = RoundRobin;
        assert_eq!(
            (0..6).map(|j| rr.slot(1, j, 4)).collect::<Vec<_>>(),
            vec![1, 5, 9, 13, 17, 21]
        );
        let ed = EquiDifference::new(4, 1).unwrap();
        // Rank 1 of 2: the block {4,5,6,7} of the 8-slot frame, then
        // the next frame's block — bursts, not interleaving.
        assert_eq!(
            (0..6).map(|j| ed.slot(1, j, 2)).collect::<Vec<_>>(),
            vec![4, 5, 6, 7, 12, 13]
        );
        // A non-trivial generator strides the frame but stays
        // disjoint: rank 0 and rank 1 codewords never meet.
        let ed = EquiDifference::new(4, 3).unwrap();
        let a = ed.codeword(0, 2);
        let b = ed.codeword(1, 2);
        assert!(a.iter().all(|s| !b.contains(s)), "{a:?} vs {b:?}");
    }

    #[test]
    fn readings_pass_through_untouched() {
        let backend = BackendRegistry::standard()
            .resolve("multiplexed:1,cap=2")
            .unwrap();
        let mut a = backend.session(scenario("a")).unwrap();
        let mut b = backend.session(scenario("b")).unwrap();
        assert_eq!(a.get_current(2.0, 5.0), 205.0);
        assert_eq!(b.get_current(3.0, 1.0), 301.0);
        assert_eq!(a.get_current(2.0, 5.0), 205.0); // cache hit, no slot
        let stats = backend.channel_pool().unwrap().stats();
        assert_eq!(stats.busy_slots(), 2, "cache hits cost no dwell slot");
    }

    #[test]
    fn contention_accounting_is_deterministic_in_rank_and_probe() {
        let pool = ChannelPool::new(&MuxConfig::new(1), Duration::from_millis(1)).unwrap();
        let backend = MultiplexedBackend::new(
            MuxConfig {
                capacity: 2,
                ..MuxConfig::new(1)
            },
            Arc::new(SimBackend),
        )
        .unwrap();
        drop(pool);
        let mut a = backend.open(scenario("a")).unwrap();
        let mut b = backend.open(scenario("b")).unwrap();
        for k in 0..4 {
            let _ = a.current(k as f64, 0.0);
            let _ = b.current(k as f64, 1.0);
        }
        drop(a);
        drop(b);
        // Rank 0 (TDMA, m=2): slots 0,2,4,6 → stalls 0,1,1,1 = 3.
        let a = backend.pool().take_session_wait("a").unwrap();
        assert_eq!(a.probes, 4);
        assert_eq!(a.stall_slots, 3);
        assert_eq!(a.stalled, 3);
        // Rank 1: slots 1,3,5,7 → stalls 1,1,1,1 = 4.
        let b = backend.pool().take_session_wait("b").unwrap();
        assert_eq!(b.stall_slots, 4);
        assert_eq!(b.wait, backend.pool().slot() * 4);
        let stats = backend.pool().stats();
        assert_eq!(stats.channels[0].busy_slots, 8);
        assert_eq!(stats.channels[0].makespan_slots, 8);
        assert_eq!(stats.channels[0].wait_slots, 7);
        assert!((stats.channels[0].busy_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(backend.pool().take_session_wait("a"), None, "drained");
    }

    #[test]
    fn equi_difference_trades_stalls_for_bursts() {
        let run = |spec: &str| {
            let backend = BackendRegistry::standard().resolve(spec).unwrap();
            let mut a = backend.open(scenario("a")).unwrap();
            let mut b = backend.open(scenario("b")).unwrap();
            for k in 0..8 {
                let _ = a.current(k as f64, 0.0);
                let _ = b.current(k as f64, 1.0);
            }
            drop(a);
            drop(b);
            let stats = backend.channel_pool().unwrap().stats();
            (stats.channels[0].clean, stats.channels[0].wait_slots)
        };
        let (rr_clean, rr_wait) = run("multiplexed:1,cap=2");
        let (ed_clean, ed_wait) = run("multiplexed:1,cap=2,policy=ed");
        // Round-robin stalls on (almost) every probe of a contended
        // channel; equi-difference runs w−1 of every w probes clean and
        // pays its whole wait at frame boundaries — fewer stall slots
        // in total (8 probes, m=2: 15 rr vs 12 ed) and far more clean
        // acquires.
        assert!(ed_wait <= rr_wait, "rr {rr_wait} vs ed {ed_wait}");
        assert!(rr_clean < ed_clean, "rr {rr_clean} vs ed {ed_clean}");
    }

    #[test]
    fn pool_exhaustion_is_a_clean_error() {
        let backend = BackendRegistry::standard()
            .resolve("multiplexed:1,cap=2")
            .unwrap();
        let _a = backend.open(scenario("a")).unwrap();
        let _b = backend.open(scenario("b")).unwrap();
        let err = backend.open(scenario("c")).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
        drop(_a);
        let _c = backend.open(scenario("c")).expect("seat freed on drop");
    }

    #[test]
    fn sessions_spread_across_channels_before_contending() {
        let backend = BackendRegistry::standard()
            .resolve("multiplexed:2")
            .unwrap();
        let mut a = backend.open(scenario("a")).unwrap();
        let mut b = backend.open(scenario("b")).unwrap();
        let _ = a.current(0.0, 0.0);
        let _ = b.current(1.0, 1.0);
        let stats = backend.channel_pool().unwrap().stats();
        assert_eq!(stats.channels[0].sessions, 1);
        assert_eq!(stats.channels[1].sessions, 1);
    }

    #[test]
    fn slot_length_derives_from_the_inner_dwell() {
        let registry = BackendRegistry::standard();
        let sim = registry.resolve("multiplexed:1").unwrap();
        assert_eq!(sim.channel_pool().unwrap().slot(), DwellClock::PAPER_DWELL);
        let throttled = registry.resolve("multiplexed:1+throttled:2ms").unwrap();
        assert_eq!(
            throttled.channel_pool().unwrap().slot(),
            Duration::from_millis(2)
        );
        let pinned = registry
            .resolve("multiplexed:1,slot=1ms+throttled:2ms")
            .unwrap();
        assert_eq!(
            pinned.channel_pool().unwrap().slot(),
            Duration::from_millis(1)
        );
    }
}
