//! Dwell-time accounting.
//!
//! On charge-sensor devices every voltage point costs a dwell of tens of
//! milliseconds (50 ms in the paper's evaluation, citing Zajac's thesis)
//! while the heavily filtered bias lines settle. Sleeping for real would
//! make the benchmark suite take the same hours the hardware does, so the
//! clock is *virtual* by default: it adds up what the wall-clock time
//! *would have been*. An opt-in real-sleep mode exists for demos that want
//! hardware-faithful pacing.

use std::time::Duration;

/// A per-probe dwell clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DwellClock {
    dwell: Duration,
    ticks: u64,
    real_sleep: bool,
}

impl DwellClock {
    /// The paper's dwell time: 50 ms per probed point.
    pub const PAPER_DWELL: Duration = Duration::from_millis(50);

    /// Creates a virtual clock with the given per-probe dwell.
    pub fn new(dwell: Duration) -> Self {
        Self {
            dwell,
            ticks: 0,
            real_sleep: false,
        }
    }

    /// Creates a clock with the paper's 50 ms dwell.
    pub fn paper() -> Self {
        Self::new(Self::PAPER_DWELL)
    }

    /// Switches to real sleeping: every [`DwellClock::tick`] blocks for the
    /// dwell duration. Only sensible for small interactive demos.
    #[must_use]
    pub fn with_real_sleep(mut self, enable: bool) -> Self {
        self.real_sleep = enable;
        self
    }

    /// Accounts one probe (and sleeps, in real-sleep mode).
    pub fn tick(&mut self) {
        self.ticks += 1;
        if self.real_sleep {
            std::thread::sleep(self.dwell);
        }
    }

    /// Number of probes accounted so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The configured per-probe dwell.
    pub fn dwell(&self) -> Duration {
        self.dwell
    }

    /// Total simulated dwell time accrued (`ticks × dwell`).
    pub fn elapsed(&self) -> Duration {
        self.dwell.saturating_mul(self.ticks as u32)
    }

    /// Resets the tick counter.
    pub fn reset(&mut self) {
        self.ticks = 0;
    }
}

impl Default for DwellClock {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_uses_50ms() {
        let c = DwellClock::paper();
        assert_eq!(c.dwell(), Duration::from_millis(50));
        assert_eq!(c.ticks(), 0);
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn ticks_accumulate_virtual_time() {
        let mut c = DwellClock::new(Duration::from_millis(10));
        for _ in 0..7 {
            c.tick();
        }
        assert_eq!(c.ticks(), 7);
        assert_eq!(c.elapsed(), Duration::from_millis(70));
    }

    #[test]
    fn reset_clears_ticks() {
        let mut c = DwellClock::paper();
        c.tick();
        c.reset();
        assert_eq!(c.ticks(), 0);
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn virtual_mode_does_not_sleep() {
        let mut c = DwellClock::new(Duration::from_secs(60));
        let start = std::time::Instant::now();
        for _ in 0..100 {
            c.tick();
        }
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(c.elapsed(), Duration::from_secs(6000));
    }

    #[test]
    fn real_sleep_actually_sleeps() {
        let mut c = DwellClock::new(Duration::from_millis(5)).with_real_sleep(true);
        let start = std::time::Instant::now();
        for _ in 0..4 {
            c.tick();
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(DwellClock::default(), DwellClock::paper());
    }
}
