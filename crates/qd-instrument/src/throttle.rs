//! Instrument-latency emulation: probes that cost *real* wall-clock time.
//!
//! [`crate::MeasurementSession`] accounts dwell virtually (a counter, not
//! a sleep), which is right for scoring Table 1 but hides the property
//! that makes batch-level parallelism pay off on real hardware: while one
//! instrument dwells, the host CPU is idle and can drive other devices.
//! [`ThrottledSource`] makes that latency physical by sleeping a
//! configurable dwell before each underlying probe, so throughput
//! harnesses (the `batch_throughput` bench) measure genuine overlap
//! rather than simulated numbers.

use crate::{CurrentSource, VoltageWindow};
use std::time::Duration;

/// Wraps a [`CurrentSource`], sleeping `dwell` before every probe that
/// reaches the underlying source.
///
/// Combined with a caching [`crate::MeasurementSession`], only *new*
/// pixels pay the sleep — exactly the probes that would cost dwell on the
/// real instrument. The readings themselves are untouched, so extraction
/// results stay bit-identical to an unthrottled run.
#[derive(Debug)]
pub struct ThrottledSource<S> {
    inner: S,
    dwell: Duration,
}

impl<S: CurrentSource> ThrottledSource<S> {
    /// Throttles `inner` to one probe per `dwell` of wall-clock time.
    ///
    /// The paper's instrument dwells 50 ms per pixel; benches typically
    /// scale that down (e.g. 50 µs = 1/1000×) to keep suite runs short
    /// while preserving the latency-bound character of the workload.
    pub fn new(inner: S, dwell: Duration) -> Self {
        Self { inner, dwell }
    }

    /// The emulated per-probe dwell.
    pub fn dwell(&self) -> Duration {
        self.dwell
    }

    /// Unwraps the underlying source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CurrentSource> CurrentSource for ThrottledSource<S> {
    fn current(&mut self, v1: f64, v2: f64) -> f64 {
        if !self.dwell.is_zero() {
            std::thread::sleep(self.dwell);
        }
        self.inner.current(v1, v2)
    }

    fn window(&self) -> VoltageWindow {
        self.inner.window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnSource, MeasurementSession};
    use std::time::Instant;

    fn window() -> VoltageWindow {
        VoltageWindow {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 9.0,
            y_max: 9.0,
            delta: 1.0,
        }
    }

    #[test]
    fn readings_pass_through_unchanged() {
        let mut s =
            ThrottledSource::new(FnSource::new(|a, b| 10.0 * a + b, window()), Duration::ZERO);
        assert_eq!(s.current(1.0, 2.0), 12.0);
        assert_eq!(s.window(), window());
    }

    #[test]
    fn probes_cost_real_time() {
        let dwell = Duration::from_millis(2);
        let mut s = ThrottledSource::new(FnSource::new(|_, _| 0.0, window()), dwell);
        let t = Instant::now();
        for i in 0..5 {
            let _ = s.current(i as f64, 0.0);
        }
        assert!(
            t.elapsed() >= dwell * 5,
            "5 probes must dwell at least {:?}, took {:?}",
            dwell * 5,
            t.elapsed()
        );
    }

    #[test]
    fn cached_reprobes_skip_the_dwell() {
        let dwell = Duration::from_millis(5);
        let src = ThrottledSource::new(FnSource::new(|a, b| a + b, window()), dwell);
        let mut session = MeasurementSession::new(src);
        let _ = session.get_current(1.0, 1.0);
        let t = Instant::now();
        for _ in 0..20 {
            let _ = session.get_current(1.0, 1.0);
        }
        assert!(
            t.elapsed() < dwell,
            "cached re-probes must not sleep, took {:?}",
            t.elapsed()
        );
        assert_eq!(session.probe_count(), 1);
    }

    #[test]
    fn accessors_expose_configuration() {
        let s = ThrottledSource::new(
            FnSource::new(|_, _| 0.0, window()),
            Duration::from_micros(50),
        );
        assert_eq!(s.dwell(), Duration::from_micros(50));
        let _inner = s.into_inner();
    }
}
