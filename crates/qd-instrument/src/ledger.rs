//! Probe bookkeeping: every measured pixel, in measurement order.
//!
//! Table 1's "number/percentage of points probed" and Figure 7's probed-
//! point scatter both come straight out of this ledger.

use std::collections::HashSet;

/// One recorded probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEvent {
    /// Quantized pixel x (column) index.
    pub px: i64,
    /// Quantized pixel y (row) index.
    pub py: i64,
    /// Voltages actually requested.
    pub v1: f64,
    /// Voltages actually requested.
    pub v2: f64,
}

/// Ordered record of probes with a unique-pixel index.
#[derive(Debug, Clone, Default)]
pub struct ProbeLedger {
    events: Vec<ProbeEvent>,
    unique: HashSet<(i64, i64)>,
}

impl ProbeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a probe at quantized pixel `(px, py)` for requested
    /// voltages `(v1, v2)`. Returns `true` if the pixel was new.
    pub fn record(&mut self, px: i64, py: i64, v1: f64, v2: f64) -> bool {
        self.events.push(ProbeEvent { px, py, v1, v2 });
        self.unique.insert((px, py))
    }

    /// Whether a pixel has been probed before.
    pub fn contains(&self, px: i64, py: i64) -> bool {
        self.unique.contains(&(px, py))
    }

    /// Total probes recorded (including re-probes of the same pixel).
    pub fn total_probes(&self) -> usize {
        self.events.len()
    }

    /// Distinct pixels probed.
    pub fn unique_pixels(&self) -> usize {
        self.unique.len()
    }

    /// Probes in measurement order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Distinct probed pixels as `(x, y)` pairs, in first-probe order —
    /// exactly the Figure 7 scatter data.
    pub fn scatter(&self) -> Vec<(i64, i64)> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert((e.px, e.py)) {
                out.push((e.px, e.py));
            }
        }
        out
    }

    /// Fraction of an `n_total`-pixel diagram that was probed (the
    /// "percentage of points probed" column of Table 1).
    ///
    /// Returns 0 for an empty diagram.
    pub fn coverage(&self, n_total: usize) -> f64 {
        if n_total == 0 {
            return 0.0;
        }
        self.unique_pixels() as f64 / n_total as f64
    }

    /// Clears all records.
    pub fn reset(&mut self) {
        self.events.clear();
        self.unique.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_totals_and_uniques() {
        let mut l = ProbeLedger::new();
        assert!(l.record(1, 2, 1.0, 2.0));
        assert!(!l.record(1, 2, 1.0, 2.0));
        assert!(l.record(3, 4, 3.0, 4.0));
        assert_eq!(l.total_probes(), 3);
        assert_eq!(l.unique_pixels(), 2);
        assert!(l.contains(1, 2));
        assert!(!l.contains(9, 9));
    }

    #[test]
    fn scatter_preserves_first_probe_order() {
        let mut l = ProbeLedger::new();
        l.record(5, 5, 5.0, 5.0);
        l.record(1, 1, 1.0, 1.0);
        l.record(5, 5, 5.0, 5.0);
        l.record(2, 2, 2.0, 2.0);
        assert_eq!(l.scatter(), vec![(5, 5), (1, 1), (2, 2)]);
    }

    #[test]
    fn coverage_fraction() {
        let mut l = ProbeLedger::new();
        for i in 0..10 {
            l.record(i, 0, i as f64, 0.0);
        }
        assert!((l.coverage(100) - 0.10).abs() < 1e-12);
        assert_eq!(l.coverage(0), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = ProbeLedger::new();
        l.record(1, 1, 1.0, 1.0);
        l.reset();
        assert_eq!(l.total_probes(), 0);
        assert_eq!(l.unique_pixels(), 0);
        assert!(l.scatter().is_empty());
    }

    #[test]
    fn events_expose_raw_voltages() {
        let mut l = ProbeLedger::new();
        l.record(2, 3, 2.4, 3.1);
        let e = l.events()[0];
        assert_eq!((e.px, e.py), (2, 3));
        assert_eq!((e.v1, e.v2), (2.4, 3.1));
    }
}
