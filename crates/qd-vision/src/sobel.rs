//! Sobel gradient estimation.

use crate::VisionError;
use mini_rayon::ThreadPool;
use qd_csd::Csd;
use qd_numerics::conv::{correlate2_with, Boundary, Kernel2};

/// Dense gradient field of an image: per-pixel x/y derivatives, magnitude
/// and direction.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientField {
    width: usize,
    height: usize,
    gx: Vec<f64>,
    gy: Vec<f64>,
    magnitude: Vec<f64>,
}

impl GradientField {
    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Horizontal derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn gx(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.gx[y * self.width + x]
    }

    /// Vertical derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn gy(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.gy[y * self.width + x]
    }

    /// Gradient magnitude `√(gx² + gy²)` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn magnitude(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.magnitude[y * self.width + x]
    }

    /// Gradient direction `atan2(gy, gx)` in radians at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn direction(&self, x: usize, y: usize) -> f64 {
        self.gy(x, y).atan2(self.gx(x, y))
    }

    /// Raw magnitude buffer (row-major, row 0 = bottom).
    pub fn magnitudes(&self) -> &[f64] {
        &self.magnitude
    }

    /// Maximum magnitude over the image.
    pub fn max_magnitude(&self) -> f64 {
        self.magnitude.iter().cloned().fold(0.0, f64::max)
    }
}

/// Computes Sobel gradients of `csd`.
///
/// Kernels are the standard 3×3 pair; `gy` is oriented so positive values
/// mean current increasing with `V_P2` (our row 0 is the diagram bottom).
///
/// # Errors
///
/// Returns [`VisionError::ImageTooSmall`] for images smaller than 3×3.
pub fn sobel(csd: &Csd) -> Result<GradientField, VisionError> {
    sobel_with(csd, &ThreadPool::new(1))
}

/// [`sobel`] with both gradient correlations row-chunked across a
/// [`ThreadPool`]. Output is bit-identical to the serial path for any
/// pool width (see [`correlate2_with`]).
///
/// # Errors
///
/// Same as [`sobel`].
pub fn sobel_with(csd: &Csd, pool: &ThreadPool) -> Result<GradientField, VisionError> {
    let (w, h) = csd.size();
    if w < 3 || h < 3 {
        return Err(VisionError::ImageTooSmall {
            min: 3,
            got: w.min(h),
        });
    }
    let kx = Kernel2::new(3, 3, vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0])
        .expect("static kernel is valid");
    let ky = Kernel2::new(3, 3, vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0])
        .expect("static kernel is valid");
    let gx = correlate2_with(csd.data(), h, w, &kx, Boundary::Replicate, pool)
        .expect("shape verified above");
    let gy = correlate2_with(csd.data(), h, w, &ky, Boundary::Replicate, pool)
        .expect("shape verified above");
    let magnitude = gx
        .iter()
        .zip(&gy)
        .map(|(a, b)| (a * a + b * b).sqrt())
        .collect();
    Ok(GradientField {
        width: w,
        height: h,
        gx,
        gy,
        magnitude,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_csd::VoltageGrid;

    fn grid(w: usize, h: usize) -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, w, h).unwrap()
    }

    #[test]
    fn rejects_tiny_images() {
        let c = Csd::constant(grid(2, 5), 0.0).unwrap();
        assert_eq!(
            sobel(&c),
            Err(VisionError::ImageTooSmall { min: 3, got: 2 })
        );
    }

    #[test]
    fn horizontal_ramp_has_pure_gx() {
        let c = Csd::from_fn(grid(9, 9), |v1, _| v1).unwrap();
        let g = sobel(&c).unwrap();
        // Interior pixels: gx = 8 (Sobel weight sum x 1/pixel step), gy = 0.
        assert!((g.gx(4, 4) - 8.0).abs() < 1e-12);
        assert!(g.gy(4, 4).abs() < 1e-12);
        assert!((g.magnitude(4, 4) - 8.0).abs() < 1e-12);
        assert!(g.direction(4, 4).abs() < 1e-12);
    }

    #[test]
    fn vertical_ramp_has_pure_gy() {
        let c = Csd::from_fn(grid(9, 9), |_, v2| 2.0 * v2).unwrap();
        let g = sobel(&c).unwrap();
        assert!(g.gx(4, 4).abs() < 1e-12);
        assert!((g.gy(4, 4) - 16.0).abs() < 1e-12);
        assert!((g.direction(4, 4) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn step_edge_peaks_at_the_step() {
        let c = Csd::from_fn(grid(11, 11), |v1, _| if v1 < 5.0 { 1.0 } else { 0.0 }).unwrap();
        let g = sobel(&c).unwrap();
        let mid_mag = g.magnitude(5, 5).max(g.magnitude(4, 5));
        assert!(mid_mag > g.magnitude(1, 5));
        assert!(mid_mag > g.magnitude(9, 5));
        assert_eq!(g.max_magnitude(), mid_mag.max(g.max_magnitude()));
    }

    #[test]
    fn constant_image_has_zero_gradient() {
        let c = Csd::constant(grid(7, 7), 4.0).unwrap();
        let g = sobel(&c).unwrap();
        assert_eq!(g.max_magnitude(), 0.0);
        assert_eq!(g.magnitudes().len(), 49);
    }

    #[test]
    fn parallel_sobel_is_bit_identical() {
        let c = Csd::from_fn(grid(29, 31), |v1, v2| (v1 * 0.4 - v2 * 1.7).cos()).unwrap();
        let serial = sobel(&c).unwrap();
        let par = sobel_with(&c, &ThreadPool::new(4)).unwrap();
        assert_eq!(serial, par, "parallel Sobel diverged from serial");
    }

    #[test]
    fn dimensions_exposed() {
        let c = Csd::constant(grid(6, 8), 0.0).unwrap();
        let g = sobel(&c).unwrap();
        assert_eq!((g.width(), g.height()), (6, 8));
    }
}
