//! Separable Gaussian blur for CSD images.

use crate::VisionError;
use mini_rayon::ThreadPool;
use qd_csd::Csd;
use qd_numerics::conv::{separable2_with, Boundary};
use qd_numerics::gaussian::kernel1;

/// Applies an odd `ksize × ksize` Gaussian blur with standard deviation
/// `sigma` (pixels), replicate boundary — the smoothing stage of the
/// OpenCV-style Canny baseline.
///
/// # Errors
///
/// Returns [`VisionError::InvalidParameter`] for an even/zero kernel size
/// or non-positive sigma.
///
/// ```
/// use qd_csd::{Csd, VoltageGrid};
/// use qd_vision::blur::gaussian_blur;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = VoltageGrid::new(0.0, 0.0, 1.0, 16, 16)?;
/// let noisy = Csd::from_fn(grid, |v1, v2| ((v1 * 7.0 + v2 * 13.0) as i64 % 5) as f64)?;
/// let smooth = gaussian_blur(&noisy, 5, 1.2)?;
/// // Blur preserves the mean but shrinks the extremes.
/// let (lo_n, hi_n) = noisy.min_max();
/// let (lo_s, hi_s) = smooth.min_max();
/// assert!(hi_s - lo_s < hi_n - lo_n);
/// # Ok(())
/// # }
/// ```
pub fn gaussian_blur(csd: &Csd, ksize: usize, sigma: f64) -> Result<Csd, VisionError> {
    gaussian_blur_with(csd, ksize, sigma, &ThreadPool::new(1))
}

/// [`gaussian_blur`] with both separable passes row-chunked across a
/// [`ThreadPool`]. Output is bit-identical to the serial path for any
/// pool width (see [`separable2_with`]).
///
/// # Errors
///
/// Same as [`gaussian_blur`].
pub fn gaussian_blur_with(
    csd: &Csd,
    ksize: usize,
    sigma: f64,
    pool: &ThreadPool,
) -> Result<Csd, VisionError> {
    let k = kernel1(ksize, sigma).map_err(|_| VisionError::InvalidParameter {
        name: "ksize/sigma",
        constraint: "kernel size must be odd, sigma positive",
    })?;
    let (w, h) = csd.size();
    let blurred = separable2_with(csd.data(), h, w, &k, &k, Boundary::Replicate, pool)
        .expect("image shape matches grid by construction");
    Csd::from_data(*csd.grid(), blurred).map_err(|_| VisionError::InvalidParameter {
        name: "csd",
        constraint: "internal shape mismatch",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_csd::VoltageGrid;

    fn grid(w: usize, h: usize) -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, w, h).unwrap()
    }

    #[test]
    fn constant_image_unchanged() {
        let c = Csd::constant(grid(10, 10), 3.0).unwrap();
        let b = gaussian_blur(&c, 5, 1.0).unwrap();
        for (_, v) in b.iter() {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn blur_reduces_peak_of_impulse() {
        let mut c = Csd::constant(grid(11, 11), 0.0).unwrap();
        c.set(5, 5, 1.0).unwrap();
        let b = gaussian_blur(&c, 5, 1.0).unwrap();
        assert!(b.at(5, 5) < 1.0);
        assert!(b.at(5, 5) > b.at(4, 5) * 0.9);
        // Mass roughly conserved away from edges.
        let total: f64 = b.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn blur_is_symmetric_for_impulse() {
        let mut c = Csd::constant(grid(11, 11), 0.0).unwrap();
        c.set(5, 5, 1.0).unwrap();
        let b = gaussian_blur(&c, 5, 1.3).unwrap();
        assert!((b.at(4, 5) - b.at(6, 5)).abs() < 1e-12);
        assert!((b.at(5, 4) - b.at(5, 6)).abs() < 1e-12);
        assert!((b.at(4, 5) - b.at(5, 4)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_params() {
        let c = Csd::constant(grid(8, 8), 0.0).unwrap();
        assert!(gaussian_blur(&c, 4, 1.0).is_err());
        assert!(gaussian_blur(&c, 5, 0.0).is_err());
    }

    #[test]
    fn parallel_blur_is_bit_identical() {
        let c = Csd::from_fn(grid(33, 27), |v1, v2| (v1 * 7.3 + v2 * 2.1).sin()).unwrap();
        let serial = gaussian_blur(&c, 5, 1.2).unwrap();
        for workers in [2, 4] {
            let par = gaussian_blur_with(&c, 5, 1.2, &ThreadPool::new(workers)).unwrap();
            assert!(
                serial
                    .data()
                    .iter()
                    .zip(par.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers={workers}: parallel blur diverged"
            );
        }
    }

    #[test]
    fn preserves_grid() {
        let c = Csd::constant(grid(8, 6), 0.0).unwrap();
        let b = gaussian_blur(&c, 3, 0.8).unwrap();
        assert_eq!(b.grid(), c.grid());
    }
}
