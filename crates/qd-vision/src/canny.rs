//! Canny edge detection: blur → Sobel → non-maximum suppression →
//! double-threshold hysteresis.

use crate::blur::gaussian_blur_with;
use crate::sobel::sobel_with;
use crate::VisionError;
use mini_rayon::ThreadPool;
use qd_csd::{Csd, Pixel};

/// Parameters for [`canny`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CannyParams {
    /// Gaussian pre-blur kernel size (odd).
    pub blur_ksize: usize,
    /// Gaussian pre-blur sigma (pixels).
    pub blur_sigma: f64,
    /// Low hysteresis threshold as a fraction of the maximum gradient
    /// magnitude (adaptive mode).
    pub low_fraction: f64,
    /// High hysteresis threshold as a fraction of the maximum gradient
    /// magnitude (adaptive mode).
    pub high_fraction: f64,
    /// Absolute hysteresis thresholds `(low, high)` in gradient-magnitude
    /// units. When set, these override the fractional thresholds — this
    /// is how OpenCV's `Canny(low, high)` behaves, and it is what makes
    /// the baseline starve on faint diagrams (the paper's CSD 7).
    pub absolute_thresholds: Option<(f64, f64)>,
}

impl Default for CannyParams {
    fn default() -> Self {
        Self {
            blur_ksize: 5,
            blur_sigma: 1.2,
            low_fraction: 0.10,
            high_fraction: 0.25,
            absolute_thresholds: None,
        }
    }
}

/// A binary edge map, same layout as the source diagram (row 0 = bottom).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMap {
    width: usize,
    height: usize,
    edges: Vec<bool>,
}

impl EdgeMap {
    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether pixel `(x, y)` is an edge.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn is_edge(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.edges[y * self.width + x]
    }

    /// Number of edge pixels.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|&&e| e).count()
    }

    /// All edge pixels in row-major order.
    pub fn edge_pixels(&self) -> Vec<Pixel> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| Pixel::new(i % self.width, i / self.width))
            .collect()
    }
}

/// Runs Canny edge detection on a diagram.
///
/// # Errors
///
/// * [`VisionError::InvalidParameter`] for bad blur parameters or
///   thresholds outside `0 < low ≤ high ≤ 1`.
/// * [`VisionError::ImageTooSmall`] for images smaller than 3×3.
pub fn canny(csd: &Csd, params: CannyParams) -> Result<EdgeMap, VisionError> {
    canny_with(csd, params, &ThreadPool::new(1))
}

/// [`canny`] with the blur, Sobel and non-maximum-suppression stages
/// row-chunked across a [`ThreadPool`].
///
/// Every stage computes each pixel from read-only inputs, so the edge map
/// is bit-identical to the serial path for any pool width; only the
/// hysteresis flood fill (a cheap set expansion) stays serial.
///
/// # Errors
///
/// Same as [`canny`].
pub fn canny_with(
    csd: &Csd,
    params: CannyParams,
    pool: &ThreadPool,
) -> Result<EdgeMap, VisionError> {
    if !(params.low_fraction > 0.0
        && params.low_fraction <= params.high_fraction
        && params.high_fraction <= 1.0)
    {
        return Err(VisionError::InvalidParameter {
            name: "low_fraction/high_fraction",
            constraint: "must satisfy 0 < low <= high <= 1",
        });
    }
    if let Some((lo, hi)) = params.absolute_thresholds {
        if !(lo > 0.0 && lo <= hi) {
            return Err(VisionError::InvalidParameter {
                name: "absolute_thresholds",
                constraint: "must satisfy 0 < low <= high",
            });
        }
    }
    let blurred = gaussian_blur_with(csd, params.blur_ksize, params.blur_sigma, pool)?;
    let grad = sobel_with(&blurred, pool)?;
    let (w, h) = (grad.width(), grad.height());
    let max_mag = grad.max_magnitude();
    if max_mag == 0.0 {
        // A perfectly flat image has no edges; return an empty map rather
        // than erroring so callers can distinguish "flat" from "misuse".
        return Ok(EdgeMap {
            width: w,
            height: h,
            edges: vec![false; w * h],
        });
    }
    let (low, high) = match params.absolute_thresholds {
        Some((lo, hi)) => (lo, hi),
        None => (
            params.low_fraction * max_mag,
            params.high_fraction * max_mag,
        ),
    };

    // Non-maximum suppression: quantize direction to 4 sectors and keep
    // pixels that dominate both neighbours along the gradient. Each output
    // pixel reads only the shared gradient field, so rows chunk freely.
    let mut nms = vec![0.0; w * h];
    pool.par_chunks_mut(&mut nms, w, |offset, chunk| {
        let y0 = offset / w;
        for (yi, row) in chunk.chunks_mut(w).enumerate() {
            let y = y0 + yi;
            for (x, slot) in row.iter_mut().enumerate() {
                let m = grad.magnitude(x, y);
                if m == 0.0 {
                    continue;
                }
                let theta = grad.direction(x, y);
                // Sector in [0, 180): 0 = horizontal gradient (vertical edge).
                let deg = theta.to_degrees().rem_euclid(180.0);
                let (dx, dy): (isize, isize) = if !(22.5..157.5).contains(&deg) {
                    (1, 0)
                } else if deg < 67.5 {
                    (1, 1)
                } else if deg < 112.5 {
                    (0, 1)
                } else {
                    (-1, 1)
                };
                let sample = |xx: isize, yy: isize| -> f64 {
                    if xx < 0 || yy < 0 || xx >= w as isize || yy >= h as isize {
                        0.0
                    } else {
                        grad.magnitude(xx as usize, yy as usize)
                    }
                };
                let fwd = sample(x as isize + dx, y as isize + dy);
                let back = sample(x as isize - dx, y as isize - dy);
                if m >= fwd && m >= back {
                    *slot = m;
                }
            }
        }
    });

    // Hysteresis: strong pixels seed a flood fill through weak pixels.
    const UNVISITED: u8 = 0;
    const WEAK: u8 = 1;
    const STRONG: u8 = 2;
    let mut class = vec![UNVISITED; w * h];
    let mut stack = Vec::new();
    for (i, &m) in nms.iter().enumerate() {
        if m >= high {
            class[i] = STRONG;
            stack.push(i);
        } else if m >= low {
            class[i] = WEAK;
        }
    }
    let mut edges = vec![false; w * h];
    while let Some(i) = stack.pop() {
        if edges[i] {
            continue;
        }
        edges[i] = true;
        let x = (i % w) as isize;
        let y = (i / w) as isize;
        for dy in -1..=1 {
            for dx in -1..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let xx = x + dx;
                let yy = y + dy;
                if xx < 0 || yy < 0 || xx >= w as isize || yy >= h as isize {
                    continue;
                }
                let j = yy as usize * w + xx as usize;
                if !edges[j] && class[j] != UNVISITED {
                    stack.push(j);
                }
            }
        }
    }

    Ok(EdgeMap {
        width: w,
        height: h,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_csd::VoltageGrid;

    fn grid(w: usize, h: usize) -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, w, h).unwrap()
    }

    fn step_csd() -> Csd {
        Csd::from_fn(grid(32, 32), |v1, _| if v1 < 16.0 { 5.0 } else { 2.0 }).unwrap()
    }

    #[test]
    fn flat_image_yields_empty_map() {
        let c = Csd::constant(grid(16, 16), 1.0).unwrap();
        let e = canny(&c, CannyParams::default()).unwrap();
        assert_eq!(e.edge_count(), 0);
    }

    #[test]
    fn vertical_step_detected_as_vertical_edge_line() {
        let e = canny(&step_csd(), CannyParams::default()).unwrap();
        assert!(e.edge_count() > 0);
        // All edge pixels should hug the step column.
        for p in e.edge_pixels() {
            assert!(
                (14..=17).contains(&p.x),
                "edge pixel at x = {} far from the step",
                p.x
            );
        }
        // Edge should span most rows.
        let rows: std::collections::HashSet<usize> = e.edge_pixels().iter().map(|p| p.y).collect();
        assert!(rows.len() >= 28, "edge spans only {} rows", rows.len());
    }

    #[test]
    fn parallel_canny_is_bit_identical() {
        let c = Csd::from_fn(grid(48, 48), |v1, v2| {
            let mut i = 6.0 - 0.01 * (v1 + v2);
            if v2 > -3.0 * (v1 - 30.0) {
                i -= 1.0;
            }
            if v2 > 28.0 - 0.3 * v1 {
                i -= 0.8;
            }
            i
        })
        .unwrap();
        let serial = canny(&c, CannyParams::default()).unwrap();
        for workers in [2, 4] {
            let par = canny_with(&c, CannyParams::default(), &ThreadPool::new(workers)).unwrap();
            assert_eq!(serial, par, "workers={workers}: parallel Canny diverged");
        }
    }

    #[test]
    fn nms_thins_edges() {
        let e = canny(&step_csd(), CannyParams::default()).unwrap();
        // At most ~2 pixels per row after non-max suppression.
        let mut per_row = std::collections::HashMap::new();
        for p in e.edge_pixels() {
            *per_row.entry(p.y).or_insert(0usize) += 1;
        }
        for (&row, &count) in &per_row {
            assert!(count <= 2, "row {row} has {count} edge pixels");
        }
    }

    #[test]
    fn diagonal_edge_detected() {
        let c = Csd::from_fn(
            grid(32, 32),
            |v1, v2| if v1 + v2 < 30.0 { 4.0 } else { 1.0 },
        )
        .unwrap();
        let e = canny(&c, CannyParams::default()).unwrap();
        assert!(e.edge_count() >= 20);
        for p in e.edge_pixels() {
            let d = (p.x as f64 + p.y as f64 - 30.0).abs();
            assert!(d <= 3.0, "edge pixel {p} too far from the diagonal");
        }
    }

    #[test]
    fn hysteresis_connects_weak_to_strong() {
        // A step with a weak section: make the contrast fade along y.
        let c = Csd::from_fn(grid(32, 32), |v1, v2| {
            let contrast = 1.0 + 3.0 * (v2 / 31.0);
            if v1 < 16.0 {
                contrast
            } else {
                0.0
            }
        })
        .unwrap();
        let e = canny(
            &c,
            CannyParams {
                low_fraction: 0.05,
                high_fraction: 0.5,
                ..CannyParams::default()
            },
        )
        .unwrap();
        // The weak (low-contrast) bottom rows connect to the strong top.
        let rows: std::collections::HashSet<usize> = e.edge_pixels().iter().map(|p| p.y).collect();
        assert!(
            rows.iter().any(|&r| r < 8),
            "weak rows not linked by hysteresis"
        );
    }

    #[test]
    fn rejects_bad_thresholds() {
        let c = step_csd();
        let bad = CannyParams {
            low_fraction: 0.5,
            high_fraction: 0.2,
            ..CannyParams::default()
        };
        assert!(canny(&c, bad).is_err());
        let zero = CannyParams {
            low_fraction: 0.0,
            ..CannyParams::default()
        };
        assert!(canny(&c, zero).is_err());
    }

    #[test]
    fn edge_map_accessors() {
        let e = canny(&step_csd(), CannyParams::default()).unwrap();
        assert_eq!(e.width(), 32);
        assert_eq!(e.height(), 32);
        let pixels = e.edge_pixels();
        assert_eq!(pixels.len(), e.edge_count());
        let p = pixels[0];
        assert!(e.is_edge(p.x, p.y));
    }
}
