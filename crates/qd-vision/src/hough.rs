//! Hough line transform on binary edge maps.
//!
//! Lines are parameterized as `ρ = x·cosθ + y·sinθ` with `θ ∈ [0, π)` and
//! signed `ρ`. Peaks in the accumulator (with neighbourhood suppression)
//! are returned strongest-first. Slopes are in the diagram's coordinate
//! convention (`y` upward), so the CSD transition lines come out negative.

use crate::{EdgeMap, VisionError};

/// Parameters for [`hough_lines`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoughParams {
    /// Number of θ bins across `[0, π)`.
    pub n_theta: usize,
    /// ρ resolution in pixels.
    pub rho_resolution: f64,
    /// Minimum votes for a peak, as a fraction of the strongest peak.
    pub peak_fraction: f64,
    /// Maximum number of lines to return.
    pub max_lines: usize,
    /// Half-size of the suppression neighbourhood in (θ, ρ) bins.
    pub suppression_radius: usize,
}

impl Default for HoughParams {
    fn default() -> Self {
        Self {
            n_theta: 180,
            rho_resolution: 1.0,
            peak_fraction: 0.3,
            max_lines: 8,
            suppression_radius: 8,
        }
    }
}

/// A detected line in ρ–θ form with its vote count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoughLine {
    /// Distance from the origin (pixels, signed).
    pub rho: f64,
    /// Normal angle in radians, `[0, π)`.
    pub theta: f64,
    /// Accumulator votes (supporting edge pixels).
    pub votes: usize,
}

impl HoughLine {
    /// Slope `dy/dx` of the line, or `None` if vertical
    /// (`sin θ ≈ 0`).
    pub fn slope(&self) -> Option<f64> {
        let s = self.theta.sin();
        if s.abs() < 1e-9 {
            None
        } else {
            Some(-self.theta.cos() / s)
        }
    }

    /// `y` intercept of the line, or `None` if vertical.
    pub fn intercept(&self) -> Option<f64> {
        let s = self.theta.sin();
        if s.abs() < 1e-9 {
            None
        } else {
            Some(self.rho / s)
        }
    }

    /// `y` coordinate at a given `x`, or `None` if vertical.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        Some(self.slope()? * x + self.intercept()?)
    }
}

/// Runs the Hough transform and returns peak lines, strongest first.
///
/// # Errors
///
/// * [`VisionError::InvalidParameter`] for a zero `n_theta`/`max_lines`,
///   non-positive `rho_resolution`, or `peak_fraction` outside `(0, 1]`.
/// * [`VisionError::NoEdges`] if the edge map is empty.
pub fn hough_lines(edges: &EdgeMap, params: HoughParams) -> Result<Vec<HoughLine>, VisionError> {
    if params.n_theta == 0 || params.max_lines == 0 {
        return Err(VisionError::InvalidParameter {
            name: "n_theta/max_lines",
            constraint: "must be non-zero",
        });
    }
    if params.rho_resolution.is_nan() || params.rho_resolution <= 0.0 {
        return Err(VisionError::InvalidParameter {
            name: "rho_resolution",
            constraint: "must be positive",
        });
    }
    if !(params.peak_fraction > 0.0 && params.peak_fraction <= 1.0) {
        return Err(VisionError::InvalidParameter {
            name: "peak_fraction",
            constraint: "must be in (0, 1]",
        });
    }
    let pixels = edges.edge_pixels();
    if pixels.is_empty() {
        return Err(VisionError::NoEdges);
    }

    let w = edges.width() as f64;
    let h = edges.height() as f64;
    let rho_max = (w * w + h * h).sqrt();
    let n_rho = (2.0 * rho_max / params.rho_resolution).ceil() as usize + 1;
    let n_theta = params.n_theta;

    // Precompute sin/cos per θ bin.
    let thetas: Vec<f64> = (0..n_theta)
        .map(|i| i as f64 * std::f64::consts::PI / n_theta as f64)
        .collect();
    let trig: Vec<(f64, f64)> = thetas.iter().map(|&t| (t.cos(), t.sin())).collect();

    let mut acc = vec![0u32; n_theta * n_rho];
    for p in &pixels {
        let (x, y) = (p.x as f64, p.y as f64);
        for (ti, &(c, s)) in trig.iter().enumerate() {
            let rho = x * c + y * s;
            let ri = ((rho + rho_max) / params.rho_resolution).round() as usize;
            if ri < n_rho {
                acc[ti * n_rho + ri] += 1;
            }
        }
    }

    let max_votes = *acc.iter().max().expect("accumulator is non-empty");
    if max_votes == 0 {
        return Err(VisionError::NoEdges);
    }
    let threshold = ((max_votes as f64) * params.peak_fraction).ceil() as u32;

    // Greedy peak extraction with neighbourhood suppression. θ wraps
    // around π (a line at θ≈0 also appears near θ≈π with negated ρ), so
    // suppression is applied on the wrapped coordinate too.
    let mut work = acc;
    let mut out = Vec::new();
    let r = params.suppression_radius as isize;
    while out.len() < params.max_lines {
        let (best_i, &best_v) = work
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .expect("accumulator is non-empty");
        if best_v < threshold || best_v == 0 {
            break;
        }
        let ti = (best_i / n_rho) as isize;
        let ri = (best_i % n_rho) as isize;
        out.push(HoughLine {
            rho: ri as f64 * params.rho_resolution - rho_max,
            theta: thetas[ti as usize],
            votes: best_v as usize,
        });
        for dt in -r..=r {
            for dr in -r..=r {
                let mut t = ti + dt;
                let mut rr = ri + dr;
                // Wrap θ, mirroring ρ.
                if t < 0 {
                    t += n_theta as isize;
                    rr = (n_rho as isize - 1) - rr;
                } else if t >= n_theta as isize {
                    t -= n_theta as isize;
                    rr = (n_rho as isize - 1) - rr;
                }
                if rr < 0 || rr >= n_rho as isize {
                    continue;
                }
                work[t as usize * n_rho + rr as usize] = 0;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canny::{canny, CannyParams};
    use qd_csd::{Csd, VoltageGrid};

    fn grid(w: usize, h: usize) -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, w, h).unwrap()
    }

    fn edges_of(csd: &Csd) -> EdgeMap {
        canny(csd, CannyParams::default()).unwrap()
    }

    #[test]
    fn detects_horizontal_line() {
        let c = Csd::from_fn(grid(40, 40), |_, v2| if v2 < 20.0 { 3.0 } else { 1.0 }).unwrap();
        let lines = hough_lines(&edges_of(&c), HoughParams::default()).unwrap();
        assert!(!lines.is_empty());
        let m = lines[0].slope().expect("horizontal line has a slope");
        assert!(m.abs() < 0.05, "slope {m}");
        let y0 = lines[0].intercept().unwrap();
        assert!((y0 - 19.5).abs() <= 1.5, "intercept {y0}");
    }

    #[test]
    fn detects_vertical_line() {
        let c = Csd::from_fn(grid(40, 40), |v1, _| if v1 < 20.0 { 3.0 } else { 1.0 }).unwrap();
        let lines = hough_lines(&edges_of(&c), HoughParams::default()).unwrap();
        assert!(!lines.is_empty());
        // Vertical → theta ≈ 0 → slope None.
        assert!(lines[0].slope().is_none() || lines[0].slope().unwrap().abs() > 20.0);
    }

    #[test]
    fn detects_sloped_line_slope() {
        // Step across y = -0.5 x + 30 → slope -0.5.
        let c = Csd::from_fn(
            grid(60, 60),
            |v1, v2| {
                if v2 + 0.5 * v1 < 30.0 {
                    4.0
                } else {
                    1.0
                }
            },
        )
        .unwrap();
        let lines = hough_lines(&edges_of(&c), HoughParams::default()).unwrap();
        let m = lines[0].slope().unwrap();
        assert!((m + 0.5).abs() < 0.08, "slope {m}");
    }

    #[test]
    fn detects_two_crossing_lines() {
        // A CSD-like corner: steep line + shallow line.
        let c = Csd::from_fn(grid(80, 80), |v1, v2| {
            let above_steep = v2 > -4.0 * (v1 - 55.0);
            let above_shallow = v2 > 55.0 - 0.25 * v1;
            4.0 - if above_steep { 1.5 } else { 0.0 } - if above_shallow { 1.5 } else { 0.0 }
        })
        .unwrap();
        let lines = hough_lines(
            &edges_of(&c),
            HoughParams {
                max_lines: 4,
                peak_fraction: 0.2,
                ..HoughParams::default()
            },
        )
        .unwrap();
        assert!(lines.len() >= 2, "found {} lines", lines.len());
        let slopes: Vec<f64> = lines
            .iter()
            .map(|l| l.slope().unwrap_or(f64::NEG_INFINITY))
            .collect();
        assert!(
            slopes.iter().any(|&m| m < -1.0),
            "no steep line in {slopes:?}"
        );
        assert!(
            slopes.iter().any(|&m| m > -1.0 && m < 0.0),
            "no shallow line in {slopes:?}"
        );
    }

    #[test]
    fn votes_reflect_support() {
        let c = Csd::from_fn(grid(40, 40), |_, v2| if v2 < 20.0 { 3.0 } else { 1.0 }).unwrap();
        let lines = hough_lines(&edges_of(&c), HoughParams::default()).unwrap();
        // A full-width horizontal line should gather ≈ width votes.
        assert!(lines[0].votes >= 30, "votes {}", lines[0].votes);
    }

    #[test]
    fn empty_edge_map_errors() {
        let c = Csd::constant(grid(10, 10), 0.0).unwrap();
        let e = edges_of(&c);
        assert_eq!(
            hough_lines(&e, HoughParams::default()),
            Err(VisionError::NoEdges)
        );
    }

    #[test]
    fn rejects_bad_params() {
        let c = Csd::from_fn(grid(20, 20), |v1, _| v1).unwrap();
        let e = edges_of(&c);
        for bad in [
            HoughParams {
                n_theta: 0,
                ..HoughParams::default()
            },
            HoughParams {
                max_lines: 0,
                ..HoughParams::default()
            },
            HoughParams {
                rho_resolution: 0.0,
                ..HoughParams::default()
            },
            HoughParams {
                peak_fraction: 0.0,
                ..HoughParams::default()
            },
            HoughParams {
                peak_fraction: 1.5,
                ..HoughParams::default()
            },
        ] {
            assert!(hough_lines(&e, bad).is_err());
        }
    }

    #[test]
    fn y_at_evaluates_line() {
        let l = HoughLine {
            rho: 10.0,
            theta: std::f64::consts::FRAC_PI_2,
            votes: 1,
        };
        // θ = π/2 → horizontal line y = 10.
        assert!((l.y_at(100.0).unwrap() - 10.0).abs() < 1e-9);
        assert!((l.slope().unwrap()).abs() < 1e-9);
    }
}
