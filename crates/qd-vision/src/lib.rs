//! From-scratch computer vision for charge stability diagrams.
//!
//! The paper's baseline (its §5.1) is the existing automation approach:
//! acquire a **full** CSD, then run Canny edge detection and a Hough
//! transform to find the transition lines (Mills et al. 2019, Oakes et al.
//! 2020 — implemented there with OpenCV). This crate reimplements that
//! pipeline in pure Rust:
//!
//! * [`blur`] — separable Gaussian smoothing;
//! * [`sobel`] — Sobel gradients, magnitude and direction;
//! * [`canny`] — non-maximum suppression + double-threshold hysteresis;
//! * [`hough`] — ρ–θ accumulator, peak extraction and line conversion.
//!
//! # Example
//!
//! ```
//! use qd_csd::{Csd, VoltageGrid};
//! use qd_vision::{canny::canny, hough::{hough_lines, HoughParams}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoltageGrid::new(0.0, 0.0, 1.0, 48, 48)?;
//! // A single steep step edge.
//! let csd = Csd::from_fn(grid, |v1, v2| if v2 > -4.0 * (v1 - 30.0) { 2.0 } else { 6.0 })?;
//! let edges = canny(&csd, Default::default())?;
//! let lines = hough_lines(&edges, HoughParams::default())?;
//! assert!(!lines.is_empty());
//! // The strongest line should be steep and negative.
//! let m = lines[0].slope().unwrap_or(f64::INFINITY);
//! assert!(m < -1.0 || m.is_infinite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blur;
pub mod canny;
pub mod hough;
pub mod segments;
pub mod sobel;

mod error;

pub use canny::EdgeMap;
pub use error::VisionError;
pub use hough::HoughLine;
pub use segments::LineSegment;
