use std::error::Error;
use std::fmt;

/// Error type for the vision pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VisionError {
    /// A parameter was outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// The image was too small for the requested operation.
    ImageTooSmall {
        /// Minimum dimension required.
        min: usize,
        /// Actual smaller dimension.
        got: usize,
    },
    /// No edges survived thresholding, so downstream stages have nothing
    /// to work with.
    NoEdges,
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::InvalidParameter { name, constraint } => {
                write!(f, "parameter `{name}` violated constraint: {constraint}")
            }
            VisionError::ImageTooSmall { min, got } => {
                write!(f, "image dimension {got} below minimum {min}")
            }
            VisionError::NoEdges => write!(f, "no edge pixels survived thresholding"),
        }
    }
}

impl Error for VisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        for e in [
            VisionError::InvalidParameter {
                name: "sigma",
                constraint: "positive",
            },
            VisionError::ImageTooSmall { min: 5, got: 3 },
            VisionError::NoEdges,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn f<T: Send + Sync>() {}
        f::<VisionError>();
    }
}
