//! Line-*segment* extraction on top of the ρ–θ Hough transform,
//! equivalent in spirit to OpenCV's `HoughLinesP`.
//!
//! A full Hough line says "infinitely many collinear points exist"; real
//! CSD analysis wants to know *where* the support lies — the steep line
//! only exists below the triple point, the shallow line only to its left.
//! [`extract_segments`] walks each detected line's supporting edge pixels
//! in order, splits on gaps, and reports maximal dense runs.

use crate::hough::{hough_lines, HoughParams};
use crate::{EdgeMap, HoughLine, VisionError};

/// Parameters for [`extract_segments`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentParams {
    /// Hough parameters for the underlying line detection.
    pub hough: HoughParams,
    /// Maximum perpendicular distance (pixels) for an edge pixel to
    /// support a line.
    pub support_distance: f64,
    /// Maximum along-line gap (pixels) within one segment.
    pub max_gap: f64,
    /// Minimum segment length (pixels) to report.
    pub min_length: f64,
}

impl Default for SegmentParams {
    fn default() -> Self {
        Self {
            hough: HoughParams::default(),
            support_distance: 1.8,
            max_gap: 4.0,
            min_length: 8.0,
        }
    }
}

/// A maximal dense run of edge support along a Hough line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSegment {
    /// Segment start in pixel coordinates.
    pub start: (f64, f64),
    /// Segment end in pixel coordinates.
    pub end: (f64, f64),
    /// Edge pixels supporting this segment.
    pub support: usize,
    /// The parent Hough line.
    pub line: HoughLine,
}

impl LineSegment {
    /// Segment length in pixels.
    pub fn length(&self) -> f64 {
        let dx = self.end.0 - self.start.0;
        let dy = self.end.1 - self.start.1;
        (dx * dx + dy * dy).sqrt()
    }

    /// Slope `dy/dx`, or `None` if vertical.
    pub fn slope(&self) -> Option<f64> {
        let dx = self.end.0 - self.start.0;
        if dx.abs() < 1e-9 {
            None
        } else {
            Some((self.end.1 - self.start.1) / dx)
        }
    }

    /// Segment midpoint.
    pub fn midpoint(&self) -> (f64, f64) {
        (
            0.5 * (self.start.0 + self.end.0),
            0.5 * (self.start.1 + self.end.1),
        )
    }
}

/// Extracts supported line segments from an edge map, longest first.
///
/// # Errors
///
/// * Propagates [`hough_lines`] errors ([`VisionError::NoEdges`], bad
///   parameters).
/// * Returns [`VisionError::InvalidParameter`] for non-positive
///   `support_distance`, `max_gap` or `min_length`.
pub fn extract_segments(
    edges: &EdgeMap,
    params: SegmentParams,
) -> Result<Vec<LineSegment>, VisionError> {
    if !(params.support_distance > 0.0 && params.max_gap > 0.0 && params.min_length > 0.0) {
        return Err(VisionError::InvalidParameter {
            name: "support_distance/max_gap/min_length",
            constraint: "must all be positive",
        });
    }
    let lines = hough_lines(edges, params.hough)?;
    let pixels = edges.edge_pixels();
    let mut segments = Vec::new();

    for line in lines {
        let (s, c) = line.theta.sin_cos();
        // Along-line coordinate t and perpendicular distance d for every
        // edge pixel: with unit normal (c, s), the direction is (-s, c).
        let mut support: Vec<(f64, (f64, f64))> = pixels
            .iter()
            .filter_map(|p| {
                let (x, y) = (p.x as f64, p.y as f64);
                let d = (x * c + y * s - line.rho).abs();
                if d <= params.support_distance {
                    Some((-x * s + y * c, (x, y)))
                } else {
                    None
                }
            })
            .collect();
        if support.len() < 2 {
            continue;
        }
        support.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Split on gaps.
        let mut run_start = 0usize;
        for i in 1..=support.len() {
            let split = i == support.len() || support[i].0 - support[i - 1].0 > params.max_gap;
            if !split {
                continue;
            }
            let run = &support[run_start..i];
            run_start = i;
            if run.len() < 2 {
                continue;
            }
            let seg = LineSegment {
                start: run[0].1,
                end: run[run.len() - 1].1,
                support: run.len(),
                line,
            };
            if seg.length() >= params.min_length {
                segments.push(seg);
            }
        }
    }
    segments.sort_by(|a, b| {
        b.length()
            .partial_cmp(&a.length())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canny::{canny, CannyParams};
    use qd_csd::{Csd, VoltageGrid};

    fn grid(n: usize) -> VoltageGrid {
        VoltageGrid::new(0.0, 0.0, 1.0, n, n).unwrap()
    }

    /// A corner CSD with genuinely *bounded* lines: above the shallow
    /// line the current is flat, so the steep edge exists only below it
    /// (as in a real charge-state corner where the lines terminate at the
    /// triple point).
    fn corner_edges() -> EdgeMap {
        let csd = Csd::from_fn(grid(80), |v1, v2| {
            if v2 > 52.0 - 0.25 * v1 {
                4.0 // above the shallow line: flat
            } else if v2 > -4.0 * (v1 - 55.0) {
                4.8 // right of the steep line
            } else {
                6.0 // the (0,0) corner
            }
        })
        .unwrap();
        canny(&csd, CannyParams::default()).unwrap()
    }

    #[test]
    fn finds_both_corner_segments() {
        let segs = extract_segments(&corner_edges(), SegmentParams::default()).unwrap();
        assert!(segs.len() >= 2, "found {} segments", segs.len());
        let steep = segs
            .iter()
            .find(|s| s.slope().map(|m| m < -1.0).unwrap_or(true));
        let shallow = segs
            .iter()
            .find(|s| s.slope().map(|m| (-1.0..0.0).contains(&m)).unwrap_or(false));
        assert!(steep.is_some(), "no steep segment in {segs:?}");
        assert!(shallow.is_some(), "no shallow segment in {segs:?}");
    }

    #[test]
    fn segments_are_bounded_not_infinite() {
        // The steep line terminates at the corner (y ≈ 41 where it meets
        // the shallow line): its segment must not extend to the image top.
        let segs = extract_segments(&corner_edges(), SegmentParams::default()).unwrap();
        let steep = segs
            .iter()
            .find(|s| s.slope().map(|m| m < -1.0).unwrap_or(true))
            .expect("steep segment");
        let top = steep.start.1.max(steep.end.1);
        assert!(top < 48.0, "steep segment reaches y = {top}");
    }

    #[test]
    fn a_gap_splits_segments() {
        // Two collinear horizontal strokes with a 12-pixel hole.
        let csd = Csd::from_fn(grid(60), |v1, v2| {
            let in_stroke = (8.0..24.0).contains(&v1) || (36.0..52.0).contains(&v1);
            if v2 > 30.0 && in_stroke {
                1.0
            } else {
                4.0
            }
        })
        .unwrap();
        let edges = canny(&csd, CannyParams::default()).unwrap();
        let segs = extract_segments(
            &edges,
            SegmentParams {
                max_gap: 5.0,
                min_length: 6.0,
                ..SegmentParams::default()
            },
        )
        .unwrap();
        // At least two horizontal segments, neither spanning the hole.
        let horizontal: Vec<&LineSegment> = segs
            .iter()
            .filter(|s| s.slope().map(|m| m.abs() < 0.1).unwrap_or(false))
            .collect();
        assert!(horizontal.len() >= 2, "{segs:?}");
        for s in horizontal {
            assert!(s.length() < 30.0, "segment spans the gap: {s:?}");
        }
    }

    #[test]
    fn min_length_filters_short_runs() {
        let segs_loose = extract_segments(
            &corner_edges(),
            SegmentParams {
                min_length: 4.0,
                ..SegmentParams::default()
            },
        )
        .unwrap();
        let segs_strict = extract_segments(
            &corner_edges(),
            SegmentParams {
                min_length: 30.0,
                ..SegmentParams::default()
            },
        )
        .unwrap();
        assert!(segs_strict.len() <= segs_loose.len());
        for s in &segs_strict {
            assert!(s.length() >= 30.0);
        }
    }

    #[test]
    fn sorted_longest_first() {
        let segs = extract_segments(&corner_edges(), SegmentParams::default()).unwrap();
        for pair in segs.windows(2) {
            assert!(pair[0].length() >= pair[1].length());
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let e = corner_edges();
        for bad in [
            SegmentParams {
                support_distance: 0.0,
                ..SegmentParams::default()
            },
            SegmentParams {
                max_gap: -1.0,
                ..SegmentParams::default()
            },
            SegmentParams {
                min_length: 0.0,
                ..SegmentParams::default()
            },
        ] {
            assert!(extract_segments(&e, bad).is_err());
        }
    }

    #[test]
    fn segment_helpers() {
        let line = HoughLine {
            rho: 0.0,
            theta: 0.0,
            votes: 5,
        };
        let s = LineSegment {
            start: (0.0, 0.0),
            end: (6.0, 8.0),
            support: 12,
            line,
        };
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), (3.0, 4.0));
        assert!((s.slope().unwrap() - 8.0 / 6.0).abs() < 1e-12);
    }
}
