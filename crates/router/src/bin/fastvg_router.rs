//! The `fastvg-router` fleet front-end binary.
//!
//! ```sh
//! fastvg-serve --addr 127.0.0.1:8001 &
//! fastvg-serve --addr 127.0.0.1:8002 &
//! fastvg-router --addr 127.0.0.1:8740 \
//!     --shard 127.0.0.1:8001 --shard 127.0.0.1:8002
//! curl -s localhost:8740/healthz
//! curl -s -X POST localhost:8740/extract?wait -d '{"benchmark": 6}'
//! ```
//!
//! Flags:
//!
//! * `--shard HOST:PORT[@WEIGHT]` — one daemon behind the router;
//!   repeatable, at least one required. Weight scales the shard's share
//!   of the consistent-hash ring (default 1).
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:8740`; port
//!   `0` picks an ephemeral port, printed on stdout).
//! * `--backend SPEC` — backend spec used for request validation
//!   (default `sim`; must accept the same requests the daemons do).
//! * `--replicas N` — ring vnodes per unit of weight (default 64).
//! * `--workers N` — proxy worker threads (default 8).
//! * `--queue-capacity N` — parked requests before 503 (default 256).
//! * `--retries N` — extra shards tried after a transport failure
//!   (default 1; `0` disables failover).
//! * `--health-interval-ms MS` — `/healthz` poll interval and ejection
//!   backoff unit (default 1000).
//! * `--no-peering` — disable sibling cache reads/seeds.
//! * `--trace-out PATH` — export finished spans as newline-JSON to
//!   `PATH` and trace every proxied request (see
//!   `docs/OBSERVABILITY.md`).
//! * `--trace-seed N` — fixed trace/span id seed for replay tests
//!   (default: entropy).
//! * `--shutdown-after SECS` — stop gracefully after a deadline (CI).

use fastvg_router::{start, RouterConfig, ShardSpec};
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let value = args
        .next()
        .unwrap_or_else(|| panic!("{flag} expects a value"));
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag} got malformed value {value:?}"))
}

fn main() {
    let mut config = RouterConfig::default();
    let mut shutdown_after: Option<u64> = None;

    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_flag(&mut args, "--addr"),
            "--shard" => {
                let spec: String = parse_flag(&mut args, "--shard");
                match ShardSpec::parse(&spec) {
                    Ok(shard) => config.shards.push(shard),
                    Err(message) => {
                        eprintln!("bad --shard: {message}");
                        std::process::exit(2);
                    }
                }
            }
            "--backend" => config.backend = parse_flag(&mut args, "--backend"),
            "--replicas" => config.replicas = parse_flag(&mut args, "--replicas"),
            "--workers" => config.workers = parse_flag(&mut args, "--workers"),
            "--queue-capacity" => config.queue_capacity = parse_flag(&mut args, "--queue-capacity"),
            "--retries" => config.retries = parse_flag(&mut args, "--retries"),
            "--health-interval-ms" => {
                config.health_interval =
                    Duration::from_millis(parse_flag(&mut args, "--health-interval-ms"))
            }
            "--no-peering" => config.peering = false,
            "--trace-out" => {
                config.trace_out = Some(parse_flag::<String>(&mut args, "--trace-out").into())
            }
            "--trace-seed" => config.trace_seed = Some(parse_flag(&mut args, "--trace-seed")),
            "--shutdown-after" => shutdown_after = Some(parse_flag(&mut args, "--shutdown-after")),
            other => {
                eprintln!("unknown flag {other:?} (see the crate docs for the flag list)");
                std::process::exit(2);
            }
        }
    }

    let router = match start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("fastvg-router failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The line scripts grep for; flush so pipes see it immediately.
    println!("fastvg-router listening on http://{}", router.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if let Some(secs) = shutdown_after {
        let handle = router.shutdown_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(secs));
            handle.shutdown();
        });
    }

    // Runs until POST /shutdown, a ShutdownHandle, or --shutdown-after.
    let handle = router.shutdown_handle();
    while !handle.is_shutdown() {
        std::thread::sleep(Duration::from_millis(100));
    }
    router.shutdown();
    router.join();
    println!("fastvg-router stopped");
}
