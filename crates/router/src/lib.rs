//! `fastvg-router` — the fleet front-end for `fastvg-serve`.
//!
//! One router process fronts N independent `fastvg-serve` daemons
//! behind the **unchanged wire protocol**: anything that speaks to a
//! daemon — [`fastvg_serve::Client`], `RemoteExtractor`,
//! `fastvg-loadgen` — can point at a router instead and never know the
//! difference. Behind the listener the router:
//!
//! * places every request on a **weighted consistent-hash ring**
//!   ([`ring`]) keyed by the same canonical-request fingerprint the
//!   daemons cache by, so each key has one *owner* shard and the fleet's
//!   caches partition instead of duplicating;
//! * tracks **per-shard health** ([`health`]): `/healthz` polling plus
//!   in-band failure reporting, ejection after consecutive failures,
//!   exponential-backoff reinstatement, and bounded retries on the next
//!   shard in ring order — with `503` + `retry-after` only when the
//!   whole fleet is out;
//! * **peers caches** ([`proxy`]): on an owner miss it reads sibling
//!   shards' `GET /cache/<fingerprint>` before anyone extracts, seeds
//!   the owner via `PUT /cache/<fingerprint>`, and relays the bytes
//!   with `x-fastvg-cache: peer` — byte-identical to the run that
//!   populated them;
//! * aggregates fleet state at its own `GET /healthz` / `GET /metrics`.
//!
//! The listener reuses the daemon's epoll reactor
//! ([`fastvg_serve::http`]); upstream I/O happens on a worker pool so
//! the reactor thread never blocks. See `docs/FLEET.md` for topology
//! and failure semantics.
//!
//! # In-process quickstart
//!
//! ```
//! use fastvg_router::{start, RouterConfig, ShardSpec};
//! use fastvg_serve::{Client, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two stock daemons…
//! let a = fastvg_serve::start(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })?;
//! let b = fastvg_serve::start(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })?;
//!
//! // …and a router fronting them.
//! let router = start(RouterConfig {
//!     addr: "127.0.0.1:0".into(),
//!     shards: vec![
//!         ShardSpec::new(a.addr().to_string()),
//!         ShardSpec::new(b.addr().to_string()),
//!     ],
//!     ..Default::default()
//! })?;
//!
//! // Clients cannot tell the router from a daemon.
//! let mut client = Client::connect(&router.addr().to_string())?;
//! let response = client.post("/extract?wait", br#"{"benchmark": 6}"#)?;
//! assert_eq!(response.status, 200);
//!
//! router.shutdown();
//! router.join();
//! a.shutdown();
//! b.shutdown();
//! a.join();
//! b.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod proxy;
pub mod ring;

pub use health::{FleetHealth, ShardReport, EJECT_AFTER};
pub use proxy::{wait_healthy, RouterMetrics, RouterService, MAX_SHARDS};
pub use ring::{HashRing, RingMember, DEFAULT_REPLICAS};

use fastvg_obs::FlusherHandle;
use fastvg_serve::http::{Handler, HttpConfig, HttpServer, ShutdownHandle};
use fastvg_serve::ServeError;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One daemon behind the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// Ring weight (relative capacity; default 1).
    pub weight: u32,
}

impl ShardSpec {
    /// A shard with the default weight of 1.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            weight: 1,
        }
    }

    /// Parses `addr` or `addr@weight` (the `--shard` flag syntax).
    ///
    /// # Errors
    ///
    /// Returns a message when the weight is not a positive integer or
    /// the address has no `:` port separator.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (addr, weight) = match spec.rsplit_once('@') {
            None => (spec, 1),
            Some((addr, weight)) => (
                addr,
                weight
                    .parse::<u32>()
                    .map_err(|_| format!("shard weight {weight:?} is not a u32"))?,
            ),
        };
        if !addr.contains(':') {
            return Err(format!("shard {addr:?} is not a host:port address"));
        }
        Ok(Self {
            addr: addr.to_string(),
            weight,
        })
    }
}

/// Router configuration. `Default` is usable for tests except that
/// [`RouterConfig::shards`] must be non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port `0` for ephemeral).
    pub addr: String,
    /// The fleet, in a stable order (the order defines shard indices in
    /// global job ids — keep it consistent across router restarts).
    pub shards: Vec<ShardSpec>,
    /// Backend spec for request validation (must accept the same
    /// requests the daemons do; default `sim`).
    pub backend: String,
    /// Ring vnodes per unit of shard weight.
    pub replicas: usize,
    /// Proxy worker threads (upstream I/O concurrency).
    pub workers: usize,
    /// Parked requests before the router answers `503`.
    pub queue_capacity: usize,
    /// Extra shards tried (in ring order) after a transport failure on
    /// the owner. `0` disables failover.
    pub retries: usize,
    /// Health-probe interval; also the ejection backoff unit.
    pub health_interval: Duration,
    /// Whether to peer sibling caches on owner misses.
    pub peering: bool,
    /// Upstream read deadline per proxied request (sized for `?wait`
    /// extractions, like the client default).
    pub proxy_deadline: Duration,
    /// Upstream TCP connect timeout.
    pub connect_timeout: Duration,
    /// Maximum concurrently open client connections.
    pub max_connections: usize,
    /// Maximum request body bytes (mirrors the daemon bound).
    pub max_body_bytes: usize,
    /// Span export path (newline-JSON). `Some` also traces every
    /// proxied request, not just those carrying `x-fastvg-trace`.
    pub trace_out: Option<PathBuf>,
    /// Fixed trace/span id seed for replay tests (default: entropy).
    pub trace_seed: Option<u64>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8740".into(),
            shards: Vec::new(),
            backend: "sim".into(),
            replicas: DEFAULT_REPLICAS,
            workers: 8,
            queue_capacity: 256,
            retries: 1,
            health_interval: Duration::from_secs(1),
            peering: true,
            proxy_deadline: Duration::from_secs(120),
            connect_timeout: Duration::from_secs(5),
            max_connections: 4096,
            max_body_bytes: 1 << 20,
            trace_out: None,
            trace_seed: None,
        }
    }
}

impl RouterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.addr.is_empty() || !self.addr.contains(':') {
            return Err(format!("addr {:?} is not a host:port address", self.addr));
        }
        if self.shards.is_empty() {
            return Err("at least one --shard is required".into());
        }
        if self.shards.len() > MAX_SHARDS {
            return Err(format!(
                "{} shards exceed the {MAX_SHARDS}-shard job-id budget",
                self.shards.len()
            ));
        }
        if self.shards.iter().all(|s| s.weight == 0) {
            return Err("every shard has weight 0; the ring would be empty".into());
        }
        let mut addrs: Vec<&str> = self.shards.iter().map(|s| s.addr.as_str()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.len() != self.shards.len() {
            return Err("duplicate shard addresses".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.replicas == 0 {
            return Err("replicas must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".into());
        }
        if self.health_interval.is_zero() {
            return Err("health_interval must be positive".into());
        }
        Ok(())
    }
}

/// Errors starting a router.
#[derive(Debug)]
#[non_exhaustive]
pub enum RouterError {
    /// A configuration field was out of range.
    Config(String),
    /// The underlying service failed to start (socket, backend).
    Serve(ServeError),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(message) => write!(f, "invalid RouterConfig: {message}"),
            RouterError::Serve(e) => write!(f, "router startup failed: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Config(_) => None,
            RouterError::Serve(e) => Some(e),
        }
    }
}

/// A running router: the reactor, the worker pool, and the health
/// prober.
#[derive(Debug)]
pub struct RouterHandle {
    service: Arc<RouterService>,
    health: Arc<FleetHealth>,
    server: HttpServer,
    workers: Vec<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    flusher: Option<FlusherHandle>,
}

impl RouterHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The shared service (metrics and health access for tests).
    pub fn service(&self) -> &RouterService {
        &self.service
    }

    /// A clonable handle that stops the router from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.server.shutdown_handle()
    }

    /// Requests a graceful stop: workers drain, the prober exits, the
    /// acceptor closes.
    pub fn shutdown(&self) {
        self.service.stop_workers();
        self.health.stop();
        self.server.shutdown_handle().shutdown();
    }

    /// Waits for every thread to exit. Call [`RouterHandle::shutdown`]
    /// first (or let `POST /shutdown` do it).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.server.join();
        // Dropped last so spans minted during the drain still land in
        // the export file.
        drop(self.flusher.take());
    }
}

/// Boots a router over `config`'s fleet.
///
/// # Errors
///
/// Returns [`RouterError::Config`] for invalid configuration and
/// [`RouterError::Serve`] when the socket cannot be bound or the
/// backend spec does not resolve.
pub fn start(config: RouterConfig) -> Result<RouterHandle, RouterError> {
    config.validate().map_err(RouterError::Config)?;

    let ring = HashRing::with_replicas(
        config
            .shards
            .iter()
            .map(|s| RingMember::weighted(s.addr.clone(), s.weight))
            .collect(),
        config.replicas,
    );
    let health = Arc::new(FleetHealth::new(
        &config
            .shards
            .iter()
            .map(|s| s.addr.clone())
            .collect::<Vec<_>>(),
        config.health_interval,
        fastvg_serve::ClientConfig::new().connect_timeout(config.connect_timeout),
    ));
    let service = Arc::new(
        RouterService::new(&config, ring, Arc::clone(&health)).map_err(RouterError::Serve)?,
    );

    let http = HttpConfig {
        max_connections: config.max_connections,
        max_body_bytes: config.max_body_bytes,
        ..HttpConfig::default()
    };
    let server = HttpServer::bind(&config.addr, Arc::clone(&service) as Arc<dyn Handler>, http)
        .map_err(|e| RouterError::Serve(ServeError::from(e)))?;
    let _ = service.shutdown.set(server.shutdown_handle());
    let _ = service.server_stats.set(server.stats());

    let workers = (0..config.workers)
        .map(|index| {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name(format!("fastvg-router-worker-{index}"))
                .spawn(move || service.work())
                .expect("spawn proxy worker")
        })
        .collect();
    let prober = health::spawn_prober(Arc::clone(&health));
    let flusher = config
        .trace_out
        .is_some()
        .then(|| service.tracer().spawn_flusher(Duration::from_millis(50)));

    Ok(RouterHandle {
        service,
        health,
        server,
        workers,
        prober: Some(prober),
        flusher,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_specs_parse_addr_and_weight() {
        assert_eq!(
            ShardSpec::parse("127.0.0.1:8001").unwrap(),
            ShardSpec::new("127.0.0.1:8001")
        );
        assert_eq!(
            ShardSpec::parse("10.0.0.2:8001@3").unwrap(),
            ShardSpec {
                addr: "10.0.0.2:8001".into(),
                weight: 3
            }
        );
        assert!(ShardSpec::parse("noport").is_err());
        assert!(ShardSpec::parse("h:1@x").is_err());
    }

    #[test]
    fn config_validation_catches_hostile_fleets() {
        let ok = RouterConfig {
            shards: vec![ShardSpec::new("127.0.0.1:1")],
            ..Default::default()
        };
        assert!(ok.validate().is_ok());

        assert!(RouterConfig::default().validate().is_err(), "no shards");
        let dup = RouterConfig {
            shards: vec![ShardSpec::new("a:1"), ShardSpec::new("a:1")],
            ..Default::default()
        };
        assert!(dup.validate().is_err());
        let zero = RouterConfig {
            shards: vec![ShardSpec {
                addr: "a:1".into(),
                weight: 0,
            }],
            ..Default::default()
        };
        assert!(zero.validate().is_err());
        let many = RouterConfig {
            shards: (0..=MAX_SHARDS)
                .map(|i| ShardSpec::new(format!("h:{i}")))
                .collect(),
            ..Default::default()
        };
        assert!(many.validate().is_err());
    }
}
