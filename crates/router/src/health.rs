//! Per-shard health tracking: `/healthz` polling, ejection after
//! consecutive failures, and exponential-backoff reinstatement probes.
//!
//! The router never *blocks* a request on a health check. A background
//! thread polls each shard's `GET /healthz` on a fixed interval; proxy
//! traffic feeds the same state through
//! [`FleetHealth::report_failure`] / [`FleetHealth::report_success`], so
//! a dying shard is ejected by the very requests it is failing, not only
//! at the next poll tick. An ejected shard is re-probed on an
//! exponential schedule (`interval × 2^(strikes−1)`, capped) and a
//! single successful probe reinstates it — the cheap half of the
//! circuit-breaker pattern, which is all a fleet of identical
//! stateless-protocol daemons needs.

use fastvg_serve::ClientConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Consecutive failures before a shard is ejected from routing.
pub const EJECT_AFTER: u32 = 3;

/// Cap on the reinstatement-probe backoff multiplier (2^5 = 32×).
const MAX_BACKOFF_SHIFT: u32 = 5;

/// Mutable per-shard state, guarded by one mutex per shard.
#[derive(Debug)]
struct ShardState {
    /// Consecutive failures; `>= EJECT_AFTER` means ejected.
    strikes: u32,
    /// When an ejected shard may next be probed.
    retry_at: Instant,
    /// Total transitions into the ejected state (monotonic).
    ejections: u64,
    /// Last `/healthz` round-trip, for the aggregate report.
    last_probe: Option<Duration>,
}

/// One shard as the health layer sees it.
#[derive(Debug)]
pub struct Shard {
    /// Daemon address, e.g. `127.0.0.1:8001`.
    pub addr: String,
    state: Mutex<ShardState>,
}

/// A point-in-time view of one shard, for `/healthz` aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Daemon address.
    pub addr: String,
    /// Whether the shard currently receives traffic.
    pub healthy: bool,
    /// Consecutive failures so far.
    pub strikes: u32,
    /// Times the shard has been ejected since the router started.
    pub ejections: u64,
    /// Last health-probe round-trip in microseconds, if probed.
    pub probe_us: Option<u64>,
}

/// Health state for the whole fleet plus the probe thread's config.
#[derive(Debug)]
pub struct FleetHealth {
    shards: Vec<Shard>,
    /// Base probe interval; also the unit of the ejection backoff.
    interval: Duration,
    client: ClientConfig,
    stop: AtomicBool,
}

impl FleetHealth {
    /// Tracks `addrs`, all initially healthy.
    pub fn new(addrs: &[String], interval: Duration, client: ClientConfig) -> Self {
        let now = Instant::now();
        Self {
            shards: addrs
                .iter()
                .map(|addr| Shard {
                    addr: addr.clone(),
                    state: Mutex::new(ShardState {
                        strikes: 0,
                        retry_at: now,
                        ejections: 0,
                        last_probe: None,
                    }),
                })
                .collect(),
            interval,
            client,
            stop: AtomicBool::new(false),
        }
    }

    fn state(&self, index: usize) -> std::sync::MutexGuard<'_, ShardState> {
        self.shards[index].state.lock().expect("health poisoned")
    }

    fn index_of(&self, addr: &str) -> Option<usize> {
        self.shards.iter().position(|s| s.addr == addr)
    }

    /// Whether `addr` currently receives traffic.
    pub fn is_healthy(&self, addr: &str) -> bool {
        self.index_of(addr)
            .is_some_and(|i| self.state(i).strikes < EJECT_AFTER)
    }

    /// Records a failed request or probe against `addr`. On the strike
    /// that ejects the shard, schedules the first reinstatement probe
    /// one interval out; each further failure doubles the wait (capped).
    pub fn report_failure(&self, addr: &str) {
        let Some(index) = self.index_of(addr) else {
            return;
        };
        let mut state = self.state(index);
        let was_healthy = state.strikes < EJECT_AFTER;
        state.strikes = state.strikes.saturating_add(1);
        if was_healthy && state.strikes >= EJECT_AFTER {
            state.ejections += 1;
        }
        if state.strikes >= EJECT_AFTER {
            let shift = (state.strikes - EJECT_AFTER).min(MAX_BACKOFF_SHIFT);
            state.retry_at = Instant::now() + self.interval * (1 << shift);
        }
    }

    /// Records a successful request or probe: one success fully
    /// reinstates the shard.
    pub fn report_success(&self, addr: &str) {
        if let Some(index) = self.index_of(addr) {
            self.state(index).strikes = 0;
        }
    }

    /// How long until the soonest ejected shard is probed again —
    /// the router's `retry-after` hint when the whole fleet is out.
    pub fn retry_after_hint(&self) -> Duration {
        let now = Instant::now();
        (0..self.shards.len())
            .map(|i| self.state(i).retry_at.saturating_duration_since(now))
            .min()
            .unwrap_or(self.interval)
            .max(Duration::from_secs(1))
    }

    /// Point-in-time reports for every shard, in configuration order.
    pub fn reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let state = self.state(i);
                ShardReport {
                    addr: shard.addr.clone(),
                    healthy: state.strikes < EJECT_AFTER,
                    strikes: state.strikes,
                    ejections: state.ejections,
                    probe_us: state.last_probe.map(|d| d.as_micros() as u64),
                }
            })
            .collect()
    }

    /// Number of shards currently receiving traffic.
    pub fn healthy_count(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| self.state(i).strikes < EJECT_AFTER)
            .count()
    }

    /// One poll sweep: probes every healthy shard, and ejected shards
    /// whose backoff has elapsed. Called by [`spawn_prober`]; public so
    /// tests can drive the clock themselves.
    pub fn probe_once(&self) {
        for shard in &self.shards {
            {
                let state = self.shards[self.index_of(&shard.addr).unwrap()]
                    .state
                    .lock()
                    .expect("health poisoned");
                if state.strikes >= EJECT_AFTER && Instant::now() < state.retry_at {
                    continue; // still backing off
                }
            }
            let started = Instant::now();
            let healthy = self.probe(&shard.addr);
            let elapsed = started.elapsed();
            if let Some(index) = self.index_of(&shard.addr) {
                self.state(index).last_probe = Some(elapsed);
            }
            if healthy {
                self.report_success(&shard.addr);
            } else {
                self.report_failure(&shard.addr);
            }
        }
    }

    /// One `GET /healthz` round trip; any transport error or non-200 is
    /// unhealthy.
    fn probe(&self, addr: &str) -> bool {
        let Ok(mut client) = self.client.connect(addr) else {
            return false;
        };
        matches!(client.get("/healthz"), Ok(response) if response.status == 200)
    }

    /// Asks the probe thread to exit at its next tick.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Starts the background probe loop; returns its join handle. The loop
/// sleeps in short slices so [`FleetHealth::stop`] is honored promptly.
pub fn spawn_prober(health: Arc<FleetHealth>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("fastvg-router-health".into())
        .spawn(move || {
            while !health.stop.load(Ordering::Acquire) {
                health.probe_once();
                let mut slept = Duration::ZERO;
                while slept < health.interval && !health.stop.load(Ordering::Acquire) {
                    let slice = Duration::from_millis(25).min(health.interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
        .expect("spawn health prober")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(addrs: &[&str]) -> FleetHealth {
        FleetHealth::new(
            &addrs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            Duration::from_millis(50),
            ClientConfig::new(),
        )
    }

    #[test]
    fn strikes_eject_and_success_reinstates() {
        let h = fleet(&["a:1", "b:2"]);
        assert!(h.is_healthy("a:1"));
        for _ in 0..EJECT_AFTER - 1 {
            h.report_failure("a:1");
            assert!(h.is_healthy("a:1"), "below the ejection threshold");
        }
        h.report_failure("a:1");
        assert!(!h.is_healthy("a:1"));
        assert!(h.is_healthy("b:2"), "ejection is per shard");
        assert_eq!(h.healthy_count(), 1);
        h.report_success("a:1");
        assert!(h.is_healthy("a:1"), "one success reinstates");
        assert_eq!(h.reports()[0].ejections, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let h = fleet(&["a:1"]);
        for _ in 0..EJECT_AFTER {
            h.report_failure("a:1");
        }
        let first = h.state(0).retry_at;
        for _ in 0..20 {
            h.report_failure("a:1"); // far past the cap
        }
        let capped = h.state(0).retry_at;
        let max = Duration::from_millis(50) * (1 << MAX_BACKOFF_SHIFT);
        assert!(capped > first);
        assert!(
            capped.saturating_duration_since(Instant::now()) <= max + Duration::from_millis(5),
            "backoff must cap at {max:?}"
        );
        assert!(h.retry_after_hint() >= Duration::from_secs(1));
    }

    #[test]
    fn unknown_addresses_are_ignored() {
        let h = fleet(&["a:1"]);
        h.report_failure("nope:9");
        h.report_success("nope:9");
        assert!(!h.is_healthy("nope:9"));
        assert!(h.is_healthy("a:1"));
    }

    #[test]
    fn probe_marks_unreachable_shards_down() {
        // Nothing listens on this address; three sweeps must eject it.
        let h = fleet(&["127.0.0.1:1"]);
        for _ in 0..EJECT_AFTER {
            h.probe_once();
        }
        assert!(!h.is_healthy("127.0.0.1:1"));
        let report = &h.reports()[0];
        assert!(!report.healthy);
        assert!(report.probe_us.is_some());
    }
}
