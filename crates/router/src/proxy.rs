//! The proxy service: the [`Handler`] behind the router's listener, its
//! worker pool, and the fleet-level metrics.
//!
//! The reactor thread never does upstream I/O. Every proxied request is
//! pushed onto a bounded work queue and answered through the deferred
//! [`Completer`] by one of the worker threads, with the reactor's timer
//! wheel firing a `503` fallback if a worker wedges past the deadline —
//! the same never-block-the-reactor contract `fastvg-serve` itself
//! follows for `?wait` extractions.
//!
//! # Where peering lives, and why it is router-driven
//!
//! On a local cache miss the *router* — not the daemon — asks sibling
//! shards for the entry (`GET /cache/<fp>`), seeds the owner
//! (`PUT /cache/<fp>`), and relays the sibling's bytes with
//! `x-fastvg-cache: peer`. The alternative (daemons gossiping among
//! themselves) was rejected deliberately: daemons would need the fleet
//! topology pushed into every process and kept in sync, each would grow
//! its own sibling health view (an N² probe mesh), and a daemon blocked
//! on a slow sibling would burn an extraction worker. Router-driven
//! peering keeps daemons entirely fleet-unaware — a shard is just a
//! stock `fastvg-serve` — and puts the policy next to the ring, which
//! already knows who owns what and who is healthy. The price is one
//! extra hop on the miss path, paid only when peering can still win
//! (before extraction, never after).

use crate::health::FleetHealth;
use crate::ring::HashRing;
use crate::RouterConfig;
use fastvg_obs::{ActiveSpan, SpanId, TraceId, Tracer};
use fastvg_serve::http::{deferred, Completer, Handler, Outcome, Request, Response, ServerStats};
use fastvg_serve::metrics::{family, render_build_info, Counter, Gauge, Histogram};
use fastvg_serve::{Client, ClientConfig, ClientResponse, ExtractParser, RequestError};
use fastvg_wire::{Json, TraceContext, TRACE_HEADER};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum shards a router may front: global job ids reserve the low
/// byte for the shard index (`gid = local << 8 | shard`).
pub const MAX_SHARDS: usize = 256;

/// Fleet-level telemetry, rendered at `GET /metrics` alongside the
/// aggregated per-shard health.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Proxied `/extract` requests.
    pub requests_extract: Counter,
    /// Proxied `/jobs/<id>` polls.
    pub requests_jobs: Counter,
    /// `GET /healthz` hits (answered locally).
    pub requests_healthz: Counter,
    /// `GET /metrics` hits (answered locally).
    pub requests_metrics: Counter,
    /// Responses relayed with `x-fastvg-cache: hit` (owner cache).
    pub routed_hits: Counter,
    /// Responses relayed with `x-fastvg-cache: miss` (owner computed).
    pub routed_misses: Counter,
    /// Responses relayed with `x-fastvg-cache: peer` (sibling cache).
    pub peer_hits: Counter,
    /// Peer sweeps that found the entry on no sibling.
    pub peer_misses: Counter,
    /// Successful `PUT /cache` seeds planted on owners.
    pub peer_seeds: Counter,
    /// Requests retried on a different shard after a transport failure.
    pub upstream_retries: Counter,
    /// Requests answered `503` because every shard was ejected.
    pub fleet_unavailable: Counter,
    /// Router-origin 4xx responses (validation, bad job ids).
    pub http_4xx: Counter,
    /// Router-origin 5xx responses (unavailable fleet, worker overflow).
    pub http_5xx: Counter,
    /// Depth of the proxy work queue.
    pub queue_depth: Gauge,
    /// End-to-end proxy latency (enqueue → relay).
    pub proxy_latency: Histogram,
}

impl RouterMetrics {
    /// Prometheus-style rendering, same conventions as the daemon's
    /// `Metrics::render` (counters suffixed `_total`, labels for
    /// enumerable outcomes, one `# HELP`/`# TYPE` preamble per family).
    pub fn render(&self) -> String {
        let mut out = String::new();
        family(
            &mut out,
            "fastvg_router_requests_total",
            "counter",
            "Requests accepted by the router, by route.",
        );
        for (route, count) in [
            ("extract", self.requests_extract.get()),
            ("jobs", self.requests_jobs.get()),
            ("healthz", self.requests_healthz.get()),
            ("metrics", self.requests_metrics.get()),
        ] {
            out.push_str(&format!(
                "fastvg_router_requests_total{{route=\"{route}\"}} {count}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_router_routed_total",
            "counter",
            "Responses relayed to clients, by cache disposition.",
        );
        for (outcome, count) in [
            ("hit", self.routed_hits.get()),
            ("miss", self.routed_misses.get()),
            ("peer", self.peer_hits.get()),
        ] {
            out.push_str(&format!(
                "fastvg_router_routed_total{{cache=\"{outcome}\"}} {count}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_router_peer_requests_total",
            "counter",
            "Cache-peering sweeps, by outcome.",
        );
        out.push_str(&format!(
            "fastvg_router_peer_requests_total{{outcome=\"peer_hit\"}} {}\n",
            self.peer_hits.get()
        ));
        out.push_str(&format!(
            "fastvg_router_peer_requests_total{{outcome=\"peer_miss\"}} {}\n",
            self.peer_misses.get()
        ));
        family(
            &mut out,
            "fastvg_router_peer_seeds_total",
            "counter",
            "Successful PUT /cache seeds planted on owner shards.",
        );
        out.push_str(&format!(
            "fastvg_router_peer_seeds_total {}\n",
            self.peer_seeds.get()
        ));
        family(
            &mut out,
            "fastvg_router_upstream_retries_total",
            "counter",
            "Requests retried on another shard after a transport failure.",
        );
        out.push_str(&format!(
            "fastvg_router_upstream_retries_total {}\n",
            self.upstream_retries.get()
        ));
        family(
            &mut out,
            "fastvg_router_fleet_unavailable_total",
            "counter",
            "Requests answered 503 because every shard was out.",
        );
        out.push_str(&format!(
            "fastvg_router_fleet_unavailable_total {}\n",
            self.fleet_unavailable.get()
        ));
        family(
            &mut out,
            "fastvg_router_http_responses_total",
            "counter",
            "Router-origin error responses, by status class.",
        );
        out.push_str(&format!(
            "fastvg_router_http_responses_total{{class=\"4xx\"}} {}\n",
            self.http_4xx.get()
        ));
        out.push_str(&format!(
            "fastvg_router_http_responses_total{{class=\"5xx\"}} {}\n",
            self.http_5xx.get()
        ));
        family(
            &mut out,
            "fastvg_router_queue_depth",
            "gauge",
            "Depth of the proxy work queue.",
        );
        out.push_str(&format!(
            "fastvg_router_queue_depth {}\n",
            self.queue_depth.get()
        ));
        family(
            &mut out,
            "fastvg_router_proxy_latency_seconds",
            "histogram",
            "End-to-end proxy latency, enqueue to relay.",
        );
        self.proxy_latency
            .render("fastvg_router_proxy_latency_seconds", "", &mut out);
        out
    }
}

/// Per-shard cache-peering counters, indexed like
/// `RouterService::shards` and rendered with a `shard="<addr>"` label.
#[derive(Debug, Default)]
struct PeerShardCounters {
    /// Peer hits relayed *from* this shard's cache.
    hits: Counter,
    /// Seeds planted *on* this shard as the key's owner.
    seeds: Counter,
    /// Sweeps for keys this shard owns that found no sibling entry.
    sweep_misses: Counter,
}

/// One parked request: what came in, where to answer, and when it
/// entered the queue (for the latency histogram).
struct ProxyJob {
    request: Request,
    completer: Completer,
    enqueued: Instant,
}

/// The bounded hand-off between the reactor and the proxy workers.
#[derive(Default)]
struct WorkQueue {
    jobs: Mutex<VecDeque<ProxyJob>>,
    available: Condvar,
    stopped: Mutex<bool>,
}

impl WorkQueue {
    /// Enqueues unless the queue is at `capacity`; full means the fleet
    /// is slower than the offered load — the job (and its completer) is
    /// dropped and the caller answers `503` inline.
    fn push(&self, job: ProxyJob, capacity: usize) -> Option<usize> {
        let mut jobs = self.jobs.lock().expect("work queue poisoned");
        if jobs.len() >= capacity {
            return None;
        }
        jobs.push_back(job);
        let depth = jobs.len();
        drop(jobs);
        self.available.notify_one();
        Some(depth)
    }

    /// Blocks until a job arrives or the queue is stopped.
    fn pop(&self) -> Option<ProxyJob> {
        let mut jobs = self.jobs.lock().expect("work queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if *self.stopped.lock().expect("stop flag poisoned") {
                return None;
            }
            jobs = self.available.wait(jobs).expect("work queue poisoned");
        }
    }

    fn stop(&self) {
        *self.stopped.lock().expect("stop flag poisoned") = true;
        self.available.notify_all();
    }
}

/// The router's request handler plus everything the workers need.
pub struct RouterService {
    parser: ExtractParser,
    ring: HashRing,
    health: Arc<FleetHealth>,
    shards: Vec<String>,
    peering: bool,
    retries: usize,
    queue_capacity: usize,
    proxy_deadline: Duration,
    client: ClientConfig,
    metrics: RouterMetrics,
    peer_shards: Vec<PeerShardCounters>,
    tracer: Arc<Tracer>,
    trace_all: bool,
    queue: Arc<WorkQueue>,
    started: Instant,
    pub(crate) server_stats: OnceLock<Arc<ServerStats>>,
    pub(crate) shutdown: OnceLock<fastvg_serve::ShutdownHandle>,
}

impl std::fmt::Debug for RouterService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterService").finish_non_exhaustive()
    }
}

/// The global job id visible to clients: the shard's local id shifted
/// over the shard index, so `GET /jobs/<gid>` routes back to the daemon
/// that owns the job without any router-side job table.
fn encode_job(local: u64, shard: usize) -> u64 {
    (local << 8) | shard as u64
}

/// Splits a global job id back into `(local, shard)`.
fn decode_job(gid: u64) -> (u64, usize) {
    (gid >> 8, (gid & 0xff) as usize)
}

/// The daemon's error-document shape, reproduced so router-origin
/// errors are indistinguishable from daemon-origin ones on the wire.
fn error_doc(status: u16, message: &str) -> Response {
    let mut body = Json::object()
        .field("ok", false)
        .field(
            "error",
            Json::object()
                .field("category", "request")
                .field("message", message)
                .field("chain", Vec::<Json>::new())
                .build(),
        )
        .build()
        .dump();
    body.push('\n');
    Response::json(status, body)
}

impl RouterService {
    /// Builds the service (no sockets, no threads — [`crate::start`]
    /// wires those).
    pub(crate) fn new(
        config: &RouterConfig,
        ring: HashRing,
        health: Arc<FleetHealth>,
    ) -> Result<Self, fastvg_serve::ServeError> {
        let tracer = Tracer::new(
            "router",
            config
                .trace_seed
                .unwrap_or_else(|| fastvg_obs::IdGen::from_entropy().next_id()),
        );
        if let Some(path) = &config.trace_out {
            tracer.set_file(path)?;
        }
        Ok(Self {
            parser: ExtractParser::new(&config.backend)?,
            ring,
            health,
            shards: config.shards.iter().map(|s| s.addr.clone()).collect(),
            peering: config.peering,
            retries: config.retries,
            queue_capacity: config.queue_capacity,
            proxy_deadline: config.proxy_deadline,
            client: ClientConfig::new()
                .connect_timeout(config.connect_timeout)
                .read_timeout(config.proxy_deadline),
            metrics: RouterMetrics::default(),
            peer_shards: config
                .shards
                .iter()
                .map(|_| PeerShardCounters::default())
                .collect(),
            tracer,
            trace_all: config.trace_out.is_some(),
            queue: Arc::new(WorkQueue::default()),
            started: Instant::now(),
            server_stats: OnceLock::new(),
            shutdown: OnceLock::new(),
        })
    }

    /// The fleet telemetry.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// The router's span tracer (layer `router`).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The per-shard health view.
    pub fn health(&self) -> &FleetHealth {
        &self.health
    }

    fn error_response(&self, status: u16, message: &str) -> Response {
        if status >= 500 {
            self.metrics.http_5xx.inc();
        } else {
            self.metrics.http_4xx.inc();
        }
        error_doc(status, message)
    }

    /// `503` with the health layer's reinstatement hint when no shard
    /// can take traffic.
    fn unavailable(&self) -> Response {
        self.metrics.fleet_unavailable.inc();
        self.error_response(503, "no healthy shard available")
            .with_header(
                "retry-after",
                self.health.retry_after_hint().as_secs().max(1).to_string(),
            )
    }

    /// One worker iteration. Public to the crate so [`crate::start`]'s
    /// worker threads can drive it; loops until the queue stops.
    pub(crate) fn work(&self) {
        while let Some(job) = self.queue.pop() {
            let response = self.process(&job.request, job.enqueued);
            self.metrics.proxy_latency.observe(job.enqueued.elapsed());
            self.metrics.queue_depth.set(
                self.queue
                    .jobs
                    .lock()
                    .map(|jobs| jobs.len() as u64)
                    .unwrap_or(0),
            );
            job.completer.complete(response);
        }
    }

    pub(crate) fn stop_workers(&self) {
        self.queue.stop();
    }

    /// Routes one dequeued request on a worker thread.
    fn process(&self, request: &Request, enqueued: Instant) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/extract") => self.proxy_extract(request, enqueued),
            (_, path) => match path.strip_prefix("/jobs/") {
                Some(id) => self.proxy_job(id),
                None => self.error_response(404, "no such route"),
            },
        }
    }

    /// Starts the router-hop `request` span: a child of the incoming
    /// `x-fastvg-trace` context, a fresh root under `--trace-out`, or
    /// none at all (no header and no export file). The span is backdated
    /// past the worker-queue wait (and the socket read, which the
    /// reactor measured into [`Request::read_us`]), and the queue wait
    /// gets its own child so waterfalls show reactor → worker hand-off.
    fn request_span(&self, request: &Request, enqueued: Instant) -> Option<ActiveSpan> {
        let incoming = request.header(TRACE_HEADER).and_then(TraceContext::parse);
        if incoming.is_none() && !self.trace_all {
            return None;
        }
        let mut span = match incoming {
            Some(ctx) => self
                .tracer
                .start(TraceId(ctx.trace), Some(SpanId(ctx.span)), "request"),
            None => self.tracer.root("request"),
        };
        span.backdate(enqueued - Duration::from_micros(request.read_us));
        self.emit_child(Some(&span), "queue_wait", enqueued, Vec::new());
        Some(span)
    }

    /// Emits a child of `span` that started at `started` and ends now.
    fn emit_child(
        &self,
        span: Option<&ActiveSpan>,
        name: &'static str,
        started: Instant,
        attrs: Vec<(&'static str, String)>,
    ) {
        let Some(span) = span else { return };
        let ctx = span.context();
        let dur_us = started.elapsed().as_micros() as u64;
        self.tracer.emit(
            ctx.trace,
            Some(ctx.span),
            name,
            fastvg_obs::unix_us().saturating_sub(dur_us),
            dur_us,
            attrs,
        );
    }

    /// The `/extract` path: the span wrapper around
    /// [`RouterService::route_extract`], which does the actual routing.
    fn proxy_extract(&self, request: &Request, enqueued: Instant) -> Response {
        let mut span = self.request_span(request, enqueued);
        let (response, outcome) = self.route_extract(request, span.as_ref());
        if let Some(span) = &mut span {
            span.attr("outcome", outcome);
        }
        response
    }

    /// Validate exactly like a daemon, place on the ring, peer-read
    /// caches for `?wait` requests, proxy with bounded retries across
    /// healthy shards. Returns the response plus the outcome tag the
    /// request span records.
    fn route_extract(
        &self,
        request: &Request,
        span: Option<&ActiveSpan>,
    ) -> (Response, &'static str) {
        let (job, wait) = match self.parser.parse(request) {
            Ok(parsed) => parsed,
            Err(RequestError { status, message }) => {
                return (self.error_response(status, &message), "rejected")
            }
        };
        // Every distinct shard in ring order from the owner; the retry
        // budget caps how far the walk may fall back.
        let candidates: Vec<(usize, &str)> = self
            .ring
            .candidates(job.fingerprint, self.retries + 1)
            .into_iter()
            .filter_map(|member| {
                self.shard_index(&member.label)
                    .map(|index| (index, member.label.as_str()))
            })
            .filter(|(_, addr)| self.health.is_healthy(addr))
            .collect();
        let Some(&(owner_index, owner)) = candidates.first() else {
            return (self.unavailable(), "unavailable");
        };

        if wait && self.peering {
            // Owner first: its own cache answers without extraction.
            let probe_started = Instant::now();
            let probed = self.cache_probe(owner, &job.canonical, job.fingerprint);
            self.emit_child(
                span,
                "peer_probe",
                probe_started,
                vec![
                    ("shard", owner.to_string()),
                    ("hit", probed.is_some().to_string()),
                ],
            );
            if let Some(response) = probed {
                self.metrics.routed_hits.inc();
                return (self.relay(response, owner_index, None), "cache_hit");
            }
            // Sibling sweep, warmest-first is unknowable so ring order:
            // every healthy shard, not just the retry candidates —
            // peering is a read, it costs nothing to ask.
            let mut found = None;
            for (index, addr) in self.healthy_shards() {
                if addr == owner {
                    continue;
                }
                let probe_started = Instant::now();
                let probed = self.cache_probe(&addr, &job.canonical, job.fingerprint);
                self.emit_child(
                    span,
                    "peer_probe",
                    probe_started,
                    vec![
                        ("shard", addr.clone()),
                        ("hit", probed.is_some().to_string()),
                    ],
                );
                if let Some(response) = probed {
                    found = Some((index, addr, response));
                    break;
                }
            }
            match found {
                Some((index, addr, response)) => {
                    self.metrics.peer_hits.inc();
                    self.peer_shards[index].hits.inc();
                    let seed_started = Instant::now();
                    let seeded = self.seed_owner(owner, job.fingerprint, &job.canonical, &response);
                    if seeded {
                        self.peer_shards[owner_index].seeds.inc();
                    }
                    self.emit_child(
                        span,
                        "peer_seed",
                        seed_started,
                        vec![
                            ("shard", owner.to_string()),
                            ("from", addr),
                            ("ok", seeded.to_string()),
                        ],
                    );
                    return (self.relay(response, index, Some("peer")), "peer_hit");
                }
                None => {
                    self.metrics.peer_misses.inc();
                    self.peer_shards[owner_index].sweep_misses.inc();
                }
            }
        }

        // Extraction (or a non-wait submit): owner, then fall back
        // through the remaining candidates on transport failure only —
        // an HTTP error status is a daemon *answer* and is relayed.
        let mut target = format!("/{}", request.path.trim_start_matches('/'));
        if !request.query.is_empty() {
            target.push('?');
            target.push_str(&request.query);
        }
        for (attempt, &(index, addr)) in candidates.iter().enumerate() {
            if attempt > 0 {
                self.metrics.upstream_retries.inc();
            }
            // One span per attempt (retries included); the daemon
            // parents its own spans under *this* id, so the hop nests
            // inside the attempt that actually reached it.
            let mut attempt_span = span.map(|parent| {
                let ctx = parent.context();
                let mut s = self
                    .tracer
                    .start(ctx.trace, Some(ctx.span), "proxy_attempt");
                s.attr("shard", addr);
                s.attr("attempt", attempt.to_string());
                s
            });
            let forwarded = attempt_span.as_ref().map(|s| {
                let ctx = s.context();
                TraceContext {
                    trace: ctx.trace.0,
                    span: ctx.span.0,
                }
                .encode()
            });
            let sent = self
                .client
                .connect(addr)
                .and_then(|mut client| match &forwarded {
                    Some(value) => client.send_with_headers(
                        "POST",
                        &target,
                        &request.body,
                        &[(TRACE_HEADER, value)],
                    ),
                    None => client.post(&target, &request.body),
                });
            match sent {
                Ok(response) => {
                    if let Some(s) = &mut attempt_span {
                        s.attr("ok", "true");
                    }
                    self.health.report_success(addr);
                    match response.header("x-fastvg-cache") {
                        Some("hit") => self.metrics.routed_hits.inc(),
                        _ => self.metrics.routed_misses.inc(),
                    }
                    return (self.relay(response, index, None), "relayed");
                }
                Err(_) => {
                    if let Some(s) = &mut attempt_span {
                        s.attr("ok", "false");
                    }
                    self.health.report_failure(addr);
                }
            }
        }
        (self.unavailable(), "unavailable")
    }

    /// `GET /jobs/<gid>`: decode the shard from the global id and poll
    /// the daemon that owns the job. Job state is shard-local, so there
    /// is no alternate shard to retry on.
    fn proxy_job(&self, gid_text: &str) -> Response {
        let Ok(gid) = gid_text.parse::<u64>() else {
            return self.error_response(400, "job id must be an integer");
        };
        let (local, shard) = decode_job(gid);
        let Some(addr) = self.shards.get(shard).cloned() else {
            return self.error_response(404, "unknown job id");
        };
        let sent = self
            .client
            .connect(&addr)
            .and_then(|mut client| client.get(&format!("/jobs/{local}")));
        match sent {
            Ok(response) => {
                self.health.report_success(&addr);
                self.relay(response, shard, None)
            }
            Err(_) => {
                self.health.report_failure(&addr);
                self.unavailable()
            }
        }
    }

    /// `GET /cache/<fp>` against one shard with the canonical key as the
    /// body (the collision-checked form). `Some` only on a definite hit.
    fn cache_probe(&self, addr: &str, canonical: &str, fp: u64) -> Option<ClientResponse> {
        let mut client = match self.client.connect(addr) {
            Ok(client) => client,
            Err(_) => {
                self.health.report_failure(addr);
                return None;
            }
        };
        match client.send("GET", &format!("/cache/{fp}"), canonical.as_bytes()) {
            Ok(response) if response.status == 200 => {
                self.health.report_success(addr);
                Some(response)
            }
            Ok(_) => {
                self.health.report_success(addr);
                None
            }
            Err(_) => {
                self.health.report_failure(addr);
                None
            }
        }
    }

    /// Best-effort `PUT /cache/<fp>` planting a sibling's entry on the
    /// owner so the next request for this key hits locally. Failures are
    /// ignored: the client still gets its answer either way. Returns
    /// whether the seed landed (per-shard counters key off it).
    fn seed_owner(&self, owner: &str, fp: u64, canonical: &str, from: &ClientResponse) -> bool {
        let Ok(body) = std::str::from_utf8(&from.body) else {
            return false;
        };
        let seed = Json::object()
            .field("key", canonical)
            .field("ok", from.header("x-fastvg-status") == Some("done"))
            .field("body", body)
            .build()
            .dump();
        let seeded = self
            .client
            .connect(owner)
            .and_then(|mut client| client.put(&format!("/cache/{fp}"), seed.as_bytes()));
        let landed = matches!(seeded, Ok(response) if response.status == 200);
        if landed {
            self.metrics.peer_seeds.inc();
        }
        landed
    }

    /// Turns an upstream response into the client-facing one: global job
    /// ids in the header *and* in `202 {"job": …}` bodies, and an
    /// optional `x-fastvg-cache` override for peered answers. Everything
    /// else is relayed byte-for-byte — cache hits stay byte-identical
    /// through the router.
    fn relay(&self, upstream: ClientResponse, shard: usize, cache: Option<&str>) -> Response {
        let mut body = upstream.body.clone();
        let job_gid = upstream
            .header("x-fastvg-job")
            .and_then(|v| v.parse::<u64>().ok())
            .map(|local| encode_job(local, shard));
        if let Some(gid) = job_gid {
            // `202`/poll bodies carry the id as a "job" member; finished
            // bodies are the result document and carry no id, which is
            // what keeps them byte-identical across shards.
            if let Ok(doc) = Json::parse(String::from_utf8_lossy(&upstream.body).trim_end()) {
                if doc.get("job").is_some() {
                    if let Some(rewritten) = rewrite_job_field(&doc, gid) {
                        body = rewritten.into_bytes();
                    }
                }
            }
        }
        let mut response = Response::json(upstream.status, body);
        for (name, value) in &upstream.headers {
            let name = name.as_str();
            if name == "x-fastvg-job" || !name.starts_with("x-fastvg-") {
                continue;
            }
            if name == "x-fastvg-cache" {
                if let Some(cache) = cache {
                    response = response.with_header("x-fastvg-cache", cache);
                    continue;
                }
            }
            response = response.with_header(name.to_string(), value.clone());
        }
        if let Some(gid) = job_gid {
            response = response.with_header("x-fastvg-job", gid.to_string());
        }
        response
    }

    fn shard_index(&self, addr: &str) -> Option<usize> {
        self.shards.iter().position(|s| s == addr)
    }

    fn healthy_shards(&self) -> Vec<(usize, String)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, addr)| self.health.is_healthy(addr))
            .map(|(i, addr)| (i, addr.clone()))
            .collect()
    }

    /// The aggregate `/healthz`: the router's own build info in the same
    /// shape the daemon reports (so `fastvg-loadgen` accepts it
    /// unmodified) plus the per-shard fleet state. Status is `200` while
    /// at least one shard takes traffic, `503` otherwise.
    fn handle_healthz(&self) -> Response {
        self.metrics.requests_healthz.inc();
        let reports = self.health.reports();
        let healthy = reports.iter().filter(|r| r.healthy).count();
        let connections = self
            .server_stats
            .get()
            .map(|stats| stats.open())
            .unwrap_or(0);
        let shards: Vec<Json> = reports
            .iter()
            .map(|r| {
                Json::object()
                    .field("addr", r.addr.as_str())
                    .field("healthy", r.healthy)
                    .field("strikes", u64::from(r.strikes))
                    .field("ejections", r.ejections)
                    .field("probe_us", r.probe_us.map(Json::from).unwrap_or(Json::Null))
                    .build()
            })
            .collect();
        let mut body = Json::object()
            .field("ok", healthy > 0)
            .field("role", "router")
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("git", env!("FASTVG_GIT"))
            .field("backend", self.parser.default_backend().describe())
            .field(
                "backends",
                self.parser
                    .registry()
                    .schemes()
                    .iter()
                    .map(|s| Json::from(*s))
                    .collect::<Vec<_>>(),
            )
            .field("uptime_s", Json::num(self.started.elapsed().as_secs_f64()))
            .field("cache_peering", self.peering)
            .field("shards_total", reports.len())
            .field("shards_healthy", healthy)
            .field("shards", shards)
            .field("connections_open", connections)
            .build()
            .dump();
        body.push('\n');
        Response::json(if healthy > 0 { 200 } else { 503 }, body)
    }

    fn handle_metrics(&self) -> Response {
        self.metrics.requests_metrics.inc();
        let mut text = self.metrics.render();
        let reports = self.health.reports();
        family(
            &mut text,
            "fastvg_router_shard_healthy",
            "gauge",
            "Whether the shard currently takes traffic.",
        );
        for report in &reports {
            text.push_str(&format!(
                "fastvg_router_shard_healthy{{shard=\"{}\"}} {}\n",
                report.addr,
                u8::from(report.healthy)
            ));
        }
        family(
            &mut text,
            "fastvg_router_shard_ejections_total",
            "counter",
            "Times the shard was ejected from rotation.",
        );
        for report in &reports {
            text.push_str(&format!(
                "fastvg_router_shard_ejections_total{{shard=\"{}\"}} {}\n",
                report.addr, report.ejections
            ));
        }
        family(
            &mut text,
            "fastvg_router_peer_shard_total",
            "counter",
            "Cache-peering events by shard: hits relayed from its cache, \
             seeds planted on it as owner, sweeps for its keys that \
             missed on every sibling.",
        );
        for (addr, counters) in self.shards.iter().zip(&self.peer_shards) {
            for (event, count) in [
                ("hit", counters.hits.get()),
                ("seed", counters.seeds.get()),
                ("sweep_miss", counters.sweep_misses.get()),
            ] {
                text.push_str(&format!(
                    "fastvg_router_peer_shard_total{{shard=\"{addr}\",event=\"{event}\"}} {count}\n"
                ));
            }
        }
        family(
            &mut text,
            "fastvg_router_trace_spans_dropped_total",
            "counter",
            "Spans dropped on span-collector overflow.",
        );
        text.push_str(&format!(
            "fastvg_router_trace_spans_dropped_total {}\n",
            self.tracer.dropped()
        ));
        if let Some(stats) = self.server_stats.get() {
            family(
                &mut text,
                "fastvg_router_connections_open",
                "gauge",
                "Currently open client connections.",
            );
            text.push_str(&format!(
                "fastvg_router_connections_open {}\n",
                stats.open()
            ));
        }
        render_build_info(&mut text, env!("CARGO_PKG_VERSION"), env!("FASTVG_GIT"));
        Response::text(200, text)
    }

    /// `GET /trace/recent`: the last few hundred finished spans as
    /// newline-JSON, drained inline (no flusher required).
    fn handle_trace_recent(&self) -> Response {
        let mut text = self.tracer.recent().join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        Response::text(200, text)
    }

    fn handle_shutdown(&self) -> Response {
        self.stop_workers();
        self.health.stop();
        if let Some(handle) = self.shutdown.get() {
            handle.shutdown();
        }
        Response::json(202, "{\"ok\":true,\"status\":\"stopping\"}\n")
    }
}

/// Re-dumps a `{"job": …}` status body with the job id swapped for the
/// global one, preserving the daemon's member order and trailing
/// newline. Returns `None` if the document has an unexpected shape.
fn rewrite_job_field(doc: &Json, gid: u64) -> Option<String> {
    let obj = doc.as_obj()?;
    let mut builder = Json::object();
    for (key, value) in obj {
        builder = if key == "job" {
            builder.field("job", gid)
        } else {
            builder.field(key.as_str(), value.clone())
        };
    }
    let mut text = builder.build().dump();
    text.push('\n');
    Some(text)
}

impl Handler for RouterService {
    fn handle(&self, request: &Request) -> Outcome {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Outcome::Ready(self.handle_healthz()),
            ("GET", "/metrics") => Outcome::Ready(self.handle_metrics()),
            ("GET", "/trace/recent") => Outcome::Ready(self.handle_trace_recent()),
            ("POST", "/shutdown") => Outcome::Ready(self.handle_shutdown()),
            ("POST", "/extract") => self.defer(request, &self.metrics.requests_extract),
            (method, path) => {
                if path.starts_with("/jobs/") {
                    if method == "GET" {
                        return self.defer(request, &self.metrics.requests_jobs);
                    }
                    return Outcome::Ready(
                        self.error_response(405, &format!("{method} not allowed here")),
                    );
                }
                let known = matches!(
                    path,
                    "/extract" | "/healthz" | "/metrics" | "/trace/recent" | "/shutdown"
                );
                Outcome::Ready(if known {
                    self.error_response(405, &format!("{method} not allowed here"))
                } else {
                    self.error_response(404, "no such route")
                })
            }
        }
    }
}

impl RouterService {
    /// Parks the request on the work queue; the reactor moves on
    /// immediately and a worker completes the connection.
    fn defer(&self, request: &Request, counter: &Counter) -> Outcome {
        counter.inc();
        let (deferred, completer) = deferred();
        let job = ProxyJob {
            request: request.clone(),
            completer,
            enqueued: Instant::now(),
        };
        match self.queue.push(job, self.queue_capacity) {
            Some(depth) => {
                self.metrics.queue_depth.set(depth as u64);
                Outcome::Pending(deferred.with_fallback(
                    Instant::now() + self.proxy_deadline + Duration::from_secs(5),
                    error_doc(503, "router proxy deadline exceeded"),
                ))
            }
            None => {
                // Queue full: answer right here; drop the deferred pair.
                drop(deferred);
                Outcome::Ready(self.error_response(503, "router work queue is full"))
            }
        }
    }
}

/// Helper used by the binary and tests: `Client` reconnect loop until a
/// router/daemon at `addr` answers `/healthz` with 200, bounded by
/// `deadline`.
pub fn wait_healthy(addr: &str, deadline: Duration) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        let ok = Client::connect_with_timeout(addr, Duration::from_secs(2))
            .and_then(|mut c| c.get("/healthz"))
            .map(|r| r.status == 200)
            .unwrap_or(false);
        if ok {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip_through_the_gid_encoding() {
        for shard in [0usize, 1, 7, 255] {
            for local in [0u64, 1, 42, 1 << 40] {
                let gid = encode_job(local, shard);
                assert_eq!(decode_job(gid), (local, shard));
            }
        }
    }

    #[test]
    fn error_docs_match_the_daemon_shape() {
        let response = error_doc(404, "no such route");
        assert_eq!(response.status, 404);
        let doc = Json::parse(String::from_utf8_lossy(&response.body).trim_end()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let error = doc.get("error").unwrap();
        assert_eq!(
            error.get("category").and_then(Json::as_str),
            Some("request")
        );
        assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some("no such route")
        );
    }

    #[test]
    fn job_field_rewrite_preserves_everything_else() {
        let doc = Json::parse(r#"{"job": 7, "status": "queued", "cache": false}"#).unwrap();
        let rewritten = rewrite_job_field(&doc, encode_job(7, 3)).unwrap();
        let back = Json::parse(rewritten.trim_end()).unwrap();
        assert_eq!(back.get("job").and_then(Json::as_u64), Some((7 << 8) | 3));
        assert_eq!(back.get("status").and_then(Json::as_str), Some("queued"));
        assert_eq!(back.get("cache").and_then(Json::as_bool), Some(false));
        assert!(rewritten.ends_with('\n'));
    }
}
