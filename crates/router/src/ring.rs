//! Weighted consistent-hash ring over shard labels.
//!
//! The router places every shard at `weight × replicas` pseudo-random
//! points on a `u64` circle and owns a request by walking clockwise
//! from the request fingerprint's point to the first shard point. The
//! payoff over `fingerprint % n` is *stability*: when a shard joins or
//! leaves, only the keys in the arcs it gains or loses move — about
//! `weight/total_weight` of the key space — while every other key keeps
//! its owner. That is what keeps sibling caches warm across fleet
//! resizes (`docs/FLEET.md`).
//!
//! Points are `mix64(fnv1a64("label#vnode"))` and lookups hash the
//! fingerprint through [`mix64`] too: FNV's low bits correlate with the
//! final bytes hashed, and an unmixed ring would develop systematic arc
//! clumping for label families like `host:8001`, `host:8002`, …

use fastvg_wire::{fnv1a64, mix64};

/// One shard as the ring sees it: an opaque label (the proxy layer
/// stores addresses elsewhere) plus a relative capacity weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingMember {
    /// Stable shard identity, e.g. `"127.0.0.1:8001"`.
    pub label: String,
    /// Relative capacity; a weight-2 shard owns ~2× the key space of a
    /// weight-1 shard. Zero-weight members own nothing.
    pub weight: u32,
}

impl RingMember {
    /// A member with the default weight of 1.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            weight: 1,
        }
    }

    /// A member with an explicit weight.
    pub fn weighted(label: impl Into<String>, weight: u32) -> Self {
        Self {
            label: label.into(),
            weight,
        }
    }
}

/// A point on the circle: the vnode hash plus the index (into the
/// member list) of the shard that owns it.
#[derive(Debug, Clone, Copy)]
struct Point {
    at: u64,
    member: usize,
}

/// The consistent-hash ring. Construction is O(members × weight ×
/// replicas × log); lookups are a binary search.
#[derive(Debug, Clone)]
pub struct HashRing {
    members: Vec<RingMember>,
    points: Vec<Point>,
}

/// Virtual nodes per unit of weight. More points → smoother ownership
/// split (the std-dev of arc share shrinks like 1/√points) at linear
/// memory cost; 64 keeps a 4-shard fleet within a few percent of even.
pub const DEFAULT_REPLICAS: usize = 64;

impl HashRing {
    /// Builds a ring with [`DEFAULT_REPLICAS`] vnodes per weight unit.
    pub fn new(members: Vec<RingMember>) -> Self {
        Self::with_replicas(members, DEFAULT_REPLICAS)
    }

    /// Builds a ring with an explicit vnode multiplier.
    pub fn with_replicas(members: Vec<RingMember>, replicas: usize) -> Self {
        let mut points = Vec::new();
        for (index, member) in members.iter().enumerate() {
            let vnodes = member.weight as usize * replicas.max(1);
            for vnode in 0..vnodes {
                // The vnode hash must depend only on (label, vnode) so a
                // member keeps its exact points across ring rebuilds —
                // the whole stability argument rests on this.
                let tag = format!("{}#{vnode}", member.label);
                points.push(Point {
                    at: mix64(fnv1a64(tag.as_bytes())),
                    member: index,
                });
            }
        }
        points.sort_by_key(|p| p.at);
        // A duplicate point between two members would make ownership
        // depend on sort tie-breaking (i.e. member order); keep the
        // first in label order so it is deterministic regardless.
        points.dedup_by_key(|p| p.at);
        Self { members, points }
    }

    /// The members this ring was built from, in construction order.
    pub fn members(&self) -> &[RingMember] {
        &self.members
    }

    /// Whether the ring has no points (no members, or all weight 0).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index (into [`HashRing::members`]) of the first point clockwise
    /// from `key`'s position.
    fn first_at_or_after(&self, at: u64) -> usize {
        let i = self.points.partition_point(|p| p.at < at);
        if i == self.points.len() {
            0 // wrap: the circle has no end
        } else {
            i
        }
    }

    /// The shard that owns `fingerprint`, or `None` on an empty ring.
    pub fn owner(&self, fingerprint: u64) -> Option<&RingMember> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.first_at_or_after(mix64(fingerprint));
        Some(&self.members[self.points[start].member])
    }

    /// The owner followed by fallback shards in ring order — each member
    /// at most once — for retry routing. `limit` caps the walk
    /// (`limit == members` yields every non-zero-weight shard).
    pub fn candidates(&self, fingerprint: u64, limit: usize) -> Vec<&RingMember> {
        let mut found: Vec<&RingMember> = Vec::new();
        if self.points.is_empty() || limit == 0 {
            return found;
        }
        let start = self.first_at_or_after(mix64(fingerprint));
        let mut seen = vec![false; self.members.len()];
        for offset in 0..self.points.len() {
            let point = self.points[(start + offset) % self.points.len()];
            if !seen[point.member] {
                seen[point.member] = true;
                found.push(&self.members[point.member]);
                if found.len() == limit {
                    break;
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(labels: &[&str]) -> HashRing {
        HashRing::new(labels.iter().map(|l| RingMember::new(*l)).collect())
    }

    #[test]
    fn empty_and_zero_weight_rings_own_nothing() {
        assert!(ring(&[]).owner(7).is_none());
        let zero = HashRing::new(vec![RingMember::weighted("a", 0)]);
        assert!(zero.is_empty());
        assert!(zero.owner(7).is_none());
        assert!(zero.candidates(7, 3).is_empty());
    }

    #[test]
    fn single_member_owns_everything() {
        let r = ring(&["only"]);
        for fp in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(r.owner(fp).unwrap().label, "only");
        }
    }

    #[test]
    fn ownership_is_deterministic_and_member_order_free() {
        let a = ring(&["s1", "s2", "s3"]);
        let b = ring(&["s3", "s1", "s2"]);
        for fp in 0..512u64 {
            assert_eq!(a.owner(fp).unwrap().label, b.owner(fp).unwrap().label);
        }
    }

    #[test]
    fn candidates_walk_distinct_members_from_the_owner() {
        let r = ring(&["s1", "s2", "s3"]);
        for fp in 0..64u64 {
            let c = r.candidates(fp, 3);
            assert_eq!(c.len(), 3);
            assert_eq!(c[0].label, r.owner(fp).unwrap().label);
            let mut labels: Vec<&str> = c.iter().map(|m| m.label.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), 3, "candidates must be distinct");
        }
        assert_eq!(r.candidates(9, 1).len(), 1);
        assert_eq!(r.candidates(9, 10).len(), 3, "capped by member count");
    }

    #[test]
    fn weight_scales_owned_share() {
        let r = HashRing::new(vec![
            RingMember::weighted("heavy", 3),
            RingMember::weighted("light", 1),
        ]);
        let n = 4096u64;
        let heavy = (0..n)
            .filter(|&fp| r.owner(fp.wrapping_mul(0x9e37_79b9)).unwrap().label == "heavy")
            .count() as f64;
        let share = heavy / n as f64;
        assert!(
            (share - 0.75).abs() < 0.08,
            "weight-3 of 4 should own ~75%, owned {share:.3}"
        );
    }
}
