//! Stamps the git revision into the binary (`FASTVG_GIT`) so the
//! router's `/metrics` can expose `fastvg_build_info{version,git}` and
//! `/healthz` can report the same `git` field the daemons do. Falls
//! back to "unknown" outside a git checkout — the build must never
//! fail over metadata.

use std::process::Command;

fn main() {
    let git = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=FASTVG_GIT={git}");
    // Re-stamp when HEAD moves; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
