//! Property-based coverage of the consistent-hash ring, on the vendored
//! proptest shim. The properties are the *exact* stability guarantees
//! the fleet's cache-warmth story rests on (see `docs/FLEET.md`):
//!
//! * removing a shard moves **only the keys it owned** — every key a
//!   survivor owned keeps exactly its owner;
//! * adding a shard moves keys **only onto the new shard** — nothing
//!   shuffles between pre-existing shards;
//! * the moved fraction tracks the joining/leaving shard's weight share
//!   (≈ `weight/total_weight`), not the `(n-1)/n` of modulo hashing.

use fastvg_router::{HashRing, RingMember};
use proptest::prelude::*;

fn labels(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:8737")).collect()
}

fn ring_of(labels: &[String]) -> HashRing {
    HashRing::new(labels.iter().map(RingMember::new).collect())
}

/// A pseudo-random but deterministic key stream: structured fingerprints
/// are exactly what production feeds the ring.
fn keys(count: u64, seed: u64) -> impl Iterator<Item = u64> {
    (0..count).map(move |i| (i ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

proptest! {
    /// Leave: drop one shard from an n-shard ring. Keys owned by
    /// survivors must keep their exact owner; only the departed shard's
    /// keys may move (and they must all land on survivors).
    #[test]
    fn removing_a_shard_moves_only_its_own_keys(
        n in 2usize..6,
        victim in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let all = labels(n);
        let victim = victim % n;
        let before = ring_of(&all);
        let mut rest = all.clone();
        let departed = rest.remove(victim);
        let after = ring_of(&rest);

        for key in keys(2000, seed) {
            let owner_before = &before.owner(key).unwrap().label;
            let owner_after = &after.owner(key).unwrap().label;
            if *owner_before == departed {
                prop_assert!(
                    *owner_after != departed,
                    "departed shard still owns key {key}"
                );
            } else {
                prop_assert_eq!(
                    owner_before, owner_after,
                    "survivor-owned key {} changed owner", key
                );
            }
        }
    }

    /// Join: add one shard to an n-shard ring. Every moved key must move
    /// *to* the new shard; keys staying on old shards keep their owner.
    #[test]
    fn adding_a_shard_moves_keys_only_onto_it(
        n in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let old = labels(n);
        let before = ring_of(&old);
        let mut grown = old.clone();
        let newcomer = "10.0.1.99:8737".to_string();
        grown.push(newcomer.clone());
        let after = ring_of(&grown);

        for key in keys(2000, seed) {
            let owner_before = &before.owner(key).unwrap().label;
            let owner_after = &after.owner(key).unwrap().label;
            if owner_before != owner_after {
                prop_assert_eq!(
                    owner_after, &newcomer,
                    "key {} moved between pre-existing shards", key
                );
            }
        }
    }

    /// The moved fraction on a join approximates the newcomer's weight
    /// share — the ~1/N contract that keeps N-1 caches warm.
    #[test]
    fn moved_fraction_tracks_weight_share(
        n in 1usize..6,
        weight in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let old = labels(n);
        let before = ring_of(&old);
        let mut members: Vec<RingMember> = old.iter().map(RingMember::new).collect();
        members.push(RingMember::weighted("10.0.1.99:8737", weight));
        let after = HashRing::new(members);

        let total = 4000u64;
        let moved = keys(total, seed)
            .filter(|&key| {
                before.owner(key).unwrap().label != after.owner(key).unwrap().label
            })
            .count() as f64;
        let share = f64::from(weight) / (n as f64 + f64::from(weight));
        let fraction = moved / total as f64;
        // Vnode placement is random-ish, so allow a generous band; the
        // property ruled out is modulo hashing's (n-1)/n reshuffle.
        prop_assert!(
            fraction > share * 0.4 && fraction < (share * 1.8).min(0.95),
            "moved {fraction:.3}, expected ≈{share:.3} (n={n}, weight={weight})"
        );
    }

    /// Candidate walks always start at the owner and cover distinct
    /// shards — the retry path never tries the same daemon twice.
    #[test]
    fn candidates_are_distinct_and_owner_first(
        n in 1usize..6,
        key in 0u64..u64::MAX,
    ) {
        let ring = ring_of(&labels(n));
        let candidates = ring.candidates(key, n);
        prop_assert_eq!(candidates.len(), n);
        prop_assert_eq!(&candidates[0].label, &ring.owner(key).unwrap().label);
        let mut seen: Vec<&str> = candidates.iter().map(|m| m.label.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n);
    }
}
