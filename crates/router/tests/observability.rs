//! Tier-1 observability coverage over a live 2-shard fleet:
//!
//! * a handcrafted `x-fastvg-trace` context sent through the router
//!   must come back out of `/trace/recent` as one **connected**
//!   waterfall — router request span under the client's span, the
//!   proxy attempt under that, the daemon's request/queue-wait/extract
//!   spans under the attempt, and per-stage spans under extract;
//! * `/metrics` from both the daemon and the router must be
//!   well-formed Prometheus text: every sample preceded by its
//!   family's `# HELP`/`# TYPE` pair, histogram buckets cumulative and
//!   monotone in `le`, and no duplicate series.

use fastvg_router::{start as start_router, RouterConfig, RouterHandle, ShardSpec};
use fastvg_serve::{start, Client, ServeConfig, ServiceHandle};
use fastvg_wire::{Json, TraceContext, TRACE_HEADER};
use std::collections::{BTreeMap, BTreeSet};

fn boot_fleet() -> (RouterHandle, Vec<ServiceHandle>) {
    let daemons: Vec<ServiceHandle> = (0..2)
        .map(|_| {
            start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..ServeConfig::default()
            })
            .expect("boot daemon")
        })
        .collect();
    let router = start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: daemons
            .iter()
            .map(|d| ShardSpec::new(d.addr().to_string()))
            .collect(),
        ..RouterConfig::default()
    })
    .expect("boot router");
    (router, daemons)
}

fn stop_fleet(router: RouterHandle, daemons: Vec<ServiceHandle>) {
    router.shutdown();
    router.join();
    for daemon in daemons {
        daemon.shutdown();
        daemon.join();
    }
}

fn get(addr: &str, path: &str) -> String {
    let mut client = Client::connect(addr).expect("connect");
    let response = client.get(path).expect("GET succeeds");
    assert_eq!(response.status, 200, "GET {path}");
    String::from_utf8(response.body).expect("utf-8 body")
}

/// One span drained from `/trace/recent`, decoded just far enough for
/// the structural assertions.
#[derive(Debug)]
struct Drained {
    trace: u64,
    span: u64,
    parent: Option<u64>,
    layer: String,
    name: String,
}

fn drain_recent(addr: &str) -> Vec<Drained> {
    get(addr, "/trace/recent")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let doc = Json::parse(line).expect("span line parses");
            let hex = |key: &str| {
                u64::from_str_radix(doc.get(key).unwrap().as_str().unwrap(), 16).unwrap()
            };
            Drained {
                trace: hex("trace"),
                span: hex("span"),
                parent: match doc.get("parent") {
                    None | Some(Json::Null) => None,
                    Some(p) => Some(u64::from_str_radix(p.as_str().unwrap(), 16).unwrap()),
                },
                layer: doc.get("layer").unwrap().as_str().unwrap().to_string(),
                name: doc.get("name").unwrap().as_str().unwrap().to_string(),
            }
        })
        .collect()
}

#[test]
fn handcrafted_trace_context_yields_one_connected_waterfall() {
    let (router, daemons) = boot_fleet();
    let addr = router.addr().to_string();

    let ctx = TraceContext {
        trace: 0xabc0_0000_0000_0042,
        span: 0xdef0_0000_0000_0007,
    };
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .send_with_headers(
            "POST",
            "/extract?wait",
            br#"{"benchmark": 6, "method": "fast"}"#,
            &[(TRACE_HEADER, &ctx.encode())],
        )
        .expect("traced request");
    assert_eq!(response.status, 200);

    // The request touched the router and exactly one daemon; merge
    // every process's recent buffer and keep our trace.
    let mut spans = drain_recent(&addr);
    for daemon in &daemons {
        spans.extend(drain_recent(&daemon.addr().to_string()));
    }
    spans.retain(|s| s.trace == ctx.trace);
    stop_fleet(router, daemons);

    let by_name = |layer: &str, name: &str| -> Vec<&Drained> {
        spans
            .iter()
            .filter(|s| s.layer == layer && s.name == name)
            .collect()
    };

    // Router: request span continues the client's context.
    let router_request = by_name("router", "request");
    assert_eq!(router_request.len(), 1, "one router request span");
    assert_eq!(router_request[0].parent, Some(ctx.span));
    let attempts = by_name("router", "proxy_attempt");
    assert_eq!(attempts.len(), 1, "healthy fleet needs one attempt");
    assert_eq!(attempts[0].parent, Some(router_request[0].span));

    // Daemon: request under the proxy attempt, bookkeeping under the
    // request, stages under extract.
    let daemon_request = by_name("daemon", "request");
    assert_eq!(daemon_request.len(), 1, "one daemon handled it");
    assert_eq!(daemon_request[0].parent, Some(attempts[0].span));
    for name in ["read", "parse", "queue_wait", "extract", "respond"] {
        let found = by_name("daemon", name);
        assert_eq!(found.len(), 1, "daemon span {name}");
        assert_eq!(
            found[0].parent,
            Some(daemon_request[0].span),
            "{name} parent"
        );
    }
    let extract = by_name("daemon", "extract")[0].span;
    let stages: Vec<&Drained> = spans.iter().filter(|s| s.parent == Some(extract)).collect();
    assert!(
        stages.len() >= 3,
        "extraction stages under extract, got {}",
        stages.len()
    );

    // Connectivity: the only unresolved parent is the client's span id
    // (the client never exported its own root here).
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    for span in &spans {
        match span.parent {
            None => panic!("unexpected root {}/{}", span.layer, span.name),
            Some(p) => assert!(
                ids.contains(&p) || p == ctx.span,
                "orphan span {}/{}",
                span.layer,
                span.name
            ),
        }
    }
}

/// Splits a sample line into (series name, label map).
fn parse_sample(line: &str) -> (String, BTreeMap<String, String>) {
    let (name, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').expect("closing brace");
            (&line[..open], &line[open + 1..close])
        }
        None => (line.split_whitespace().next().unwrap(), ""),
    };
    let mut labels = BTreeMap::new();
    for pair in rest.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').expect("label pair");
        labels.insert(key.to_string(), value.trim_matches('"').to_string());
    }
    (name.to_string(), labels)
}

/// Asserts `text` is well-formed Prometheus exposition: HELP+TYPE
/// precede each family's first sample, histogram buckets are
/// cumulative/monotone and end at `+Inf`, and no series repeats.
fn assert_wellformed_metrics(text: &str, who: &str) {
    let mut announced: BTreeMap<String, (bool, bool, String)> = BTreeMap::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut samples = 0usize;

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().unwrap().to_string();
            announced.entry(family).or_default().0 = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let family = words.next().unwrap().to_string();
            let kind = words.next().unwrap().to_string();
            let entry = announced.entry(family).or_default();
            entry.1 = true;
            entry.2 = kind;
            continue;
        }
        assert!(!line.starts_with('#'), "{who}: unknown comment {line:?}");

        samples += 1;
        let (name, labels) = parse_sample(line);
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (announced.get(base)?.2 == "histogram").then(|| base.to_string())
            })
            .unwrap_or_else(|| name.clone());
        let (help, typed, kind) = announced
            .get(&family)
            .unwrap_or_else(|| panic!("{who}: sample {name} before any HELP/TYPE"));
        assert!(help, "{who}: family {family} sampled without HELP");
        assert!(typed, "{who}: family {family} sampled without TYPE");

        let series = format!("{name}{labels:?}");
        assert!(
            seen_series.insert(series),
            "{who}: duplicate series {name} {labels:?}"
        );

        if kind == "histogram" && name.ends_with("_bucket") {
            let le = labels
                .get("le")
                .unwrap_or_else(|| panic!("{who}: bucket sample without le: {line}"));
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("numeric le")
            };
            let value: f64 = line
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .expect("numeric sample");
            let mut key_labels = labels.clone();
            key_labels.remove("le");
            buckets
                .entry(format!("{family}{key_labels:?}"))
                .or_default()
                .push((le, value));
        }
    }
    assert!(samples > 0, "{who}: no samples at all");

    for (series, mut rows) in buckets {
        assert!(
            rows.last().is_some_and(|(le, _)| le.is_infinite()),
            "{who}: {series} missing +Inf bucket"
        );
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in rows.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{who}: {series} buckets not cumulative: {pair:?}"
            );
        }
    }
}

#[test]
fn live_metrics_are_wellformed_prometheus_text() {
    let (router, daemons) = boot_fleet();
    let addr = router.addr().to_string();

    // Generate some traffic so histograms and the peering counters
    // have samples: one extraction plus a repeat (cache hit).
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..2 {
        let response = client
            .post("/extract?wait", br#"{"benchmark": 3, "method": "fast"}"#)
            .expect("request");
        assert_eq!(response.status, 200);
    }

    let router_metrics = get(&addr, "/metrics");
    assert_wellformed_metrics(&router_metrics, "router");
    assert!(
        router_metrics.contains("fastvg_build_info{"),
        "router metrics expose build info"
    );
    assert!(
        router_metrics.contains("fastvg_router_peer_shard_total{"),
        "router metrics expose per-shard peering counters"
    );

    for daemon in &daemons {
        let daemon_metrics = get(&daemon.addr().to_string(), "/metrics");
        assert_wellformed_metrics(&daemon_metrics, "daemon");
        assert!(
            daemon_metrics.contains("fastvg_build_info{"),
            "daemon metrics expose build info"
        );
    }
    stop_fleet(router, daemons);
}
