//! Shared harness code for the fastvg benchmark suite.
//!
//! The binaries in `src/bin` regenerate every table and figure of the
//! DAC'24 paper (see DESIGN.md §4 for the experiment index); this library
//! holds the code they share: running both extraction methods on a
//! benchmark and assembling Table 1-style report rows.

use fastvg_core::baseline::HoughBaseline;
use fastvg_core::extraction::{ExtractionResult, FastExtractor};
use fastvg_core::report::{ExtractionReport, Method, SuccessCriteria};
use qd_dataset::GeneratedBenchmark;
use qd_instrument::{CsdSource, MeasurementSession};

/// Outcome of running one method on one benchmark: the report row plus
/// the session ledger scatter (for Figure 7).
pub struct MethodRun {
    /// Table 1-style row.
    pub report: ExtractionReport,
    /// Distinct probed pixels in first-probe order.
    pub scatter: Vec<(i64, i64)>,
    /// Full extraction result when the method succeeded outright.
    pub result: Option<ExtractionResult>,
}

/// Runs the fast extraction on a benchmark and scores it.
pub fn run_fast(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let extraction = FastExtractor::new().extract(&mut session);
    let scatter = session.ledger().scatter();
    match extraction {
        Ok(r) => {
            let success = criteria.judge(r.alpha12(), r.alpha21(), &bench.truth);
            let report = ExtractionReport {
                benchmark: bench.spec.index,
                size: bench.spec.size,
                method: Method::FastExtraction,
                success,
                probes: r.probes,
                coverage: r.coverage,
                runtime: r.total_runtime(),
                alpha12: r.alpha12(),
                alpha21: r.alpha21(),
                failure: if success {
                    None
                } else {
                    Some(format!(
                        "alpha error exceeds tolerance (d12 {:.3}, d21 {:.3})",
                        (r.alpha12() - bench.truth.alpha12).abs(),
                        (r.alpha21() - bench.truth.alpha21).abs()
                    ))
                },
            };
            MethodRun {
                report,
                scatter,
                result: Some(r),
            }
        }
        Err(e) => MethodRun {
            report: ExtractionReport::failed(
                bench.spec.index,
                bench.spec.size,
                Method::FastExtraction,
                session.probe_count(),
                session.coverage(),
                session.simulated_dwell(),
                e.to_string(),
            ),
            scatter,
            result: None,
        },
    }
}

/// Runs the Hough baseline on a benchmark and scores it.
pub fn run_baseline(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let extraction = HoughBaseline::new().extract(&mut session);
    let scatter = Vec::new(); // the baseline probes everything; no scatter needed
    match extraction {
        Ok(r) => {
            let success = criteria.judge(r.alpha12(), r.alpha21(), &bench.truth);
            let report = ExtractionReport {
                benchmark: bench.spec.index,
                size: bench.spec.size,
                method: Method::HoughBaseline,
                success,
                probes: r.probes,
                coverage: 1.0,
                runtime: r.total_runtime(),
                alpha12: r.alpha12(),
                alpha21: r.alpha21(),
                failure: if success {
                    None
                } else {
                    Some(format!(
                        "alpha error exceeds tolerance (d12 {:.3}, d21 {:.3})",
                        (r.alpha12() - bench.truth.alpha12).abs(),
                        (r.alpha21() - bench.truth.alpha21).abs()
                    ))
                },
            };
            MethodRun {
                report,
                scatter,
                result: None,
            }
        }
        Err(e) => MethodRun {
            report: ExtractionReport::failed(
                bench.spec.index,
                bench.spec.size,
                Method::HoughBaseline,
                session.probe_count(),
                session.coverage(),
                session.simulated_dwell(),
                e.to_string(),
            ),
            scatter,
            result: None,
        },
    }
}

/// Formats a duration as seconds with two decimals (Table 1 style).
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}
