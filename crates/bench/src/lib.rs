//! Shared harness code for the fastvg benchmark suite.
//!
//! The binaries in `src/bin` regenerate every table and figure of the
//! DAC'24 paper (see DESIGN.md §4 for the experiment index); this library
//! holds the code they share: driving extraction methods over benchmarks
//! — serially or batched across a worker pool — through the unified
//! [`fastvg_core::api::Extractor`] trait and a runtime-selected
//! [`qd_instrument::SourceBackend`], scoring outcomes into Table
//! 1-style rows, and the standard CLI surface
//! (`--method fast|hough` / `--jobs N` / `--backend SPEC` / `--out DIR`,
//! parsed by [`BenchArgs`]).
//!
//! # Batch execution
//!
//! All suite-level harnesses go through [`run_method`] / [`run_suite`],
//! which fan the benchmarks out over a
//! [`fastvg_core::batch::BatchExtractor`]. Results are bit-identical for
//! every `--jobs` value (the scoring below never depends on execution
//! order); only wall-clock changes.

use fastvg_core::api::{ExtractionDetails, ExtractionReport, Extractor};
use fastvg_core::baseline::HoughBaseline;
use fastvg_core::batch::{BatchExtractor, BatchOutcome};
use fastvg_core::extraction::{ExtractionResult, FastExtractor};
use fastvg_core::report::{Method, ReportRow, SuccessCriteria};
use qd_dataset::GeneratedBenchmark;
use qd_instrument::{
    BackendRegistry, BoxedSource, CsdSource, MeasurementSession, SourceBackend, SourceScenario,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome of running one method on one benchmark: the report row plus
/// the session ledger scatter (for Figure 7).
pub struct MethodRun {
    /// Table 1-style row.
    pub report: ReportRow,
    /// Distinct probed pixels in first-probe order (empty for the
    /// baseline, which probes everything).
    pub scatter: Vec<(i64, i64)>,
    /// Full fast-extraction trace when the method succeeded outright.
    pub result: Option<ExtractionResult>,
}

/// Both methods' outcomes on one benchmark.
pub struct SuiteRun {
    /// The fast extraction outcome.
    pub fast: MethodRun,
    /// The Canny+Hough baseline outcome.
    pub baseline: MethodRun,
}

/// A fresh replay session over a generated benchmark's diagram.
pub fn session_for(bench: &GeneratedBenchmark) -> MeasurementSession<CsdSource> {
    MeasurementSession::new(CsdSource::new(bench.csd.clone()))
}

/// Resolves a `--backend` spec through the standard registry, exiting
/// with the resolver's message on malformed specs — operator errors in
/// harness invocations, like the rest of the CLI surface.
pub fn resolve_backend(spec: &str) -> Arc<dyn SourceBackend> {
    BackendRegistry::standard()
        .resolve(spec)
        .unwrap_or_else(|e| panic!("--backend {spec:?}: {e}"))
}

/// The backend scenario for one benchmark: its diagram, its generation
/// seed, and a `bench<NN>-<method>` label so `{label}` tape templates
/// fan out per benchmark and per method.
pub fn scenario_for(bench: &GeneratedBenchmark, method: Method) -> SourceScenario {
    SourceScenario::new(bench.csd.clone())
        .with_label(format!(
            "bench{:02}-{}",
            bench.spec.index,
            method.wire_name()
        ))
        .with_seed(bench.spec.seed)
}

/// A fresh session over a benchmark through a runtime-selected backend
/// — the `--backend` flavor of [`session_for`].
///
/// # Panics
///
/// Panics when the backend cannot open a source (unreadable tape, …) —
/// an operator error in harness invocations.
pub fn session_on(
    backend: &dyn SourceBackend,
    bench: &GeneratedBenchmark,
    method: Method,
) -> MeasurementSession<BoxedSource> {
    backend
        .session(scenario_for(bench, method))
        .unwrap_or_else(|e| {
            panic!(
                "backend {} failed to open benchmark {}: {e}",
                backend.describe(),
                bench.spec.index
            )
        })
}

/// Scores a batched extraction outcome (any method) into a Table 1 row.
///
/// `method` labels the row when the outcome is an error (a successful
/// report carries its own method).
pub fn score(
    bench: &GeneratedBenchmark,
    criteria: &SuccessCriteria,
    method: Method,
    outcome: BatchOutcome<ExtractionReport>,
) -> MethodRun {
    match outcome.outcome {
        Ok(run) => {
            let success = criteria.judge(run.alpha12(), run.alpha21(), &bench.truth);
            let report = ReportRow {
                benchmark: bench.spec.index,
                size: bench.spec.size,
                method: run.method,
                success,
                probes: run.probes,
                coverage: run.coverage,
                runtime: run.total_runtime(),
                alpha12: run.alpha12(),
                alpha21: run.alpha21(),
                failure: if success {
                    None
                } else {
                    Some(format!(
                        "alpha error exceeds tolerance (d12 {:.3}, d21 {:.3})",
                        (run.alpha12() - bench.truth.alpha12).abs(),
                        (run.alpha21() - bench.truth.alpha21).abs()
                    ))
                },
            };
            // The baseline probes everything; keep its (full-frame)
            // scatter out of the row to avoid hauling O(pixels) data.
            let scatter = if run.method == Method::HoughBaseline {
                Vec::new()
            } else {
                outcome.scatter
            };
            let result = match run.details {
                ExtractionDetails::Fast(r) => Some(*r),
                _ => None,
            };
            MethodRun {
                report,
                scatter,
                result,
            }
        }
        Err(e) => MethodRun {
            report: ReportRow::failed(
                bench.spec.index,
                bench.spec.size,
                method,
                outcome.probes,
                outcome.coverage,
                outcome.simulated_dwell,
                e.to_string(),
            ),
            scatter: if method == Method::HoughBaseline {
                Vec::new()
            } else {
                outcome.scatter
            },
            result: None,
        },
    }
}

/// Runs one extraction method over a benchmark suite with up to `jobs`
/// concurrent sessions and scores each outcome — the single code path
/// behind every per-method harness (no per-method dispatch needed).
/// Probes the benchmarks directly (the `sim` backend).
pub fn run_method(
    extractor: &dyn Extractor,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> Vec<MethodRun> {
    run_method_on(
        &qd_instrument::SimBackend,
        extractor,
        benches,
        criteria,
        jobs,
    )
}

/// [`run_method`] through a runtime-selected [`SourceBackend`] — what
/// the harnesses' shared `--backend` flag feeds.
pub fn run_method_on(
    backend: &dyn SourceBackend,
    extractor: &dyn Extractor,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> Vec<MethodRun> {
    run_method_with(
        &BatchExtractor::new().with_jobs(jobs),
        backend,
        extractor,
        benches,
        criteria,
    )
}

/// [`run_method_on`] with a caller-configured [`BatchExtractor`].
pub fn run_method_with(
    runner: &BatchExtractor,
    backend: &dyn SourceBackend,
    extractor: &dyn Extractor,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
) -> Vec<MethodRun> {
    let outcomes = runner.run(extractor, benches.len(), |i| {
        session_on(backend, &benches[i], extractor.method())
    });
    outcomes
        .into_iter()
        .zip(benches)
        .map(|(o, b)| score(b, criteria, extractor.method(), o))
        .collect()
}

/// Runs the fast extraction on a single benchmark and scores it.
pub fn run_fast(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut runs = run_method(
        &FastExtractor::new(),
        std::slice::from_ref(bench),
        criteria,
        1,
    );
    runs.remove(0)
}

/// Runs the Hough baseline on a single benchmark and scores it.
pub fn run_baseline(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut runs = run_method(
        &HoughBaseline::new(),
        std::slice::from_ref(bench),
        criteria,
        1,
    );
    runs.remove(0)
}

/// Runs both methods over a benchmark suite with up to `jobs` concurrent
/// sessions per method, returning scored rows in suite order. Probes
/// the benchmarks directly (the `sim` backend).
pub fn run_suite(
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> Vec<SuiteRun> {
    run_suite_on(&qd_instrument::SimBackend, benches, criteria, jobs)
}

/// [`run_suite`] through a runtime-selected [`SourceBackend`].
pub fn run_suite_on(
    backend: &dyn SourceBackend,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> Vec<SuiteRun> {
    run_suite_with(
        &BatchExtractor::new().with_jobs(jobs),
        backend,
        benches,
        criteria,
    )
}

/// [`run_suite_on`] with a custom-configured [`BatchExtractor`]
/// (ablation configurations, custom baselines).
pub fn run_suite_with(
    runner: &BatchExtractor,
    backend: &dyn SourceBackend,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
) -> Vec<SuiteRun> {
    let fast = run_method_with(runner, backend, runner.extractor(), benches, criteria);
    let base = run_method_with(runner, backend, runner.baseline(), benches, criteria);
    fast.into_iter()
        .zip(base)
        .map(|(fast, baseline)| SuiteRun { fast, baseline })
        .collect()
}

/// Which extraction methods a harness should run
/// (`--method fast|hough|both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MethodFilter {
    /// Fast extraction only.
    Fast,
    /// Canny+Hough baseline only.
    Hough,
    /// Both methods (the default).
    #[default]
    Both,
}

impl MethodFilter {
    /// Whether the fast extraction is selected.
    pub fn fast(self) -> bool {
        matches!(self, MethodFilter::Fast | MethodFilter::Both)
    }

    /// Whether the baseline is selected.
    pub fn hough(self) -> bool {
        matches!(self, MethodFilter::Hough | MethodFilter::Both)
    }

    /// The selected extractors, ready for the unified
    /// [`run_method`] path.
    pub fn extractors(self) -> Vec<Box<dyn Extractor>> {
        let mut out: Vec<Box<dyn Extractor>> = Vec::new();
        if self.fast() {
            out.push(Box::new(FastExtractor::new()));
        }
        if self.hough() {
            out.push(Box::new(HoughBaseline::new()));
        }
        out
    }
}

/// The standard CLI surface shared by all bench binaries:
/// `--method fast|hough` (default both), `--jobs N` (default: one worker
/// per core), `--backend SPEC` (probe-source selection, default `sim`),
/// `--out DIR` (artifact directory). Everything else lands in
/// [`BenchArgs::rest`] for the binary's own flags/positionals.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Worker cap for batch execution (0 = one per core).
    pub jobs: usize,
    /// Which methods to run.
    pub method: MethodFilter,
    /// Probe-backend spec (`sim`, `throttled:<dwell>`,
    /// `record:<tape>[+inner]`, `replay:<tape>`; tape paths may contain
    /// `{label}`, expanded to `bench<NN>-<method>`).
    pub backend: String,
    /// Artifact directory, if requested.
    pub out: Option<PathBuf>,
    /// Unconsumed arguments, in order.
    pub rest: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            jobs: 0,
            method: MethodFilter::default(),
            backend: "sim".to_string(),
            out: None,
            rest: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flag values — these are
    /// operator errors in harness invocations.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`BenchArgs::parse`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flag values.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut parsed = Self::default();
        let mut args = args;
        while let Some(a) = args.next() {
            let mut value_of = |inline: Option<&str>, flag: &str| -> String {
                match inline {
                    Some(v) => v.to_string(),
                    None => args
                        .next()
                        .unwrap_or_else(|| panic!("{flag} expects a value")),
                }
            };
            if a == "--jobs" || a.starts_with("--jobs=") {
                let v = value_of(a.strip_prefix("--jobs="), "--jobs");
                parsed.jobs = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--jobs expects a number, got {v:?}"));
            } else if a == "--method" || a.starts_with("--method=") {
                let v = value_of(a.strip_prefix("--method="), "--method");
                parsed.method = match v.as_str() {
                    "fast" => MethodFilter::Fast,
                    "hough" | "baseline" => MethodFilter::Hough,
                    "both" => MethodFilter::Both,
                    other => panic!("--method expects fast|hough|both, got {other:?}"),
                };
            } else if a == "--backend" || a.starts_with("--backend=") {
                parsed.backend = value_of(a.strip_prefix("--backend="), "--backend");
            } else if a == "--out" || a.starts_with("--out=") {
                let v = value_of(a.strip_prefix("--out="), "--out");
                assert!(!v.starts_with("--"), "--out expects a directory path");
                parsed.out = Some(PathBuf::from(v));
            } else {
                parsed.rest.push(a);
            }
        }
        parsed
    }

    /// The artifact directory: `--out` if given, else `default`.
    pub fn out_dir(&self, default: &str) -> PathBuf {
        self.out.clone().unwrap_or_else(|| PathBuf::from(default))
    }

    /// Resolves the `--backend` spec — see [`resolve_backend`].
    pub fn resolve_backend(&self) -> Arc<dyn SourceBackend> {
        resolve_backend(&self.backend)
    }

    /// Whether a bare flag (e.g. `--gate`) appears in the leftovers.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// The leftovers with bare flags removed — the binary's positionals.
    pub fn positionals(&self) -> Vec<&str> {
        self.rest
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect()
    }
}

/// An artifact sink: writes named text artifacts under a directory
/// (created on first use). Used by the bench binaries' `--out` flag.
#[derive(Debug)]
pub struct Artifacts {
    dir: PathBuf,
}

impl Artifacts {
    /// An artifact sink rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn at(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one artifact, returning its path.
    ///
    /// # Errors
    ///
    /// I/O errors writing the file.
    pub fn write(&self, name: &str, content: &str) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        std::fs::write(&path, content)?;
        Ok(path)
    }
}

/// Prints each line to stdout and (optionally) buffers it, so a binary
/// can tee its human-readable output into an `--out` artifact.
#[derive(Debug)]
pub struct Tee {
    buf: String,
    enabled: bool,
}

impl Tee {
    /// A tee; buffering only happens when `enabled` (i.e. `--out` was
    /// given), so the common path allocates nothing.
    pub fn new(enabled: bool) -> Self {
        Self {
            buf: String::new(),
            enabled,
        }
    }

    /// Prints one line (and buffers it when enabled).
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        if self.enabled {
            self.buf.push_str(s);
            self.buf.push('\n');
        }
    }

    /// The buffered text so far.
    pub fn buffer(&self) -> &str {
        &self.buf
    }

    /// Takes the buffered text, leaving the tee empty.
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }
}

/// Formats a duration as seconds with two decimals (Table 1 style).
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Renders an `f64` as a CSV cell: six decimals, or an empty cell for
/// non-finite values (hard failures report NaN alphas), so strict float
/// parsers never see a literal `NaN`. Shared by every artifact writer so
/// the machine-readable outputs stay consistent.
pub fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> BenchArgs {
        BenchArgs::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_the_standard_flags() {
        let a = args(&[
            "--jobs",
            "4",
            "--method",
            "fast",
            "--out",
            "artifacts",
            "--gate",
            "60",
        ]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.method, MethodFilter::Fast);
        assert_eq!(a.out.as_deref(), Some(Path::new("artifacts")));
        assert!(a.has_flag("--gate"));
        assert_eq!(a.positionals(), vec!["60"]);
    }

    #[test]
    fn parses_inline_forms_and_defaults() {
        let a = args(&["--jobs=2", "--method=hough", "--out=x"]);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.method, MethodFilter::Hough);
        assert_eq!(a.out.as_deref(), Some(Path::new("x")));

        let d = args(&["shrink"]);
        assert_eq!(d.jobs, 0);
        assert_eq!(d.method, MethodFilter::Both);
        assert_eq!(d.backend, "sim");
        assert!(d.out.is_none());
        assert_eq!(d.rest, vec!["shrink"]);
        assert_eq!(d.out_dir("target/artifacts"), Path::new("target/artifacts"));
    }

    #[test]
    fn parses_and_resolves_backend_specs() {
        let a = args(&["--backend", "throttled:50us"]);
        assert_eq!(a.backend, "throttled:50us");
        assert_eq!(a.resolve_backend().describe(), "throttled:50us");
        let b = args(&["--backend=replay:tapes/{label}.tape"]);
        assert_eq!(b.resolve_backend().scheme(), "replay");
    }

    #[test]
    #[should_panic(expected = "--backend")]
    fn rejects_malformed_backend_specs() {
        let _ = args(&["--backend", "warp:9"]).resolve_backend();
    }

    #[test]
    fn method_filter_selects_extractors() {
        assert_eq!(MethodFilter::Both.extractors().len(), 2);
        let fast = MethodFilter::Fast.extractors();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].method(), Method::FastExtraction);
        let hough = MethodFilter::Hough.extractors();
        assert_eq!(hough[0].method(), Method::HoughBaseline);
    }

    #[test]
    #[should_panic(expected = "--method expects")]
    fn rejects_unknown_method() {
        let _ = args(&["--method", "slow"]);
    }
}
