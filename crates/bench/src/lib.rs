//! Shared harness code for the fastvg benchmark suite.
//!
//! The binaries in `src/bin` regenerate every table and figure of the
//! DAC'24 paper (see DESIGN.md §4 for the experiment index); this library
//! holds the code they share: running both extraction methods on
//! benchmarks — serially or batched across a worker pool — and assembling
//! Table 1-style report rows.
//!
//! # Batch execution
//!
//! All suite-level harnesses go through [`run_suite`], which fans the
//! benchmarks out over a [`fastvg_core::batch::BatchExtractor`]. Results
//! are bit-identical for every `--jobs` value (the scoring below never
//! depends on execution order); only wall-clock changes.

use fastvg_core::baseline::BaselineResult;
use fastvg_core::batch::{BatchExtractor, BatchOutcome};
use fastvg_core::extraction::ExtractionResult;
use fastvg_core::report::{ExtractionReport, Method, SuccessCriteria};
use qd_dataset::GeneratedBenchmark;
use qd_instrument::{CsdSource, MeasurementSession};

/// Outcome of running one method on one benchmark: the report row plus
/// the session ledger scatter (for Figure 7).
pub struct MethodRun {
    /// Table 1-style row.
    pub report: ExtractionReport,
    /// Distinct probed pixels in first-probe order.
    pub scatter: Vec<(i64, i64)>,
    /// Full extraction result when the method succeeded outright.
    pub result: Option<ExtractionResult>,
}

/// Both methods' outcomes on one benchmark.
pub struct SuiteRun {
    /// The fast extraction outcome.
    pub fast: MethodRun,
    /// The Canny+Hough baseline outcome.
    pub baseline: MethodRun,
}

/// A fresh replay session over a generated benchmark's diagram.
pub fn session_for(bench: &GeneratedBenchmark) -> MeasurementSession<CsdSource> {
    MeasurementSession::new(CsdSource::new(bench.csd.clone()))
}

/// Scores a batched fast-extraction outcome into a Table 1 row.
pub fn score_fast(
    bench: &GeneratedBenchmark,
    criteria: &SuccessCriteria,
    outcome: BatchOutcome<ExtractionResult>,
) -> MethodRun {
    match outcome.outcome {
        Ok(r) => {
            let success = criteria.judge(r.alpha12(), r.alpha21(), &bench.truth);
            let report = ExtractionReport {
                benchmark: bench.spec.index,
                size: bench.spec.size,
                method: Method::FastExtraction,
                success,
                probes: r.probes,
                coverage: r.coverage,
                runtime: r.total_runtime(),
                alpha12: r.alpha12(),
                alpha21: r.alpha21(),
                failure: if success {
                    None
                } else {
                    Some(format!(
                        "alpha error exceeds tolerance (d12 {:.3}, d21 {:.3})",
                        (r.alpha12() - bench.truth.alpha12).abs(),
                        (r.alpha21() - bench.truth.alpha21).abs()
                    ))
                },
            };
            MethodRun {
                report,
                scatter: outcome.scatter,
                result: Some(r),
            }
        }
        Err(e) => MethodRun {
            report: ExtractionReport::failed(
                bench.spec.index,
                bench.spec.size,
                Method::FastExtraction,
                outcome.probes,
                outcome.coverage,
                outcome.simulated_dwell,
                e.to_string(),
            ),
            scatter: outcome.scatter,
            result: None,
        },
    }
}

/// Scores a batched baseline outcome into a Table 1 row.
pub fn score_baseline(
    bench: &GeneratedBenchmark,
    criteria: &SuccessCriteria,
    outcome: BatchOutcome<BaselineResult>,
) -> MethodRun {
    // The baseline probes everything; no scatter needed.
    match outcome.outcome {
        Ok(r) => {
            let success = criteria.judge(r.alpha12(), r.alpha21(), &bench.truth);
            let report = ExtractionReport {
                benchmark: bench.spec.index,
                size: bench.spec.size,
                method: Method::HoughBaseline,
                success,
                probes: r.probes,
                coverage: 1.0,
                runtime: r.total_runtime(),
                alpha12: r.alpha12(),
                alpha21: r.alpha21(),
                failure: if success {
                    None
                } else {
                    Some(format!(
                        "alpha error exceeds tolerance (d12 {:.3}, d21 {:.3})",
                        (r.alpha12() - bench.truth.alpha12).abs(),
                        (r.alpha21() - bench.truth.alpha21).abs()
                    ))
                },
            };
            MethodRun {
                report,
                scatter: Vec::new(),
                result: None,
            }
        }
        Err(e) => MethodRun {
            report: ExtractionReport::failed(
                bench.spec.index,
                bench.spec.size,
                Method::HoughBaseline,
                outcome.probes,
                outcome.coverage,
                outcome.simulated_dwell,
                e.to_string(),
            ),
            scatter: Vec::new(),
            result: None,
        },
    }
}

/// Runs the fast extraction on a benchmark and scores it.
pub fn run_fast(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut outcomes = BatchExtractor::new()
        .with_jobs(1)
        .run_fast(1, |_| session_for(bench));
    score_fast(bench, criteria, outcomes.remove(0))
}

/// Runs the Hough baseline on a benchmark and scores it.
pub fn run_baseline(bench: &GeneratedBenchmark, criteria: &SuccessCriteria) -> MethodRun {
    let mut outcomes = BatchExtractor::new()
        .with_jobs(1)
        .run_baseline(1, |_| session_for(bench));
    score_baseline(bench, criteria, outcomes.remove(0))
}

/// Runs both methods over a benchmark suite with up to `jobs` concurrent
/// sessions per method, returning scored rows in suite order.
pub fn run_suite(
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> Vec<SuiteRun> {
    run_suite_with(&BatchExtractor::new().with_jobs(jobs), benches, criteria)
}

/// [`run_suite`] with a custom-configured [`BatchExtractor`] (ablation
/// configurations, custom baselines).
pub fn run_suite_with(
    runner: &BatchExtractor,
    benches: &[GeneratedBenchmark],
    criteria: &SuccessCriteria,
) -> Vec<SuiteRun> {
    let fast = runner.run_fast(benches.len(), |i| session_for(&benches[i]));
    let base = runner.run_baseline(benches.len(), |i| session_for(&benches[i]));
    fast.into_iter()
        .zip(base)
        .zip(benches)
        .map(|((f, b), bench)| SuiteRun {
            fast: score_fast(bench, criteria, f),
            baseline: score_baseline(bench, criteria, b),
        })
        .collect()
}

/// Parses a `--jobs N` / `--jobs=N` flag from the process arguments.
/// Returns 0 (auto: one worker per core) when absent.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--jobs expects a number"));
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--jobs expects a number"));
        }
    }
    0
}

/// The process arguments with any `--jobs` flag (and its value) removed —
/// what's left over for a binary's own positional arguments.
pub fn args_without_jobs() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            args.next();
            continue;
        }
        if a.starts_with("--jobs=") {
            continue;
        }
        out.push(a);
    }
    out
}

/// Formats a duration as seconds with two decimals (Table 1 style).
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}
