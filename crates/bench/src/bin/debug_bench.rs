//! Throwaway debugging harness (not part of the published experiment set).

use fastvg_core::extraction::FastExtractor;
use qd_csd::render::AsciiRenderer;
use qd_csd::Pixel;
use qd_dataset::paper_benchmark;
use qd_instrument::{CsdSource, MeasurementSession};

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let bench = paper_benchmark(idx).unwrap();
    // Overlay the analytic truth lines on the diagram.
    let grid = bench.csd.grid();
    let (ix, iy) = bench
        .device
        .as_array()
        .pair_line_intersection(0, &[0.0, 0.0])
        .unwrap();
    let (fx, fy) = grid.fractional_pixel_of(ix, iy);
    println!("analytic intersection at pixel ({fx:.1}, {fy:.1})");
    let mut truth_line_pixels = Vec::new();
    let (w, h) = bench.csd.size();
    for x in 0..w {
        // Shallow line left of the intersection.
        let y = fy + bench.truth.slope_h * (x as f64 - fx);
        if (x as f64) < fx && y >= 0.0 && y < h as f64 {
            truth_line_pixels.push(Pixel::new(x, y.round() as usize));
        }
    }
    for y in 0..h {
        // Steep line below the intersection.
        let x = fx + (y as f64 - fy) / bench.truth.slope_v;
        if (y as f64) < fy && x >= 0.0 && x < w as f64 {
            truth_line_pixels.push(Pixel::new(x.round() as usize, y));
        }
    }
    let (w, h) = bench.csd.size();
    println!("benchmark {idx}: {w}x{h}");
    println!(
        "truth: slope_h {:+.4} slope_v {:+.4}",
        bench.truth.slope_h, bench.truth.slope_v
    );

    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    match FastExtractor::new().extract(&mut session) {
        Ok(r) => {
            println!(
                "extracted: slope_h {:+.4} slope_v {:+.4}  ({} probes)",
                r.slope_h, r.slope_v, r.probes
            );
            println!(
                "anchors: a1 {} a2 {} start {}",
                r.anchors.a1, r.anchors.a2, r.anchors.start
            );
            println!(
                "fit intersection ({:.1}, {:.1}) rms {:.2}",
                r.fit.intersection.0, r.fit.intersection.1, r.fit.rms
            );
            let art = AsciiRenderer::new()
                .max_width(110)
                .with_overlays(truth_line_pixels, 'T')
                .with_overlays(r.transition_points.clone(), 'o')
                .with_overlay(r.anchors.a1, 'A')
                .with_overlay(r.anchors.a2, 'B')
                .render(&bench.csd);
            println!("{art}");
        }
        Err(e) => {
            println!("extraction failed: {e}");
            let art = AsciiRenderer::new().max_width(110).render(&bench.csd);
            println!("{art}");
        }
    }
}
