//! The robustness matrix: fast + baseline over the hostile-device zoo,
//! probed through `hwsim` instrument profiles.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin fastvg-zoo
//! cargo run --release -p fastvg-bench --bin fastvg-zoo -- --gate --jobs 4 --out artifacts
//! cargo run --release -p fastvg-bench --bin fastvg-zoo -- 3 12345
//! ```
//!
//! Where Table 1 replays the paper's 12 hand-picked benchmarks, this
//! harness sweeps the generated zoo (`qd_dataset::zoo`): 4 scenario
//! families × 3 severity bands × N devices per cell, each probed through
//! the `hwsim:<profile>` DAC model its scenario prescribes. The output
//! is a success-rate matrix per family × severity, with probe counts,
//! virtual dwell, and the hwsim bus cost recomputed from each fast run's
//! probe scatter.
//!
//! Positionals: `[per_cell] [seed]` — scenarios per family×severity cell
//! (default 9 → 108 scenarios) and the zoo seed (default the pinned CI
//! seed). Flags: the standard bench set (`--jobs`, `--out`) plus
//! `--gate`, which exits non-zero unless the aggregate fast success rate
//! over ≥ 100 scenarios holds the floor — the robustness counterpart of
//! the Table 1 gate.
//!
//! Determinism: scenario generation is seeded, `hwsim` is deterministic
//! from each scenario's seed, and scoring never depends on execution
//! order — so the matrix is bit-identical for every `--jobs` value
//! (asserted by tier-1 `tests/hwsim.rs`).

use fastvg_bench::{csv_f64, score, Artifacts, BenchArgs, MethodRun, Tee};
use fastvg_core::api::Extractor;
use fastvg_core::baseline::HoughBaseline;
use fastvg_core::batch::BatchExtractor;
use fastvg_core::extraction::FastExtractor;
use fastvg_core::report::SuccessCriteria;
use fastvg_wire::Json;
use qd_dataset::generate_suite;
use qd_dataset::zoo::{zoo_specs, Severity, ZooFamily, ZooScenario, DEFAULT_ZOO_SEED};
use qd_instrument::hwsim::HwSimProfile;
use qd_instrument::{BackendRegistry, SourceBackend, SourceScenario, VoltageWindow};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Gate floors. The zoo is built to *hurt*: severe bands are meant to
/// fail most of the time, so the aggregate floor sits well below Table
/// 1's 10/12 — what it guards is the overall robustness level (a
/// regression that breaks the mild band or collapses a family drops the
/// aggregate through the floor).
const GATE_MIN_SCENARIOS: usize = 100;
const GATE_MIN_FAST_RATE: f64 = 0.30;
const GATE_MIN_MILD_FAST_RATE: f64 = 0.75;

/// One aggregated family × severity cell of the matrix.
struct Cell {
    family: ZooFamily,
    severity: Severity,
    n: usize,
    fast_ok: usize,
    base_ok: usize,
    fast_probes: usize,
    fast_dwell: Duration,
    bus_time: Duration,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let gate = args.has_flag("--gate");
    let positionals = args.positionals();
    let per_cell: usize = positionals
        .first()
        .map(|v| v.parse().expect("per_cell must be a number"))
        .unwrap_or(9);
    let seed: u64 = positionals
        .get(1)
        .map(|v| v.parse().expect("seed must be a u64"))
        .unwrap_or(DEFAULT_ZOO_SEED);

    let scenarios = zoo_specs(per_cell, seed);
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec.clone()).collect();
    println!(
        "zoo: {} scenarios ({} families x {} bands x {per_cell}), seed {seed:#x}",
        scenarios.len(),
        ZooFamily::ALL.len(),
        Severity::ALL.len(),
    );
    let benches = generate_suite(&specs, args.jobs)?;

    // One backend per distinct profile string; scenarios share them.
    let registry = BackendRegistry::standard();
    let mut by_profile: HashMap<&str, Arc<dyn SourceBackend>> = HashMap::new();
    for s in &scenarios {
        if !by_profile.contains_key(s.backend.as_str()) {
            let backend = registry
                .resolve(&s.backend)
                .unwrap_or_else(|e| panic!("{}: {e}", s.label()));
            by_profile.insert(&s.backend, backend);
        }
    }
    let backends: Vec<Arc<dyn SourceBackend>> = scenarios
        .iter()
        .map(|s| Arc::clone(&by_profile[s.backend.as_str()]))
        .collect();

    let criteria = SuccessCriteria::default();
    let run_all = |extractor: &dyn Extractor| -> Vec<MethodRun> {
        let outcomes =
            BatchExtractor::new()
                .with_jobs(args.jobs)
                .run(extractor, benches.len(), |i| {
                    let label = format!(
                        "{}-{}",
                        scenarios[i].label(),
                        extractor.method().wire_name()
                    );
                    backends[i]
                        .session(
                            SourceScenario::new(benches[i].csd.clone())
                                .with_label(label)
                                .with_seed(benches[i].spec.seed),
                        )
                        .unwrap_or_else(|e| panic!("{}: {e}", scenarios[i].label()))
                });
        outcomes
            .into_iter()
            .zip(&benches)
            .map(|(o, b)| score(b, &criteria, extractor.method(), o))
            .collect()
    };
    let fast = run_all(&FastExtractor::new());
    let base = run_all(&HoughBaseline::new());

    // The hwsim bus cost of each fast run, recomputed from its scatter
    // (with the session cache on, the scatter *is* the dwell-costing
    // probe sequence).
    let bus_times: Vec<Duration> = scenarios
        .iter()
        .zip(&benches)
        .zip(&fast)
        .map(|((s, b), run)| {
            let profile = HwSimProfile::parse(
                s.backend
                    .strip_prefix("hwsim:")
                    .expect("zoo backends are hwsim"),
            )
            .expect("zoo profiles parse");
            profile.scatter_cost(&VoltageWindow::from_grid(b.csd.grid()), &run.scatter)
        })
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    for family in ZooFamily::ALL {
        for severity in Severity::ALL {
            let mut cell = Cell {
                family,
                severity,
                n: 0,
                fast_ok: 0,
                base_ok: 0,
                fast_probes: 0,
                fast_dwell: Duration::ZERO,
                bus_time: Duration::ZERO,
            };
            for (i, s) in scenarios.iter().enumerate() {
                if s.family != family || s.severity != severity {
                    continue;
                }
                cell.n += 1;
                cell.fast_ok += fast[i].report.success as usize;
                cell.base_ok += base[i].report.success as usize;
                cell.fast_probes += fast[i].report.probes;
                cell.fast_dwell += fast[i].report.runtime;
                cell.bus_time += bus_times[i];
            }
            cells.push(cell);
        }
    }

    let mut tee = Tee::new(args.out.is_some());
    tee.line(format!(
        "{:>10} {:>9} | {:>9} {:>9} | {:>11} {:>11} {:>11}",
        "family", "severity", "fast", "baseline", "probes/run", "dwell/run", "bus/run"
    ));
    tee.line("-".repeat(84));
    for c in &cells {
        tee.line(format!(
            "{:>10} {:>9} | {:>4}/{:<4} {:>4}/{:<4} | {:>11} {:>10.2}s {:>9.1}ms",
            c.family.name(),
            c.severity.name(),
            c.fast_ok,
            c.n,
            c.base_ok,
            c.n,
            c.fast_probes / c.n.max(1),
            c.fast_dwell.as_secs_f64() / c.n.max(1) as f64,
            1e3 * c.bus_time.as_secs_f64() / c.n.max(1) as f64,
        ));
    }
    tee.line("-".repeat(84));

    let total = scenarios.len();
    let fast_ok: usize = cells.iter().map(|c| c.fast_ok).sum();
    let base_ok: usize = cells.iter().map(|c| c.base_ok).sum();
    let fast_rate = fast_ok as f64 / total.max(1) as f64;
    let mild: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.severity == Severity::Mild)
        .collect();
    let mild_n: usize = mild.iter().map(|c| c.n).sum();
    let mild_ok: usize = mild.iter().map(|c| c.fast_ok).sum();
    let mild_rate = mild_ok as f64 / mild_n.max(1) as f64;
    tee.line(format!(
        "fast: {fast_ok}/{total} ({:.1}%), mild band {mild_ok}/{mild_n} ({:.1}%)   baseline: {base_ok}/{total} ({:.1}%)",
        100.0 * fast_rate,
        100.0 * mild_rate,
        100.0 * base_ok as f64 / total.max(1) as f64,
    ));

    let artifacts = Artifacts::at(&args.out_dir("target/artifacts"))?;
    write_artifacts(
        &artifacts, &cells, &scenarios, &fast, &base, &bus_times, per_cell, seed, fast_rate,
        mild_rate,
    )?;
    if args.out.is_some() {
        artifacts.write("robustness_matrix.txt", &tee.take())?;
    }
    println!("artifacts: {}", artifacts.dir().display());

    if gate {
        let enough = total >= GATE_MIN_SCENARIOS;
        let rate_ok = fast_rate >= GATE_MIN_FAST_RATE;
        let mild_ok = mild_rate >= GATE_MIN_MILD_FAST_RATE;
        if !(enough && rate_ok && mild_ok) {
            eprintln!(
                "robustness gate FAILED: {total} scenarios (need >= {GATE_MIN_SCENARIOS}), \
                 fast rate {:.3} (need >= {GATE_MIN_FAST_RATE}), \
                 mild-band rate {:.3} (need >= {GATE_MIN_MILD_FAST_RATE})",
                fast_rate, mild_rate
            );
            std::process::exit(1);
        }
        println!(
            "robustness gate passed: fast {:.1}% over {total} scenarios, mild band {:.1}%",
            100.0 * fast_rate,
            100.0 * mild_rate
        );
    }
    Ok(())
}

/// Writes `BENCH_robustness_matrix.json` (cells + per-scenario rows +
/// gate block) and `robustness_matrix.csv` (one row per scenario).
#[allow(clippy::too_many_arguments)]
fn write_artifacts(
    artifacts: &Artifacts,
    cells: &[Cell],
    scenarios: &[ZooScenario],
    fast: &[MethodRun],
    base: &[MethodRun],
    bus_times: &[Duration],
    per_cell: usize,
    seed: u64,
    fast_rate: f64,
    mild_rate: f64,
) -> std::io::Result<()> {
    let mut csv = String::from(
        "label,family,severity,size,backend,fast_success,baseline_success,fast_probes,fast_coverage,fast_runtime_s,bus_time_s,alpha12,alpha21\n",
    );
    for (i, s) in scenarios.iter().enumerate() {
        let f = &fast[i].report;
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.6},{:.3},{:.6},{},{}\n",
            s.label(),
            s.family.name(),
            s.severity.name(),
            s.spec.size,
            s.backend,
            f.success,
            base[i].report.success,
            f.probes,
            f.coverage,
            f.runtime.as_secs_f64(),
            bus_times[i].as_secs_f64(),
            csv_f64(f.alpha12),
            csv_f64(f.alpha21),
        ));
    }
    artifacts.write("robustness_matrix.csv", &csv)?;

    let json_cells: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::object()
                .field("family", c.family.name())
                .field("severity", c.severity.name())
                .field("scenarios", c.n)
                .field("fast_successes", c.fast_ok)
                .field("baseline_successes", c.base_ok)
                .field(
                    "fast_success_rate",
                    Json::num(c.fast_ok as f64 / c.n.max(1) as f64),
                )
                .field("mean_fast_probes", c.fast_probes / c.n.max(1))
                .field(
                    "mean_fast_runtime_s",
                    Json::num(c.fast_dwell.as_secs_f64() / c.n.max(1) as f64),
                )
                .field(
                    "mean_bus_time_s",
                    Json::num(c.bus_time.as_secs_f64() / c.n.max(1) as f64),
                )
                .build()
        })
        .collect();
    let json = Json::object()
        .field("bench", "robustness_matrix")
        .field("zoo_seed", seed)
        .field("per_cell", per_cell)
        .field("scenarios", scenarios.len())
        .field("fast_success_rate", Json::num(fast_rate))
        .field("mild_fast_success_rate", Json::num(mild_rate))
        .field(
            "gate",
            Json::object()
                .field("min_scenarios", GATE_MIN_SCENARIOS)
                .field("min_fast_rate", Json::num(GATE_MIN_FAST_RATE))
                .field("min_mild_fast_rate", Json::num(GATE_MIN_MILD_FAST_RATE))
                .build(),
        )
        .field("cells", json_cells)
        .build();
    artifacts.write("BENCH_robustness_matrix.json", &json.pretty())?;
    Ok(())
}
