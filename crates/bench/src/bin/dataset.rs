//! Dataset tooling: export the benchmark suite to disk and render
//! individual diagrams.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin dataset -- export /tmp/fastvg-suite
//! cargo run --release -p fastvg-bench --bin dataset -- render 6
//! cargo run --release -p fastvg-bench --bin dataset -- info
//! ```
//!
//! The export directory contains `manifest.csv` (specs + ground truths),
//! one `csd_XX.csv` per benchmark (qd-csd text format) and one
//! `csd_XX.pgm` grayscale render — everything an external analysis stack
//! needs to consume the suite without Rust.

use qd_csd::render::{to_pgm, AsciiRenderer};
use qd_dataset::{paper_benchmark, paper_suite, save_suite};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("export") => {
            let dir: PathBuf = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(|| std::env::temp_dir().join("fastvg-suite"));
            let suite = paper_suite()?;
            save_suite(&dir, &suite)?;
            for b in &suite {
                let pgm = to_pgm(&b.csd)?;
                std::fs::write(dir.join(format!("csd_{:02}.pgm", b.spec.index)), pgm)?;
            }
            println!(
                "exported 12 benchmarks (CSV + PGM + manifest) to {}",
                dir.display()
            );
        }
        Some("render") => {
            let index: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
            let bench = paper_benchmark(index)?;
            println!(
                "CSD {index} ({0}x{0}): slope_h {1:+.4}, slope_v {2:+.4}, alpha12 {3:.4}, alpha21 {4:.4}",
                bench.spec.size,
                bench.truth.slope_h,
                bench.truth.slope_v,
                bench.truth.alpha12,
                bench.truth.alpha21
            );
            println!("{}", AsciiRenderer::new().max_width(120).render(&bench.csd));
        }
        Some("info") | None => {
            println!(
                "{:>3} {:>9} {:>10} {:>10} {:>9} {:>9} {:>7} {:>7}",
                "CSD", "size", "slope_h", "slope_v", "alpha12", "alpha21", "fast?", "base?"
            );
            for b in paper_suite()? {
                println!(
                    "{:>3} {:>9} {:>10.4} {:>10.4} {:>9.4} {:>9.4} {:>7} {:>7}",
                    b.spec.index,
                    format!("{0}x{0}", b.spec.size),
                    b.truth.slope_h,
                    b.truth.slope_v,
                    b.truth.alpha12,
                    b.truth.alpha21,
                    b.spec.expect_fast_success,
                    b.spec.expect_baseline_success
                );
            }
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; use export | render | info");
            std::process::exit(2);
        }
    }
    Ok(())
}
