//! Regenerates **Figure 3** of the paper: a CSD before and after
//! virtualization. The extracted matrix warps the voltage space so the
//! steep transition line becomes vertical and the shallow one horizontal
//! — "one-to-one" control.
//!
//! Also verifies the orthogonalization numerically: the image slopes of
//! the two lines under the extracted matrix are printed alongside the
//! ideal (vertical / horizontal) targets.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin fig3
//! ```

use fastvg_core::extraction::FastExtractor;
use qd_csd::render::AsciiRenderer;
use qd_dataset::paper_benchmark;
use qd_instrument::{CsdSource, MeasurementSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = paper_benchmark(6)?;
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let result = FastExtractor::new().extract(&mut session)?;

    println!("=== Figure 3 (left): original CSD, physical gate voltages ===");
    println!("{}", AsciiRenderer::new().max_width(100).render(&bench.csd));

    let virtualized = result.matrix.virtualize(&bench.csd)?;
    println!("=== Figure 3 (right): virtualized CSD, virtual gate voltages ===");
    println!(
        "{}",
        AsciiRenderer::new().max_width(100).render(&virtualized)
    );

    println!("extracted matrix: {}", result.matrix);
    let steep_image = result.matrix.map_slope(result.slope_v);
    let shallow_image = result.matrix.map_slope(result.slope_h);
    println!(
        "image of the steep line ({:+.3}): slope {} (target: vertical)",
        result.slope_v,
        if steep_image.abs() > 1e3 {
            "~inf".to_string()
        } else {
            format!("{steep_image:+.3}")
        }
    );
    println!(
        "image of the shallow line ({:+.3}): slope {:+.5} (target: 0)",
        result.slope_h, shallow_image
    );

    // How well does the matrix orthogonalize the *true* device lines?
    let true_steep = result.matrix.map_slope(bench.truth.slope_v);
    let true_shallow = result.matrix.map_slope(bench.truth.slope_h);
    println!(
        "image of the TRUE lines under the extracted matrix: steep {} shallow {:+.4}",
        if true_steep.abs() > 50.0 {
            "~vertical".to_string()
        } else {
            format!("{true_steep:+.2}")
        },
        true_shallow
    );
    Ok(())
}
