//! Regenerates **Figure 7** of the paper: the scatter of data points
//! probed by the fast extraction on benchmarks CSD 6 and CSD 10.
//!
//! Points cluster around the two transition lines, with the extra
//! diagonal/row/column probes of the anchor preprocessing visible — the
//! same structure as the paper's figure. Output is ASCII art plus a CSV
//! dump per benchmark.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin fig7
//! ```

use fastvg_bench::run_fast;
use fastvg_core::report::SuccessCriteria;
use qd_csd::render::AsciiRenderer;
use qd_csd::Pixel;
use qd_dataset::paper_benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let criteria = SuccessCriteria::default();
    for index in [6usize, 10] {
        let bench = paper_benchmark(index)?;
        let run = run_fast(&bench, &criteria);
        println!(
            "=== Figure 7: probed points on CSD {index} ({} probes, {:.2}% of {}x{}) ===",
            run.report.probes,
            100.0 * run.report.coverage,
            bench.spec.size,
            bench.spec.size
        );

        let probed: Vec<Pixel> = run
            .scatter
            .iter()
            .map(|&(x, y)| Pixel::new(x as usize, y as usize))
            .collect();
        let mut renderer = AsciiRenderer::new()
            .max_width(110)
            .with_overlays(probed, 'o');
        if let Some(result) = &run.result {
            renderer = renderer
                .with_overlay(result.anchors.a1, 'A')
                .with_overlay(result.anchors.a2, 'B');
        }
        println!("{}", renderer.render(&bench.csd));

        // CSV for external plotting.
        println!("# csv: x,y (probe order)");
        let csv: Vec<String> = run
            .scatter
            .iter()
            .map(|(x, y)| format!("{x},{y}"))
            .collect();
        println!("{}", csv.join(" "));
        println!();
    }
    Ok(())
}
