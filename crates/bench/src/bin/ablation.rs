//! Ablation studies for the design choices DESIGN.md calls out (A1–A5):
//!
//! * `shrink`   — dynamic triangle shrinking on/off (§4.3.2);
//! * `sweeps`   — row-only vs column-only vs both sweeps (§4.3.2);
//! * `postproc` — erroneous-point filter on/off (Alg. 3);
//! * `anchors`  — mask+Gaussian anchors vs naive max-feature-gradient
//!   anchors (§4.4);
//! * `noise`    — success rate vs white-noise amplitude, per method.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin ablation            # all
//! cargo run --release -p fastvg-bench --bin ablation -- shrink  # one
//! cargo run --release -p fastvg-bench --bin ablation -- --jobs 4
//! cargo run --release -p fastvg-bench --bin ablation -- --out artifacts
//! ```
//!
//! Standard flags: `--jobs N` (every configuration sweep fans its
//! benchmarks out over the batch layer; results are bit-identical for
//! every `N`), `--method fast|hough` (applies to the `noise` study —
//! the configuration sweeps ablate the fast pipeline by definition),
//! `--out DIR` (writes the rendered tables to `ablation.txt`). The
//! `scan` study is the deliberate serial exception: it measures how
//! *probe order* interacts with live drift, so its acquisitions must
//! stay serial.

use fastvg_bench::{run_method_on, Artifacts, BenchArgs, MethodFilter, Tee};
use fastvg_core::anchors::AnchorConfig;
use fastvg_core::baseline::acquire_full_csd_with;
use fastvg_core::extraction::{ExtractorConfig, FastExtractor};
use fastvg_core::fit::FitMethod;
use fastvg_core::report::SuccessCriteria;
use fastvg_core::sweep::SweepConfig;
use qd_dataset::{
    generate_suite, paper_suite_jobs, BenchmarkSpec, GeneratedBenchmark, NoiseRecipe,
};
use qd_instrument::{MeasurementSession, ScanPattern, SourceBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let which: Option<String> = args.positionals().first().map(|s| s.to_string());
    let all = which.is_none();
    let is = |name: &str| all || which.as_deref() == Some(name);
    let mut tee = Tee::new(args.out.is_some());
    let backend = args.resolve_backend();

    // The healthy benchmarks (3..=12) every configuration sweep reuses —
    // rendered only if a sweep study actually runs (`scan`/`noise` build
    // their own inputs).
    let needs_suite = is("shrink") || is("sweeps") || is("postproc") || is("anchors") || is("fit");
    let healthy: Vec<GeneratedBenchmark> = if needs_suite {
        paper_suite_jobs(args.jobs)?
            .into_iter()
            .filter(|b| b.spec.index >= 3)
            .collect()
    } else {
        Vec::new()
    };

    if is("shrink") {
        ablate_shrink(&healthy, backend.as_ref(), args.jobs, &mut tee);
    }
    if is("sweeps") {
        ablate_sweeps(&healthy, backend.as_ref(), args.jobs, &mut tee);
    }
    if is("postproc") {
        ablate_postproc(&healthy, backend.as_ref(), args.jobs, &mut tee);
    }
    if is("anchors") {
        ablate_anchors(&healthy, backend.as_ref(), args.jobs, &mut tee);
    }
    if is("fit") {
        ablate_fit(&healthy, backend.as_ref(), args.jobs, &mut tee);
    }
    if is("scan") {
        ablate_scan(&mut tee)?;
    }
    if is("noise") {
        ablate_noise(args.method, backend.as_ref(), args.jobs, &mut tee)?;
    }

    if let Some(dir) = &args.out {
        let artifacts = Artifacts::at(dir)?;
        let path = artifacts.write("ablation.txt", tee.buffer())?;
        println!("artifact: {}", path.display());
    }
    Ok(())
}

/// Runs a configured extractor over the healthy suite benchmarks with up
/// to `jobs` concurrent sessions and reports successes, mean probes and
/// mean |alpha error| — one generic pass through the unified API.
fn sweep_suite(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    config: ExtractorConfig,
    criteria: &SuccessCriteria,
    jobs: usize,
) -> (usize, f64, f64) {
    let extractor = FastExtractor::with_config(config);
    let runs = run_method_on(backend, &extractor, healthy, criteria, jobs);

    let mut successes = 0;
    let mut probes = 0usize;
    let mut err_sum = 0.0;
    let mut err_count = 0usize;
    for (bench, run) in healthy.iter().zip(&runs) {
        probes += run.report.probes;
        successes += run.report.success as usize;
        if run.report.alpha12.is_finite() {
            err_sum += (run.report.alpha12 - bench.truth.alpha12).abs()
                + (run.report.alpha21 - bench.truth.alpha21).abs();
            err_count += 2;
        }
    }
    let mean_probes = probes as f64 / healthy.len() as f64;
    let mean_err = if err_count > 0 {
        err_sum / err_count as f64
    } else {
        f64::NAN
    };
    (successes, mean_probes, mean_err)
}

/// A1: triangle shrinking on/off.
fn ablate_shrink(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) {
    let criteria = SuccessCriteria::default();
    tee.line("=== A1: dynamic triangle shrinking (10 healthy benchmarks) ===");
    tee.line(format!(
        "{:<12} {:>9} {:>13} {:>12}",
        "shrink", "success", "mean probes", "mean |aerr|"
    ));
    for shrink in [true, false] {
        let cfg = ExtractorConfig {
            sweep: SweepConfig { shrink },
            ..ExtractorConfig::default()
        };
        let (s, p, e) = sweep_suite(healthy, backend, cfg, &criteria, jobs);
        tee.line(format!(
            "{:<12} {:>7}/10 {:>13.0} {:>12.4}",
            shrink, s, p, e
        ));
    }
    tee.line("shrinking buys a large probe reduction at equal or better accuracy\n");
}

/// A2: which sweeps run.
fn ablate_sweeps(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) {
    let criteria = SuccessCriteria::default();
    tee.line("=== A2: sweep selection (10 healthy benchmarks) ===");
    tee.line(format!(
        "{:<14} {:>9} {:>13} {:>12}",
        "sweeps", "success", "mean probes", "mean |aerr|"
    ));
    for (label, row, col) in [
        ("both", true, true),
        ("row-only", true, false),
        ("col-only", false, true),
    ] {
        let cfg = ExtractorConfig {
            row_sweep: row,
            column_sweep: col,
            ..ExtractorConfig::default()
        };
        let (s, p, e) = sweep_suite(healthy, backend, cfg, &criteria, jobs);
        tee.line(format!("{:<14} {:>7}/10 {:>13.0} {:>12.4}", label, s, p, e));
    }
    tee.line("single sweeps are cheaper but miss one line's geometry (§4.3.2)\n");
}

/// A3: post-processing filter on/off.
fn ablate_postproc(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) {
    let criteria = SuccessCriteria::default();
    tee.line("=== A3: erroneous-point filtering (10 healthy benchmarks) ===");
    tee.line(format!(
        "{:<12} {:>9} {:>13} {:>12}",
        "postproc", "success", "mean probes", "mean |aerr|"
    ));
    for postprocess in [true, false] {
        let cfg = ExtractorConfig {
            postprocess,
            ..ExtractorConfig::default()
        };
        let (s, p, e) = sweep_suite(healthy, backend, cfg, &criteria, jobs);
        tee.line(format!(
            "{:<12} {:>7}/10 {:>13.0} {:>12.4}",
            postprocess, s, p, e
        ));
    }
    tee.line("");
}

/// A4: anchor preprocessing quality — paper masks vs a single-pixel
/// feature-gradient scan (no 3-px masks, no Gaussian weighting, emulated
/// by a tiny mask-response window).
fn ablate_anchors(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) {
    let criteria = SuccessCriteria::default();
    tee.line("=== A4: anchor preprocessing (10 healthy benchmarks) ===");
    tee.line(format!(
        "{:<22} {:>9} {:>13} {:>12}",
        "anchor config", "success", "mean probes", "mean |aerr|"
    ));
    for (label, cfg) in [
        ("paper (masks+gauss)", AnchorConfig::default()),
        (
            "flat window (no gauss)",
            AnchorConfig {
                gaussian_sigma_fraction: 1e6, // effectively uniform weighting
                ..AnchorConfig::default()
            },
        ),
        (
            "coarse diagonal (4 pts)",
            AnchorConfig {
                diagonal_points: 4,
                ..AnchorConfig::default()
            },
        ),
    ] {
        let config = ExtractorConfig {
            anchors: cfg,
            ..ExtractorConfig::default()
        };
        let (s, p, e) = sweep_suite(healthy, backend, config, &criteria, jobs);
        tee.line(format!("{:<22} {:>7}/10 {:>13.0} {:>12.4}", label, s, p, e));
    }
    tee.line("");
}

/// A-fit: Nelder–Mead (paper/SciPy-style) vs Levenberg–Marquardt.
fn ablate_fit(
    healthy: &[GeneratedBenchmark],
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) {
    let criteria = SuccessCriteria::default();
    tee.line("=== A-fit: intersection optimizer (10 healthy benchmarks) ===");
    tee.line(format!(
        "{:<22} {:>9} {:>13} {:>12}",
        "fitter", "success", "mean probes", "mean |aerr|"
    ));
    for (label, method) in [
        ("nelder-mead (paper)", FitMethod::NelderMead),
        ("levenberg-marquardt", FitMethod::LevenbergMarquardt),
    ] {
        let cfg = ExtractorConfig {
            fit_method: method,
            ..ExtractorConfig::default()
        };
        let (s, p, e) = sweep_suite(healthy, backend, cfg, &criteria, jobs);
        tee.line(format!("{:<22} {:>7}/10 {:>13.0} {:>12.4}", label, s, p, e));
    }
    tee.line("both fitters agree on this objective; NM handles the kinks natively\n");
}

/// A-scan: acquisition pattern effect on the baseline under live drift.
/// With a frozen (replayed) CSD the pattern is irrelevant; on a live
/// drifting source it rotates the noise streaks, which is visible in the
/// acquired image statistics.
///
/// Deliberately serial: probe *order* is the variable under study, so
/// batching the acquisitions would perturb the experiment.
fn ablate_scan(tee: &mut Tee) -> Result<(), Box<dyn std::error::Error>> {
    use qd_instrument::PhysicsSource;
    use qd_physics::{DeviceBuilder, DriftNoise, SensorModel};

    tee.line("=== A-scan: acquisition pattern vs drift streak orientation ===");
    tee.line(format!(
        "{:<22} {:>16} {:>16}",
        "pattern", "row-streak index", "col-streak index"
    ));

    let make_session =
        || -> Result<MeasurementSession<PhysicsSource>, Box<dyn std::error::Error>> {
            let sensor = SensorModel::new(5.0, 4.0, 3.0, vec![1.0, 0.74], vec![-0.008, -0.008])?;
            let device = DeviceBuilder::double_dot()
                .temperature(0.0015)
                .sensor(sensor)
                .build_array()?;
            let (ix, iy) = device.pair_line_intersection(0, &[0.0, 0.0])?;
            let window = qd_instrument::VoltageWindow {
                x_min: ix - 37.2,
                y_min: iy - 34.8,
                x_max: ix + 22.8,
                y_max: iy + 25.2,
                delta: 60.0 / 99.0,
            };
            let source = PhysicsSource::new(device, 0, 1, vec![0.0, 0.0], window)
                .with_noise(DriftNoise::new(0.02, 0.002), 99);
            Ok(MeasurementSession::new(source))
        };

    for (label, pattern) in [
        ("row-major raster", ScanPattern::RowMajorRaster),
        ("serpentine", ScanPattern::Serpentine),
        ("column-major raster", ScanPattern::ColumnMajorRaster),
    ] {
        let mut session = make_session()?;
        let csd = acquire_full_csd_with(&mut session, pattern)?;
        // Streakiness: variance of row means vs variance of column means
        // of the detrended image. Row-major drift → row streaks → high
        // row index; column-major → high column index.
        let d = csd.detrended();
        let (w, h) = d.size();
        let row_means: Vec<f64> = (0..h)
            .map(|y| (0..w).map(|x| d.at(x, y)).sum::<f64>() / w as f64)
            .collect();
        let col_means: Vec<f64> = (0..w)
            .map(|x| (0..h).map(|y| d.at(x, y)).sum::<f64>() / h as f64)
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        tee.line(format!(
            "{:<22} {:>16.5} {:>16.5}",
            label,
            var(&row_means),
            var(&col_means)
        ));
    }
    tee.line("drift streaks follow the scan axis; serpentine halves the slew, not the streaks\n");
    Ok(())
}

/// A5: noise sensitivity of the selected methods. Each sigma's three
/// seeded benchmarks generate and extract through the batch layer, one
/// generic pass per method.
fn ablate_noise(
    filter: MethodFilter,
    backend: &dyn SourceBackend,
    jobs: usize,
    tee: &mut Tee,
) -> Result<(), Box<dyn std::error::Error>> {
    let criteria = SuccessCriteria::default();
    let extractors = filter.extractors();
    tee.line("=== A5: success vs white-noise sigma (3 seeds each, 100x100) ===");
    let mut header = format!("{:>8}", "sigma");
    for e in &extractors {
        header.push_str(&format!(" {:>16}", e.method().to_string()));
    }
    tee.line(header);
    for sigma in [0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 0.85] {
        let specs: Vec<BenchmarkSpec> = [5u64, 17, 29]
            .iter()
            .map(|&seed| {
                let mut spec = BenchmarkSpec::clean(6, 100);
                spec.seed = seed;
                spec.noise = NoiseRecipe {
                    white_sigma: sigma,
                    ..NoiseRecipe::silent()
                };
                spec
            })
            .collect();
        let benches = generate_suite(&specs, jobs)?;
        let mut row = format!("{sigma:>8.2}");
        for e in &extractors {
            let runs = run_method_on(backend, e.as_ref(), &benches, &criteria, jobs);
            let ok = runs.iter().filter(|r| r.report.success).count();
            row.push_str(&format!(" {:>14}/3", ok));
        }
        tee.line(row);
    }
    tee.line("");
    Ok(())
}
