//! `fastvg-trace` — merges span export files from the client, router
//! and daemons into end-to-end waterfalls, validates trace
//! connectivity, and writes the per-layer latency breakdown artifact.
//!
//! ```sh
//! # Gate a fleet run's trace files (CI trace-smoke):
//! fastvg-trace --gate client.jsonl router.jsonl shard0.jsonl shard1.jsonl
//! # Self-contained study: boot a traced 2-shard fleet, drive it, and
//! # write artifacts/BENCH_trace_breakdown.json:
//! fastvg-trace --study --out artifacts
//! ```
//!
//! Flags:
//!
//! * `FILE...` — newline-JSON span files (the `--trace-out` output of
//!   `fastvg-serve`, `fastvg-router` and `fastvg-loadgen`), merged into
//!   one span set before grouping by trace id.
//! * `--gate` — exit non-zero unless every trace is a *connected
//!   single-root waterfall*: exactly one root span (no parent) and
//!   zero orphans (every parent id resolves inside the trace).
//! * `--top N` — print the N slowest waterfalls (default 3; `0`
//!   silences them).
//! * `--out PATH-OR-DIR` — write `BENCH_trace_breakdown.json` (a
//!   directory gets the default file name inside it).
//! * `--study` — ignore `FILE...`; boot two traced in-process daemons
//!   behind a traced router, drive a cold pass plus repeated hot
//!   passes at sampling 1.0, then repeat the hot pass against an
//!   identical *untraced* fleet, and record the per-layer breakdown
//!   plus the tracing-overhead comparison in the artifact.
//! * `--budget N` — cap the benchmark suite in `--study` (default 12).
//! * `--hot-repeats N` — hot sweeps per fleet in `--study`
//!   (default 20).
//!
//! The breakdown artifact reports p50/p99 per layer — daemon
//! queue-wait, extraction, router proxy overhead (router span minus
//! daemon span), and network residual (client span minus router span)
//! — separately for cold (extracting) and hot (cache-served) requests.
//! See `docs/OBSERVABILITY.md` for the span schema and how to read a
//! waterfall.

use fastvg_obs::Tracer;
use fastvg_wire::{Json, TraceContext, TRACE_HEADER};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed span line.
#[derive(Debug, Clone)]
struct SpanRec {
    trace: u64,
    span: u64,
    parent: Option<u64>,
    layer: String,
    name: String,
    start_us: u64,
    dur_us: u64,
    attrs: BTreeMap<String, String>,
}

impl SpanRec {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }
}

fn parse_hex(value: &Json) -> Option<u64> {
    u64::from_str_radix(value.as_str()?, 16).ok()
}

/// Parses one span line of the `fastvg-obs` export schema.
fn parse_span(line: &str) -> Option<SpanRec> {
    let doc = Json::parse(line.trim()).ok()?;
    Some(SpanRec {
        trace: parse_hex(doc.get("trace")?)?,
        span: parse_hex(doc.get("span")?)?,
        parent: match doc.get("parent") {
            None | Some(Json::Null) => None,
            Some(p) => Some(parse_hex(p)?),
        },
        layer: doc.get("layer")?.as_str()?.to_string(),
        name: doc.get("name")?.as_str()?.to_string(),
        start_us: doc.get("start_us")?.as_u64()?,
        dur_us: doc.get("dur_us")?.as_u64()?,
        attrs: doc
            .get("attrs")
            .and_then(Json::as_obj)
            .map(|obj| {
                obj.iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                    .collect()
            })
            .unwrap_or_default(),
    })
}

/// Reads every file and groups spans by trace id. Exits non-zero on a
/// malformed line — a trace file that does not parse is itself a bug.
fn load_traces(files: &[PathBuf]) -> BTreeMap<u64, Vec<SpanRec>> {
    let mut traces: BTreeMap<u64, Vec<SpanRec>> = BTreeMap::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let span = parse_span(line).unwrap_or_else(|| {
                eprintln!("{}:{}: malformed span line", file.display(), number + 1);
                std::process::exit(2);
            });
            traces.entry(span.trace).or_default().push(span);
        }
    }
    traces
}

/// Connectivity report for one trace.
#[derive(Debug)]
struct Connectivity {
    roots: usize,
    orphans: usize,
}

fn connectivity(spans: &[SpanRec]) -> Connectivity {
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let roots = spans.iter().filter(|s| s.parent.is_none()).count();
    let orphans = spans
        .iter()
        .filter(|s| s.parent.is_some_and(|p| !ids.contains(&p)))
        .count();
    Connectivity { roots, orphans }
}

/// `--gate`: every trace must be a single-root, zero-orphan waterfall.
fn gate(traces: &BTreeMap<u64, Vec<SpanRec>>) -> bool {
    let mut ok = true;
    for (trace, spans) in traces {
        let c = connectivity(spans);
        if c.roots != 1 || c.orphans != 0 {
            eprintln!(
                "gate: trace {trace:016x} is not a connected waterfall \
                 ({} roots, {} orphans, {} spans)",
                c.roots,
                c.orphans,
                spans.len()
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "gate: {} trace(s), every one a connected single-root waterfall",
            traces.len()
        );
    }
    ok
}

/// Prints one trace as an indented waterfall, children ordered by
/// start time.
fn print_waterfall(spans: &[SpanRec]) {
    let mut children: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let mut roots: Vec<&SpanRec> = Vec::new();
    for span in spans {
        match span.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(span),
            _ => roots.push(span),
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| s.start_us);
    }
    roots.sort_by_key(|s| s.start_us);

    fn render(span: &SpanRec, depth: usize, children: &BTreeMap<u64, Vec<&SpanRec>>) {
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  {:indent$}[{:<6}] {:<14} {:>9.3}ms  {}",
            "",
            span.layer,
            span.name,
            span.dur_us as f64 / 1e3,
            attrs.join(" "),
            indent = depth * 2
        );
        for child in children.get(&span.span).map(Vec::as_slice).unwrap_or(&[]) {
            render(child, depth + 1, children);
        }
    }
    for root in roots {
        render(root, 0, &children);
    }
}

/// One trace's per-layer decomposition, all in microseconds. Missing
/// layers (e.g. no router hop) decompose as zero.
#[derive(Debug, Default, Clone, Copy)]
struct Breakdown {
    client_us: u64,
    queue_wait_us: u64,
    extract_us: u64,
    proxy_us: u64,
    residual_us: u64,
    hot: bool,
}

fn breakdown(spans: &[SpanRec]) -> Breakdown {
    let find = |layer: &str, name: &str| -> Option<&SpanRec> {
        spans.iter().find(|s| s.layer == layer && s.name == name)
    };
    let client = find("client", "request").map(|s| s.dur_us);
    let router = find("router", "request").map(|s| s.dur_us);
    let daemon = find("daemon", "request").map(|s| s.dur_us);
    let queue_wait = find("daemon", "queue_wait").map_or(0, |s| s.dur_us);
    let extract = find("daemon", "extract").map_or(0, |s| s.dur_us);
    // The hop costs are differences between enclosing spans: what the
    // router added over the daemon, and what the network/client added
    // over the router (or over the daemon when there is no router).
    // When a cache hit answers at the router the daemon span is
    // absent and the whole router span is proxy-layer time.
    let proxy = router.map_or(0, |r| r.saturating_sub(daemon.unwrap_or(0)));
    let inner = router.or(daemon).unwrap_or(0);
    let residual = client.map_or(0, |c| c.saturating_sub(inner));
    // Hot = the request was answered from a cache anywhere along the
    // path (daemon-local hit or a router peer relay).
    let hot = spans.iter().any(|s| {
        s.name == "request" && matches!(s.attr("outcome"), Some("cache_hit") | Some("peer_hit"))
    });
    Breakdown {
        client_us: client.unwrap_or(0),
        queue_wait_us: queue_wait,
        extract_us: extract,
        proxy_us: proxy,
        residual_us: residual,
        hot,
    }
}

/// Exact nearest-rank percentile.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn quantile_doc(values: &mut [f64]) -> Json {
    values.sort_by(f64::total_cmp);
    Json::object()
        .field("p50_us", Json::num(percentile(values, 0.50)))
        .field("p99_us", Json::num(percentile(values, 0.99)))
        .build()
}

/// Aggregates one class (cold or hot) of breakdowns into p50/p99 docs.
fn class_doc(rows: &[Breakdown]) -> Json {
    let collect = |f: fn(&Breakdown) -> u64| -> Json {
        let mut values: Vec<f64> = rows.iter().map(|b| f(b) as f64).collect();
        quantile_doc(&mut values)
    };
    Json::object()
        .field("count", rows.len())
        .field("queue_wait_us", collect(|b| b.queue_wait_us))
        .field("extract_us", collect(|b| b.extract_us))
        .field("proxy_us", collect(|b| b.proxy_us))
        .field("residual_us", collect(|b| b.residual_us))
        .field("client_us", collect(|b| b.client_us))
        .build()
}

/// The artifact body for a span set, minus any study-only extras.
fn breakdown_doc(traces: &BTreeMap<u64, Vec<SpanRec>>) -> Json {
    let rows: Vec<Breakdown> = traces.values().map(|spans| breakdown(spans)).collect();
    let (hot, cold): (Vec<Breakdown>, Vec<Breakdown>) = rows.into_iter().partition(|b| b.hot);
    Json::object()
        .field("bench", "trace_breakdown")
        .field("traces", traces.len())
        .field("cold", class_doc(&cold))
        .field("hot", class_doc(&hot))
        .build()
}

fn write_artifact(out: &Path, doc: &Json) {
    let path = if out.extension().is_some() {
        out.to_path_buf()
    } else {
        std::fs::create_dir_all(out).expect("create artifact dir");
        out.join("BENCH_trace_breakdown.json")
    };
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, doc.pretty()).expect("write artifact");
    println!("artifact: {}", path.display());
}

fn print_top(traces: &BTreeMap<u64, Vec<SpanRec>>, top: usize) {
    let mut slowest: Vec<(&u64, &Vec<SpanRec>)> = traces.iter().collect();
    slowest.sort_by_key(|(_, spans)| {
        std::cmp::Reverse(
            spans
                .iter()
                .filter(|s| s.parent.is_none())
                .map(|s| s.dur_us)
                .max()
                .unwrap_or(0),
        )
    });
    for (trace, spans) in slowest.into_iter().take(top) {
        let total = spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.dur_us)
            .max()
            .unwrap_or(0);
        println!(
            "trace {trace:016x}: {:.3}ms, {} spans",
            total as f64 / 1e3,
            spans.len()
        );
        print_waterfall(spans);
    }
}

// ---------------------------------------------------------------------
// --study: self-contained traced-fleet breakdown + overhead comparison.
// ---------------------------------------------------------------------

/// Drives `benchmarks` through `addr` once per repeat, optionally
/// minting a client root span per request; returns per-request wall
/// times.
fn sweep(
    addr: &str,
    benchmarks: &[usize],
    repeats: usize,
    tracer: Option<&Arc<Tracer>>,
    pass: &str,
) -> Vec<Duration> {
    use fastvg_serve::ClientConfig;
    let mut client = ClientConfig::new()
        .connect_timeout(Duration::from_secs(10))
        .retries(10, Duration::from_millis(20))
        .connect(addr)
        .expect("connect to fleet");
    let mut latencies = Vec::with_capacity(benchmarks.len() * repeats);
    for _ in 0..repeats {
        for &benchmark in benchmarks {
            let body = format!("{{\"benchmark\": {benchmark}, \"method\": \"fast\"}}");
            let sent = Instant::now();
            let response = match tracer {
                Some(tracer) => {
                    let mut span = tracer.root("request");
                    span.attr("benchmark", benchmark.to_string());
                    span.attr("pass", pass.to_string());
                    let ctx = span.context();
                    let header = TraceContext {
                        trace: ctx.trace.0,
                        span: ctx.span.0,
                    }
                    .encode();
                    client.send_with_headers(
                        "POST",
                        "/extract?wait",
                        body.as_bytes(),
                        &[(TRACE_HEADER, &header)],
                    )
                }
                None => client.post("/extract?wait", body.as_bytes()),
            }
            .expect("request completes");
            assert_eq!(response.status, 200, "benchmark {benchmark} failed");
            latencies.push(sent.elapsed());
        }
    }
    latencies
}

fn p99_ms(latencies: &[Duration]) -> f64 {
    let mut ms: Vec<f64> = latencies.iter().map(|l| l.as_secs_f64() * 1e3).collect();
    ms.sort_by(f64::total_cmp);
    percentile(&ms, 0.99)
}

/// Boots a 2-shard router-fronted fleet; `trace_dir` turns on span
/// export for every process (plus deterministic ids).
fn boot_fleet(
    trace_dir: Option<&Path>,
) -> (
    fastvg_router::RouterHandle,
    Vec<fastvg_serve::ServiceHandle>,
    Vec<PathBuf>,
) {
    use fastvg_router::{start as start_router, RouterConfig, ShardSpec};
    use fastvg_serve::{start, ServeConfig};

    let mut files = Vec::new();
    let daemons: Vec<fastvg_serve::ServiceHandle> = (0..2)
        .map(|i| {
            let mut config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..ServeConfig::default()
            };
            if let Some(dir) = trace_dir {
                let path = dir.join(format!("trace_shard{i}.jsonl"));
                config.trace_out = Some(path.clone());
                config.trace_seed = Some(0x5eed + i as u64);
                files.push(path);
            }
            start(config).expect("boot study daemon")
        })
        .collect();
    let mut config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: daemons
            .iter()
            .map(|d| ShardSpec::new(d.addr().to_string()))
            .collect(),
        health_interval: Duration::from_millis(500),
        ..RouterConfig::default()
    };
    if let Some(dir) = trace_dir {
        let path = dir.join("trace_router.jsonl");
        config.trace_out = Some(path.clone());
        config.trace_seed = Some(0x1007e5);
        files.push(path);
    }
    let router = start_router(config).expect("boot study router");
    (router, daemons, files)
}

fn stop_fleet(router: fastvg_router::RouterHandle, daemons: Vec<fastvg_serve::ServiceHandle>) {
    router.shutdown();
    router.join();
    for daemon in daemons {
        daemon.shutdown();
        daemon.join();
    }
}

/// The study: traced cold + hot sweeps through a traced fleet, an
/// untraced hot sweep through an identical quiet fleet, then merge,
/// gate, and write the artifact.
fn study(out: &Path, budget: usize, hot_repeats: usize) {
    let mut benchmarks: Vec<usize> = (1..=12).collect();
    benchmarks.truncate(budget.max(1));

    let trace_dir = std::env::temp_dir().join(format!("fastvg-trace-{}", std::process::id()));
    std::fs::create_dir_all(&trace_dir).expect("create trace dir");

    // Traced fleet: everything exports spans, every request traced.
    let (router, daemons, mut files) = boot_fleet(Some(&trace_dir));
    let addr = router.addr().to_string();
    let client_tracer = Tracer::new("client", 0xc11e47);
    let client_file = trace_dir.join("trace_client.jsonl");
    client_tracer
        .set_file(&client_file)
        .expect("open client trace file");
    files.push(client_file);

    println!(
        "study: traced 2-shard fleet at {addr}, {} cold + {} hot requests",
        benchmarks.len(),
        benchmarks.len() * hot_repeats
    );
    let cold = sweep(&addr, &benchmarks, 1, Some(&client_tracer), "cold");
    let hot = sweep(&addr, &benchmarks, hot_repeats, Some(&client_tracer), "hot");
    client_tracer.flush();
    stop_fleet(router, daemons);

    // Untraced fleet: same topology, no export, no headers — the
    // overhead baseline.
    let (router, daemons, _) = boot_fleet(None);
    let quiet_addr = router.addr().to_string();
    let _warm = sweep(&quiet_addr, &benchmarks, 1, None, "cold");
    let untraced_hot = sweep(&quiet_addr, &benchmarks, hot_repeats, None, "hot");
    stop_fleet(router, daemons);

    let traces = load_traces(&files);
    assert!(gate(&traces), "study traces must form connected waterfalls");
    assert_eq!(
        traces.len(),
        cold.len() + hot.len(),
        "one trace per traced request"
    );

    let traced_p99 = p99_ms(&hot);
    let untraced_p99 = p99_ms(&untraced_hot);
    let delta_pct = if untraced_p99 > 0.0 {
        (traced_p99 - untraced_p99) / untraced_p99 * 100.0
    } else {
        0.0
    };
    println!(
        "study: hot p99 traced {traced_p99:.3}ms vs untraced {untraced_p99:.3}ms ({delta_pct:+.1}%)"
    );

    let doc_base = breakdown_doc(&traces);
    let mut builder = Json::object();
    for (key, value) in doc_base.as_obj().expect("breakdown doc is an object") {
        builder = builder.field(key.as_str(), value.clone());
    }
    let doc = builder
        .field("suite", "paper12")
        .field("shards", 2u32)
        .field("hot_repeats", hot_repeats)
        .field(
            "overhead",
            Json::object()
                .field("sampling", Json::num(1.0))
                .field("traced_hot_p99_ms", Json::num(traced_p99))
                .field("untraced_hot_p99_ms", Json::num(untraced_p99))
                .field("delta_pct", Json::num(delta_pct))
                .build(),
        )
        .build();
    write_artifact(out, &doc);

    let _ = std::fs::remove_dir_all(&trace_dir);
}

fn main() {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut do_gate = false;
    let mut do_study = false;
    let mut top = 3usize;
    let mut out: Option<PathBuf> = None;
    let mut budget = 12usize;
    let mut hot_repeats = 20usize;

    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} expects a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => do_gate = true,
            "--study" => do_study = true,
            "--top" => top = value("--top", &mut args).parse().expect("--top expects N"),
            "--out" => out = Some(value("--out", &mut args).into()),
            "--budget" => {
                budget = value("--budget", &mut args)
                    .parse()
                    .expect("--budget expects N")
            }
            "--hot-repeats" => {
                hot_repeats = value("--hot-repeats", &mut args)
                    .parse()
                    .expect("--hot-repeats expects N")
            }
            other if other.starts_with("--") => panic!("unknown flag {other:?}"),
            file => files.push(file.into()),
        }
    }

    if do_study {
        let out = out.unwrap_or_else(|| PathBuf::from("target/artifacts"));
        study(&out, budget, hot_repeats);
        return;
    }

    assert!(
        !files.is_empty(),
        "pass span files (or --study); see the crate docs"
    );
    let traces = load_traces(&files);
    println!(
        "{} span file(s), {} trace(s), {} span(s)",
        files.len(),
        traces.len(),
        traces.values().map(Vec::len).sum::<usize>()
    );
    print_top(&traces, top);
    if let Some(out) = &out {
        write_artifact(out, &breakdown_doc(&traces));
    }
    if do_gate && !gate(&traces) {
        std::process::exit(1);
    }
}
