//! Shared-channel scaling: the 12-benchmark suite through the
//! `multiplexed:<N>` backend at K concurrent sessions.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin fastvg-mux
//! cargo run --release -p fastvg-bench --bin fastvg-mux -- --gate --out artifacts
//! ```
//!
//! Every (K, N) config runs the fast extraction over the paper suite
//! twice: once through `multiplexed:<N>` over `sim` (bit-identity
//! check against a plain serial `sim` reference — the pool must never
//! leak into extraction bytes) and once over `throttled:1ms` (real
//! per-probe settle, so wall clock shows how much serial channel time
//! the schedule turns into overlapped dwell). The dwell-overlap ratio
//! is total settle time over wall: ~1.0 serial, approaching K when K
//! sessions' settle windows overlap while the shared channel's dwell
//! slots stay collision-free.
//!
//! A final pass re-runs the contended (K=4, N=1) config under the
//! equi-difference scheduler: bytes must not move (scheduler choice is
//! accounting, not physics), while the pool's virtual counters show
//! the CAC codewords' burst pacing (clean vs stalled acquires).
//!
//! `--gate` exits non-zero unless every config is bit-identical and
//! the contended config holds the overlap floor — the shared-channel
//! counterpart of the Table 1 gate.

use fastvg_bench::{fmt_secs, run_method_on, Artifacts, BenchArgs, MethodRun, Tee};
use fastvg_core::extraction::FastExtractor;
use fastvg_core::report::SuccessCriteria;
use fastvg_wire::Json;
use qd_dataset::paper_suite_jobs;
use qd_instrument::{BackendRegistry, MuxStats, SimBackend};
use std::time::{Duration, Instant};

/// Per-probe settle imposed by the throttled inner backend. Large
/// enough that dwell dominates compute (so overlap measures the
/// schedule, not the extractor), small enough that the whole sweep
/// stays a few seconds.
const DWELL: &str = "2ms";
/// Session counts swept (the K axis).
const SESSIONS: [usize; 4] = [1, 2, 4, 8];
/// Channel counts swept (the N axis).
const CHANNELS: [usize; 2] = [1, 2];
/// Overlap floor for the contended config: 0.75 × K at K = 4 on one
/// throttled channel (serial is 1.0).
const GATE_MIN_OVERLAP: f64 = 3.0;
const GATE_SESSIONS: usize = 4;
const GATE_CHANNELS: usize = 1;

/// The bit-identity fingerprint of one benchmark's outcome: everything
/// deterministic a run produces (probe count, coverage, both alphas,
/// success, the dwell-costing probe scatter in first-probe order).
/// Wall-clock fields are excluded — they are the one thing multiplexing
/// *should* change.
#[derive(Clone, PartialEq, Eq)]
struct Fingerprint {
    probes: usize,
    coverage: u64,
    alpha12: u64,
    alpha21: u64,
    success: bool,
    scatter: Vec<(i64, i64)>,
}

fn fingerprint(run: &MethodRun) -> Fingerprint {
    Fingerprint {
        probes: run.report.probes,
        coverage: run.report.coverage.to_bits(),
        alpha12: run.report.alpha12.to_bits(),
        alpha21: run.report.alpha21.to_bits(),
        success: run.report.success,
        scatter: run.scatter.clone(),
    }
}

/// One (K, N) config's measurements.
struct ConfigRun {
    sessions: usize,
    channels: usize,
    sim_identical: bool,
    throttled_identical: bool,
    wall: Duration,
    dwell: Duration,
    overlap: f64,
    busy_fraction: f64,
    wait: Duration,
}

/// Runs the fast method over the suite through `spec` at `jobs`
/// concurrent sessions, returning the scored runs, the wall clock, and
/// the backend's pool stats (when it multiplexes).
fn run_config(
    registry: &BackendRegistry,
    spec: &str,
    benches: &[qd_dataset::GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs: usize,
) -> (Vec<MethodRun>, Duration, Option<MuxStats>) {
    let backend = registry
        .resolve(spec)
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
    let start = Instant::now();
    let runs = run_method_on(
        backend.as_ref(),
        &FastExtractor::new(),
        benches,
        criteria,
        jobs,
    );
    let wall = start.elapsed();
    let stats = backend.channel_pool().map(|p| p.stats());
    (runs, wall, stats)
}

fn identical(reference: &[Fingerprint], runs: &[MethodRun]) -> bool {
    reference.len() == runs.len()
        && reference
            .iter()
            .zip(runs)
            .all(|(r, run)| *r == fingerprint(run))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let gate = args.has_flag("--gate");
    let registry = BackendRegistry::standard();
    let criteria = SuccessCriteria::default();
    let benches = paper_suite_jobs(args.jobs)?;
    println!(
        "mux scaling: {} benchmarks, K in {SESSIONS:?} sessions x N in {CHANNELS:?} channels, \
         {DWELL} settle per probe",
        benches.len()
    );

    // The unmultiplexed truth: plain sim, serial.
    let reference: Vec<Fingerprint> =
        run_method_on(&SimBackend, &FastExtractor::new(), &benches, &criteria, 1)
            .iter()
            .map(fingerprint)
            .collect();
    let dwell = qd_instrument::backend::parse_dwell(DWELL).expect("DWELL parses");

    // Longest-settle-first order for the timing legs: workers pull jobs
    // in index order, so a probe-heavy benchmark landing last leaves
    // one worker grinding alone — the classic makespan tail. Sorting by
    // the reference probe counts is plain LPT scheduling; it changes
    // which worker runs which benchmark, never what any run produces
    // (the identity legs keep natural order to exercise that path too).
    let mut order: Vec<usize> = (0..benches.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(reference[i].probes));
    let lpt_benches: Vec<qd_dataset::GeneratedBenchmark> =
        order.iter().map(|&i| benches[i].clone()).collect();
    let lpt_reference: Vec<Fingerprint> = order.iter().map(|&i| reference[i].clone()).collect();

    let mut tee = Tee::new(args.out.is_some());
    tee.line(format!(
        "{:>3} {:>3} | {:>9} {:>9} {:>8} | {:>6} {:>9} | {:>9}",
        "K", "N", "wall", "dwell", "overlap", "busy", "wait", "identical"
    ));
    tee.line("-".repeat(72));

    let mut configs: Vec<ConfigRun> = Vec::new();
    for &channels in &CHANNELS {
        for &sessions in &SESSIONS {
            // Identity leg: the pool over pure simulation. Readings,
            // probe order and scoring must be exactly the reference's.
            let (sim_runs, _, _) = run_config(
                &registry,
                &format!("multiplexed:{channels}"),
                &benches,
                &criteria,
                sessions,
            );
            let sim_identical = identical(&reference, &sim_runs);

            // Timing leg: the pool over a real per-probe settle.
            let (runs, wall, stats) = run_config(
                &registry,
                &format!("multiplexed:{channels}+throttled:{DWELL}"),
                &lpt_benches,
                &criteria,
                sessions,
            );
            let throttled_identical = identical(&lpt_reference, &runs);
            let stats = stats.expect("multiplexed backends expose their pool");
            let total_probes: usize = runs.iter().map(|r| r.report.probes).sum();
            let total_dwell = dwell * u32::try_from(total_probes).unwrap_or(u32::MAX);
            let overlap = total_dwell.as_secs_f64() / wall.as_secs_f64().max(1e-9);
            let config = ConfigRun {
                sessions,
                channels,
                sim_identical,
                throttled_identical,
                wall,
                dwell: total_dwell,
                overlap,
                busy_fraction: stats.busy_fraction(),
                wait: stats.wait(),
            };
            tee.line(format!(
                "{:>3} {:>3} | {:>9} {:>9} {:>7.2}x | {:>6.3} {:>9} | {:>9}",
                config.sessions,
                config.channels,
                fmt_secs(config.wall),
                fmt_secs(config.dwell),
                config.overlap,
                config.busy_fraction,
                fmt_secs(config.wait),
                if config.sim_identical && config.throttled_identical {
                    "yes"
                } else {
                    "NO"
                },
            ));
            configs.push(config);
        }
    }
    tee.line("-".repeat(72));

    // Scheduler A/B at the contended config: equi-difference must not
    // move a byte, only the pacing counters.
    let rr_spec = format!("multiplexed:{GATE_CHANNELS}+throttled:{DWELL}");
    let ed_spec = format!("multiplexed:{GATE_CHANNELS},policy=ed+throttled:{DWELL}");
    let (_, _, rr_stats) = run_config(&registry, &rr_spec, &lpt_benches, &criteria, GATE_SESSIONS);
    let (ed_runs, _, ed_stats) =
        run_config(&registry, &ed_spec, &lpt_benches, &criteria, GATE_SESSIONS);
    let ed_identical = identical(&lpt_reference, &ed_runs);
    let (rr_stats, ed_stats) = (rr_stats.expect("pool"), ed_stats.expect("pool"));
    let acquires = |s: &MuxStats| -> (u64, u64) {
        s.channels
            .iter()
            .fold((0, 0), |(c, st), ch| (c + ch.clean, st + ch.stalled))
    };
    let (rr_clean, rr_stalled) = acquires(&rr_stats);
    let (ed_clean, ed_stalled) = acquires(&ed_stats);
    tee.line(format!(
        "scheduler A/B at K={GATE_SESSIONS}, N={GATE_CHANNELS}: \
         rr {rr_clean} clean / {rr_stalled} stalled, \
         ed {ed_clean} clean / {ed_stalled} stalled, bytes {}",
        if ed_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    ));

    let contended = configs
        .iter()
        .find(|c| c.sessions == GATE_SESSIONS && c.channels == GATE_CHANNELS)
        .expect("gate config is in the sweep");
    let all_identical = ed_identical
        && configs
            .iter()
            .all(|c| c.sim_identical && c.throttled_identical);
    tee.line(format!(
        "contended overlap (K={GATE_SESSIONS}, N={GATE_CHANNELS}): {:.2}x of {GATE_SESSIONS} \
         (serial = 1.0)",
        contended.overlap
    ));

    let artifacts = Artifacts::at(&args.out_dir("target/artifacts"))?;
    let json_configs: Vec<Json> = configs
        .iter()
        .map(|c| {
            Json::object()
                .field("sessions", c.sessions)
                .field("channels", c.channels)
                .field("bit_identical_sim", c.sim_identical)
                .field("bit_identical_throttled", c.throttled_identical)
                .field("wall_s", Json::num(c.wall.as_secs_f64()))
                .field("dwell_s", Json::num(c.dwell.as_secs_f64()))
                .field("dwell_overlap_ratio", Json::num(c.overlap))
                .field("channel_busy_fraction", Json::num(c.busy_fraction))
                .field("channel_wait_s", Json::num(c.wait.as_secs_f64()))
                .build()
        })
        .collect();
    let scheduler_ab = Json::object()
        .field("sessions", GATE_SESSIONS)
        .field("channels", GATE_CHANNELS)
        .field("bit_identical", ed_identical)
        .field(
            "round_robin",
            Json::object()
                .field("clean_acquires", rr_clean)
                .field("stalled_acquires", rr_stalled)
                .build(),
        )
        .field(
            "equi_difference",
            Json::object()
                .field("clean_acquires", ed_clean)
                .field("stalled_acquires", ed_stalled)
                .build(),
        )
        .build();
    let json = Json::object()
        .field("bench", "mux_scaling")
        .field("benchmarks", benches.len())
        .field("probe_dwell", DWELL)
        .field("all_bit_identical", all_identical)
        .field("contended_overlap", Json::num(contended.overlap))
        .field(
            "gate",
            Json::object()
                .field("sessions", GATE_SESSIONS)
                .field("channels", GATE_CHANNELS)
                .field("min_overlap", Json::num(GATE_MIN_OVERLAP))
                .build(),
        )
        .field("configs", json_configs)
        .field("scheduler_ab", scheduler_ab)
        .build();
    artifacts.write("BENCH_mux_scaling.json", &json.pretty())?;
    if args.out.is_some() {
        artifacts.write("mux_scaling.txt", &tee.take())?;
    }
    println!("artifacts: {}", artifacts.dir().display());

    if gate {
        let overlap_ok = contended.overlap >= GATE_MIN_OVERLAP;
        if !(all_identical && overlap_ok) {
            eprintln!(
                "mux gate FAILED: bit-identical {all_identical} (need true at every (K, N)), \
                 contended overlap {:.3} (need >= {GATE_MIN_OVERLAP})",
                contended.overlap
            );
            std::process::exit(1);
        }
        println!(
            "mux gate passed: bit-identical at every (K, N), contended overlap {:.2}x",
            contended.overlap
        );
    }
    Ok(())
}
