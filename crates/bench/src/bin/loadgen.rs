//! `fastvg-loadgen` — drives a running `fastvg-serve` daemon with
//! concurrent connections over the 12-benchmark suite and records the
//! service's throughput/latency/cache profile as
//! `BENCH_serve_throughput.json` (the cross-PR perf artifact, next to
//! `BENCH_batch_throughput.json`).
//!
//! ```sh
//! # Against an external daemon:
//! cargo run --release -p fastvg-bench --bin fastvg-loadgen -- \
//!     --addr 127.0.0.1:8737 --connections 4 --passes 2 --out artifacts
//! # Self-contained (boots an in-process daemon on an ephemeral port):
//! cargo run --release -p fastvg-bench --bin fastvg-loadgen -- --spawn
//! ```
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — daemon to drive (required unless `--spawn`).
//! * `--spawn` — boot an in-process daemon instead (ephemeral port).
//! * `--fleet N` — run the self-contained fleet-scaling study instead
//!   of the single-daemon passes: boot 1/2/4-shard (capped at `N`)
//!   router-fronted fleets in-process, measure cold/hot throughput per
//!   count, then demonstrate cache peering under resharding. Writes
//!   `BENCH_fleet_scaling.json`; ignores `--addr`/`--spawn`/`--rate`.
//! * `--connections N` — concurrent keep-alive connections (default 4;
//!   thousands are fine — connection threads are small-stack and the
//!   daemon's reactor multiplexes them on one thread).
//! * `--passes N` — sweeps over the suite (default 2: a cold pass that
//!   populates the result cache, then a hot pass that must hit it).
//! * `--rate R` — open-loop arrivals per second for the post-cold
//!   passes: requests fire on a fixed schedule regardless of response
//!   progress, and latency is measured from the *scheduled* arrival, so
//!   overload shows up as queueing delay instead of being silently
//!   absorbed (no coordinated omission). Without `--rate`, post-cold
//!   passes stay closed-loop like the cold one.
//! * `--requests N` — requests per open-loop pass (default
//!   `max(2 × connections, suite size)`; only meaningful with `--rate`).
//! * `--method fast|hough|tuned` — extraction method (default fast).
//! * `--budget N` — cap the benchmark suite (CI smoke; default all 12).
//! * `--wait-healthz SECS` — poll `GET /healthz` up to a deadline before
//!   driving load (lets scripts race the daemon boot).
//! * `--expect-cache-hits` — exit non-zero unless every post-cold
//!   request was a cache hit.
//! * `--remote-check` — after the passes, run paper benchmark 6 through
//!   a [`fastvg_serve::RemoteExtractor`] and a local `Pipeline`, both
//!   via the same `&dyn Extractor` batch path, and exit non-zero unless
//!   the two `ExtractionReport`s agree bit-for-bit (slopes, matrix,
//!   probes, coverage) — the end-to-end proof that the daemon is a
//!   drop-in extractor.
//! * `--record-tape PATH` — tape the local comparison run's probes to
//!   `PATH` (implies nothing by itself; with `--remote-check` the tape
//!   is also replayed strictly and must reproduce the local report).
//! * `--trace-sample F` — mint a client root span and an
//!   `x-fastvg-trace` header on fraction `F` of requests (stride
//!   sampling; `1.0` traces everything, default `0` traces nothing).
//!   See `docs/OBSERVABILITY.md` for the header contract.
//! * `--trace-out PATH` — write the client spans as newline-JSON to
//!   `PATH` (merge with the daemons'/router's files via `fastvg-trace`).
//! * `--out DIR` — artifact directory (default `target/artifacts`).
//!
//! Artifacts: `BENCH_serve_throughput.json` (per-pass rps + p50/p95/p99)
//! and `BENCH_serve_latency_histogram.json` — per-pass log-bucket
//! latency histograms using the daemon's own bucket layout
//! ([`fastvg_serve::Histogram`]), schema
//! `{"passes": [{"pass", "mode", "count", "sum_s",
//! "buckets": [{"le_us": bound-or-null, "count"}…]}]}` with `le_us:
//! null` as the `+Inf` bucket.
//!
//! On startup the generator asserts the daemon's `/healthz` build info:
//! the reported crate version must match its own — and that `/metrics`
//! advertises the same version and git revision via
//! `fastvg_build_info` — so CI never load-tests a stale binary.
//!
//! Every request uses `?wait`, so a request's latency is the service's
//! end-to-end job latency (queue + schedule + extract + serialize).
//! The run fails (non-zero exit) on any transport/HTTP failure, and on
//! any response whose bytes differ from the first pass — the over-the-
//! wire restatement of the cache byte-identity guarantee.

use fastvg_obs::{IdGen, Tracer};
use fastvg_serve::{start, Client, ClientConfig, Histogram, ServeConfig};
use fastvg_wire::{Json, TraceContext, TRACE_HEADER};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    addr: Option<String>,
    spawn: bool,
    fleet: Option<usize>,
    connections: usize,
    passes: usize,
    rate: Option<f64>,
    requests: Option<usize>,
    method: String,
    budget: Option<usize>,
    wait_healthz: Option<u64>,
    expect_cache_hits: bool,
    remote_check: bool,
    record_tape: Option<std::path::PathBuf>,
    trace_sample: f64,
    trace_out: Option<std::path::PathBuf>,
    out: std::path::PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: None,
            spawn: false,
            fleet: None,
            connections: 4,
            passes: 2,
            rate: None,
            requests: None,
            method: "fast".to_string(),
            budget: None,
            wait_healthz: None,
            expect_cache_hits: false,
            remote_check: false,
            record_tape: None,
            trace_sample: 0.0,
            trace_out: None,
            out: std::path::PathBuf::from("target/artifacts"),
        }
    }
}

fn parse_args() -> Args {
    let mut parsed = Args::default();
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} expects a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value("--addr", &mut args)),
            "--spawn" => parsed.spawn = true,
            "--fleet" => {
                parsed.fleet = Some(
                    value("--fleet", &mut args)
                        .parse()
                        .expect("--fleet expects a shard count"),
                )
            }
            "--connections" => {
                parsed.connections = value("--connections", &mut args)
                    .parse()
                    .expect("--connections expects a number")
            }
            "--passes" => {
                parsed.passes = value("--passes", &mut args)
                    .parse()
                    .expect("--passes expects a number")
            }
            "--rate" => {
                parsed.rate = Some(
                    value("--rate", &mut args)
                        .parse()
                        .expect("--rate expects requests per second"),
                )
            }
            "--requests" => {
                parsed.requests = Some(
                    value("--requests", &mut args)
                        .parse()
                        .expect("--requests expects a number"),
                )
            }
            "--method" => parsed.method = value("--method", &mut args),
            "--budget" => {
                parsed.budget = Some(
                    value("--budget", &mut args)
                        .parse()
                        .expect("--budget expects a number"),
                )
            }
            "--wait-healthz" => {
                parsed.wait_healthz = Some(
                    value("--wait-healthz", &mut args)
                        .parse()
                        .expect("--wait-healthz expects seconds"),
                )
            }
            "--expect-cache-hits" => parsed.expect_cache_hits = true,
            "--remote-check" => parsed.remote_check = true,
            "--record-tape" => parsed.record_tape = Some(value("--record-tape", &mut args).into()),
            "--trace-sample" => {
                parsed.trace_sample = value("--trace-sample", &mut args)
                    .parse()
                    .expect("--trace-sample expects a fraction")
            }
            "--trace-out" => parsed.trace_out = Some(value("--trace-out", &mut args).into()),
            "--out" => parsed.out = value("--out", &mut args).into(),
            other => panic!("unknown flag {other:?}"),
        }
    }
    assert!(
        matches!(parsed.method.as_str(), "fast" | "hough" | "tuned"),
        "--method expects fast|hough|tuned"
    );
    parsed.connections = parsed.connections.max(1);
    parsed.passes = parsed.passes.max(1);
    if let Some(rate) = parsed.rate {
        assert!(
            rate.is_finite() && rate > 0.0,
            "--rate expects a positive requests-per-second value"
        );
    }
    assert!(
        (0.0..=1.0).contains(&parsed.trace_sample),
        "--trace-sample expects a fraction in [0, 1]"
    );
    parsed
}

/// Client-side tracing: a `client`-layer tracer plus the stride sampler
/// deciding which requests carry an `x-fastvg-trace` header. Shared by
/// every connection thread (the counter is the cross-thread stride).
struct ClientTrace {
    tracer: Arc<Tracer>,
    sample: f64,
    counter: AtomicU64,
}

impl ClientTrace {
    fn new(args: &Args) -> Option<Self> {
        if args.trace_sample <= 0.0 {
            return None;
        }
        let tracer = Tracer::new("client", IdGen::from_entropy().next_id());
        if let Some(path) = &args.trace_out {
            tracer.set_file(path).expect("open --trace-out file");
        }
        Some(Self {
            tracer,
            sample: args.trace_sample,
            counter: AtomicU64::new(0),
        })
    }

    /// Stride sampling: request `n` is traced iff the running total
    /// `n × sample` crosses an integer — exact long-run rate, no RNG.
    fn should_sample(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        ((n + 1) as f64 * self.sample).floor() > (n as f64 * self.sample).floor()
    }

    fn flush(&self) {
        self.tracer.flush();
    }
}

/// One request's record.
#[derive(Debug, Clone)]
struct Sample {
    benchmark: usize,
    status: u16,
    /// The `x-fastvg-cache` header: `hit` (local cache), `peer` (served
    /// from a sibling shard's cache through the router), or `miss`.
    cache: String,
    latency: Duration,
    body: Vec<u8>,
}

impl Sample {
    /// Whether the request avoided extraction — a local *or* peered
    /// cache hit. `--expect-cache-hits` accepts both: through a router,
    /// a warm fleet legitimately answers `peer` while seeds propagate.
    fn is_hit(&self) -> bool {
        matches!(self.cache.as_str(), "hit" | "peer")
    }
}

/// Exact percentile over the recorded samples (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// The shared connect policy: generous retries so thousands of
/// simultaneous connects survive accept-backlog overflow.
fn connect_client(addr: &str) -> Client {
    ClientConfig::new()
        .connect_timeout(Duration::from_secs(10))
        .retries(10, Duration::from_millis(20))
        .connect(addr)
        .expect("connect to daemon")
}

fn post_extract(
    client: &mut Client,
    benchmark: usize,
    method: &str,
    trace: Option<&ClientTrace>,
) -> fastvg_serve::ClientResponse {
    let body = format!("{{\"benchmark\": {benchmark}, \"method\": \"{method}\"}}");
    let span = trace.filter(|t| t.should_sample()).map(|t| {
        let mut span = t.tracer.root("request");
        span.attr("benchmark", benchmark.to_string());
        span
    });
    let response = match &span {
        Some(span) => {
            let ctx = span.context();
            let header = TraceContext {
                trace: ctx.trace.0,
                span: ctx.span.0,
            }
            .encode();
            client.send_with_headers(
                "POST",
                "/extract?wait",
                body.as_bytes(),
                &[(TRACE_HEADER, &header)],
            )
        }
        None => client.post("/extract?wait", body.as_bytes()),
    };
    // The span drops here, recording the request's full wall time.
    response.expect("request completes")
}

/// Closed-loop pass: each connection fires its share of the suite
/// back-to-back; latency is service time (send → response).
fn drive_pass(
    addr: &str,
    benchmarks: &[usize],
    connections: usize,
    method: &str,
    trace: Option<&ClientTrace>,
) -> (Vec<Sample>, Duration) {
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                std::thread::Builder::new()
                    .stack_size(192 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut client = connect_client(addr);
                        let mut collected = Vec::new();
                        // Static round-robin: connection c takes
                        // benchmarks c, c+connections, ...
                        for &benchmark in benchmarks.iter().skip(c).step_by(connections) {
                            let sent = Instant::now();
                            let response = post_extract(&mut client, benchmark, method, trace);
                            let cache = response
                                .header("x-fastvg-cache")
                                .unwrap_or("miss")
                                .to_string();
                            collected.push(Sample {
                                benchmark,
                                status: response.status,
                                cache,
                                latency: sent.elapsed(),
                                body: response.body,
                            });
                        }
                        collected
                    })
                    .expect("spawn connection thread")
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("connection thread"))
            .collect()
    });
    (samples, started.elapsed())
}

/// Open-loop pass: `total` arrivals at `rate` req/s on a fixed global
/// schedule, round-robined over `connections` keep-alive connections.
/// Latency runs from the *scheduled* arrival, so a server that falls
/// behind accrues queueing delay in every subsequent sample instead of
/// silently slowing the offered load (coordinated omission). Every
/// connection stays open for the whole pass (start/finish barriers), so
/// `--connections N` really means N concurrently open sockets.
fn drive_open_loop(
    addr: &str,
    benchmarks: &[usize],
    connections: usize,
    method: &str,
    rate: f64,
    total: usize,
    trace: Option<&ClientTrace>,
) -> (Vec<Sample>, Duration) {
    use std::sync::{Barrier, OnceLock};

    let barrier = Arc::new(Barrier::new(connections + 1));
    let base: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let base = Arc::clone(&base);
                std::thread::Builder::new()
                    .stack_size(192 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut client = connect_client(addr);
                        barrier.wait(); // all connected
                        barrier.wait(); // parent published the schedule base
                        let base = *base.get().expect("parent sets the base");
                        let mut collected = Vec::new();
                        for i in (c..total).step_by(connections) {
                            let scheduled = base + Duration::from_secs_f64(i as f64 / rate);
                            if let Some(lead) = scheduled.checked_duration_since(Instant::now()) {
                                std::thread::sleep(lead);
                            }
                            let benchmark = benchmarks[i % benchmarks.len()];
                            let response = post_extract(&mut client, benchmark, method, trace);
                            let cache = response
                                .header("x-fastvg-cache")
                                .unwrap_or("miss")
                                .to_string();
                            collected.push(Sample {
                                benchmark,
                                status: response.status,
                                cache,
                                latency: Instant::now().saturating_duration_since(scheduled),
                                body: response.body,
                            });
                        }
                        barrier.wait(); // keep the socket open until everyone is done
                        drop(client);
                        collected
                    })
                    .expect("spawn connection thread")
            })
            .collect();
        barrier.wait(); // all connected
        base.set(Instant::now() + Duration::from_millis(20))
            .expect("base set once");
        barrier.wait(); // release the schedule
        let started = *base.get().expect("just set");
        barrier.wait(); // every connection finished its share
        let wall = started.elapsed();
        let samples = handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("connection thread"))
            .collect();
        (samples, wall)
    })
}

/// Asserts the daemon's `/healthz` build info matches this binary: same
/// workspace version, and the backend registry it claims to serve.
fn assert_build_info(addr: &str) {
    let mut client = Client::connect(addr).expect("connect for healthz");
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "daemon must be healthy");
    let doc = health.json().expect("healthz is JSON");
    let version = doc
        .get("version")
        .and_then(Json::as_str)
        .expect("healthz reports a version");
    // Every workspace crate inherits `version.workspace = true`, so
    // fastvg-serve and fastvg-bench versions move in lockstep — a
    // mismatch means the daemon binary came from a different tree.
    assert_eq!(
        version,
        env!("CARGO_PKG_VERSION"),
        "daemon version must match this load generator's build"
    );
    // `/metrics` must advertise the same build via `fastvg_build_info`
    // (the Prometheus join key for deploy metadata).
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200, "metrics must answer");
    let metrics_text = String::from_utf8_lossy(&metrics.body).into_owned();
    let build_line = metrics_text
        .lines()
        .find(|line| line.starts_with("fastvg_build_info{"))
        .unwrap_or_else(|| panic!("{addr} /metrics lacks fastvg_build_info"))
        .to_string();
    assert!(
        build_line.contains(&format!("version=\"{version}\"")),
        "fastvg_build_info version must match healthz: {build_line}"
    );
    if let Some(git) = doc.get("git").and_then(Json::as_str) {
        assert!(
            build_line.contains(&format!("git=\"{git}\"")),
            "fastvg_build_info git must match healthz ({git}): {build_line}"
        );
    }
    let backends: Vec<&str> = doc
        .get("backends")
        .and_then(Json::as_arr)
        .expect("healthz reports enabled backends")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    for required in ["sim", "throttled", "replay", "record"] {
        assert!(
            backends.contains(&required),
            "daemon must serve the {required} backend, got {backends:?}"
        );
    }
    println!(
        "daemon build: version {version}, default backend {}, schemes {}",
        doc.get("backend").and_then(Json::as_str).unwrap_or("?"),
        backends.join(",")
    );
}

/// The end-to-end interchangeability proof: a
/// [`fastvg_serve::RemoteExtractor`] and a local `Pipeline` run through
/// the *same* `&dyn Extractor` batch path on paper benchmark 6 and must
/// report identical extractions. With `--record-tape` the local run is
/// taped and strictly replayed, so the round also pins the
/// record/replay fixtures.
fn remote_check(addr: &str, record_tape: Option<&std::path::Path>) {
    use fastvg_core::api::{ExtractionReport, Extractor, Pipeline};
    use fastvg_core::batch::BatchExtractor;
    use fastvg_serve::RemoteExtractor;
    use qd_instrument::{ReplayMode, SimBackend, SourceBackend, SourceScenario};
    use std::sync::Arc;

    let bench = qd_dataset::paper_benchmark(6).expect("paper benchmark 6");
    let runner = BatchExtractor::new().with_jobs(1);
    let scenario = || {
        SourceScenario::new(bench.csd.clone())
            .with_label("remote-check")
            .with_seed(bench.spec.seed)
    };

    // One closure drives both extractors through the erased batch path.
    let run_one = |extractor: &dyn Extractor, backend: &dyn SourceBackend| -> ExtractionReport {
        let mut outcomes = runner.run(extractor, 1, |_| {
            backend.session(scenario()).expect("backend opens")
        });
        outcomes
            .remove(0)
            .outcome
            .expect("benchmark 6 extracts cleanly")
    };

    let local_backend: Arc<dyn SourceBackend> = match record_tape {
        Some(path) => Arc::new(qd_instrument::RecordBackend::new(
            path,
            Arc::new(SimBackend),
        )),
        None => Arc::new(SimBackend),
    };
    let local = run_one(&Pipeline::fast().build(), local_backend.as_ref());
    // The remote extractor acquires the window itself; it must not run
    // over the recording backend or the tape would hold its full-frame
    // acquisition instead of the local pipeline's probes.
    let remote = run_one(&RemoteExtractor::new(addr.to_string()), &SimBackend);

    assert_eq!(
        remote.method, local.method,
        "remote must run the same method"
    );
    assert_eq!(
        remote.slope_h.to_bits(),
        local.slope_h.to_bits(),
        "remote slope_h must match local"
    );
    assert_eq!(
        remote.slope_v.to_bits(),
        local.slope_v.to_bits(),
        "remote slope_v must match local"
    );
    assert_eq!(remote.matrix, local.matrix, "virtualization matrices match");
    assert_eq!(remote.probes, local.probes, "probe counts match");
    assert_eq!(
        remote.coverage.to_bits(),
        local.coverage.to_bits(),
        "coverage matches"
    );
    println!(
        "remote-check: remote report matches local pipeline (slopes {:.4}/{:.4}, {} probes)",
        local.slope_h, local.slope_v, local.probes
    );

    if let Some(path) = record_tape {
        let replay = qd_instrument::ReplayBackend::new(path, ReplayMode::Strict);
        let replayed = run_one(&Pipeline::fast().build(), &replay);
        assert_eq!(replayed.slope_h.to_bits(), local.slope_h.to_bits());
        assert_eq!(replayed.slope_v.to_bits(), local.slope_v.to_bits());
        assert_eq!(replayed.probes, local.probes);
        assert_eq!(replayed.matrix, local.matrix);
        println!(
            "remote-check: strict replay of {} reproduces the local report",
            path.display()
        );
    }
}

/// `--fleet N`: a self-contained fleet-scaling study. For each shard
/// count in {1, 2, 4} (capped at `N`) the generator boots that many
/// in-process daemons behind a [`fastvg_router`] front-end, drives a
/// cold pass plus a repeated hot suite through the router, and records
/// throughput, p50/p99 and hit rates per count. It then demonstrates
/// cache peering under resharding: a warm single-shard fleet gains an
/// empty sibling, and the next sweep must be served entirely from cache
/// — locally where ownership stayed put, via `x-fastvg-cache: peer`
/// where it moved — with the new owner seeded so a final sweep hits
/// everywhere. Writes `BENCH_fleet_scaling.json`.
///
/// Shard daemons share this process's cores, so hot-path throughput
/// only scales with shard count when spare cores exist; the peering
/// phase is the scaling evidence that survives a single-core container.
fn fleet_scaling(args: &Args, max_shards: usize) {
    use fastvg_router::{start as start_router, RouterConfig, RouterHandle, ShardSpec};
    use fastvg_serve::ServiceHandle;

    let max_shards = max_shards.clamp(1, 8);
    let mut benchmarks: Vec<usize> = (1..=12).collect();
    if let Some(budget) = args.budget {
        benchmarks.truncate(budget.max(1));
    }
    let method = args.method.as_str();
    let connections = args.connections.clamp(1, benchmarks.len());
    // Enough hot requests that the rps measurement isn't dominated by
    // the first-byte costs of a 12-request sweep.
    const HOT_REPEATS: usize = 8;
    let hot_suite: Vec<usize> = std::iter::repeat_with(|| benchmarks.iter().copied())
        .take(HOT_REPEATS)
        .flatten()
        .collect();

    let boot_daemon = || -> ServiceHandle {
        start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .expect("boot fleet daemon")
    };
    let boot_router = |daemons: &[ServiceHandle]| -> RouterHandle {
        start_router(RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: daemons
                .iter()
                .map(|d| ShardSpec::new(d.addr().to_string()))
                .collect(),
            health_interval: Duration::from_millis(500),
            ..RouterConfig::default()
        })
        .expect("boot fleet router")
    };
    let stop_fleet = |fleet: RouterHandle, daemons: Vec<ServiceHandle>| {
        fleet.shutdown();
        fleet.join();
        for daemon in daemons {
            daemon.shutdown();
            daemon.join();
        }
    };

    let mut counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&c| c <= max_shards)
        .collect();
    if !counts.contains(&max_shards) {
        counts.push(max_shards);
    }
    println!(
        "fastvg-loadgen: fleet scaling over {counts:?} shard(s), {} cold + {} hot requests per count, {connections} connections",
        benchmarks.len(),
        hot_suite.len(),
    );

    let mut count_docs: Vec<Json> = Vec::new();
    let mut hot_rps_by_count: BTreeMap<usize, f64> = BTreeMap::new();
    for &shards in &counts {
        let daemons: Vec<ServiceHandle> = (0..shards).map(|_| boot_daemon()).collect();
        let fleet = boot_router(&daemons);
        let addr = fleet.addr().to_string();
        // The router's aggregate healthz speaks the daemon dialect.
        assert_build_info(&addr);

        let (cold, cold_wall) = drive_pass(&addr, &benchmarks, connections, method, None);
        let (hot, hot_wall) = drive_pass(&addr, &hot_suite, connections, method, None);
        stop_fleet(fleet, daemons);

        let failures = cold.iter().chain(&hot).filter(|s| s.status != 200).count();
        assert_eq!(failures, 0, "{shards}-shard fleet served failures");
        let cold_bodies: BTreeMap<usize, &Vec<u8>> =
            cold.iter().map(|s| (s.benchmark, &s.body)).collect();
        let hot_hits = hot.iter().filter(|s| s.is_hit()).count();
        let peer_hits = hot.iter().filter(|s| s.cache == "peer").count();
        for sample in &hot {
            assert!(
                sample.is_hit(),
                "{shards}-shard hot pass recomputed benchmark {} (cache={})",
                sample.benchmark,
                sample.cache
            );
            assert_eq!(
                Some(&&sample.body),
                cold_bodies.get(&sample.benchmark),
                "{shards}-shard hot body for benchmark {} is not byte-identical",
                sample.benchmark
            );
        }

        let cold_rps = cold.len() as f64 / cold_wall.as_secs_f64().max(1e-9);
        let hot_rps = hot.len() as f64 / hot_wall.as_secs_f64().max(1e-9);
        let mut hot_ms: Vec<f64> = hot.iter().map(|s| s.latency.as_secs_f64() * 1e3).collect();
        hot_ms.sort_by(f64::total_cmp);
        let (p50, p99) = (percentile(&hot_ms, 0.50), percentile(&hot_ms, 0.99));
        println!(
            "fleet {shards} shard(s): cold {cold_rps:.1} req/s, hot {hot_rps:.1} req/s | hot p50 {p50:.2}ms p99 {p99:.2}ms | {hot_hits}/{} hits ({peer_hits} peered)",
            hot.len(),
        );
        hot_rps_by_count.insert(shards, hot_rps);
        count_docs.push(
            Json::object()
                .field("shards", shards)
                .field("cold_requests", cold.len())
                .field("cold_rps", Json::num(cold_rps))
                .field("hot_requests", hot.len())
                .field("hot_rps", Json::num(hot_rps))
                .field("hot_p50_ms", Json::num(p50))
                .field("hot_p99_ms", Json::num(p99))
                .field(
                    "hot_hit_rate",
                    Json::num(hot_hits as f64 / hot.len().max(1) as f64),
                )
                .field("hot_peer_hits", peer_hits)
                .build(),
        );
    }

    // Peering under resharding: warm one shard, add an empty sibling.
    // Every key that moved to the newcomer must come back as a peered
    // byte-identical replay (never a recompute), and the peer sweep
    // seeds the newcomer so the final sweep hits locally everywhere.
    let seed_daemon = boot_daemon();
    let warm_fleet = boot_router(std::slice::from_ref(&seed_daemon));
    let (warm, _) = drive_pass(
        &warm_fleet.addr().to_string(),
        &benchmarks,
        connections,
        method,
        None,
    );
    assert!(
        warm.iter().all(|s| s.status == 200),
        "warmup sweep must succeed"
    );
    warm_fleet.shutdown();
    warm_fleet.join();

    let daemons = vec![seed_daemon, boot_daemon()];
    let refleet = boot_router(&daemons);
    let refleet_addr = refleet.addr().to_string();
    let (peered, _) = drive_pass(&refleet_addr, &benchmarks, connections, method, None);
    let warm_bodies: BTreeMap<usize, &Vec<u8>> =
        warm.iter().map(|s| (s.benchmark, &s.body)).collect();
    let peer_hits = peered.iter().filter(|s| s.cache == "peer").count();
    for sample in &peered {
        assert!(
            sample.is_hit(),
            "benchmark {} recomputed despite a warm sibling (cache={})",
            sample.benchmark,
            sample.cache
        );
        assert_eq!(
            Some(&&sample.body),
            warm_bodies.get(&sample.benchmark),
            "benchmark {} peered body is not byte-identical to the warm shard's",
            sample.benchmark
        );
    }
    assert!(
        peer_hits > 0,
        "resharding {} warm keys onto an empty shard produced no peer hits",
        benchmarks.len()
    );
    let (sealed, _) = drive_pass(&refleet_addr, &benchmarks, connections, method, None);
    let sealed_local = sealed.iter().filter(|s| s.cache == "hit").count();
    assert_eq!(
        sealed_local,
        sealed.len(),
        "peer sweep must seed the new owner so the next sweep hits locally"
    );
    stop_fleet(refleet, daemons);
    println!(
        "fleet reshard 1 -> 2 shards: {peer_hits}/{} keys served by the warm peer (byte-identical), next sweep {sealed_local}/{} local hits",
        peered.len(),
        sealed.len(),
    );

    let speedup = match (hot_rps_by_count.get(&1), hot_rps_by_count.get(&2)) {
        (Some(one), Some(two)) if *one > 0.0 => Some(two / one),
        _ => None,
    };
    if let Some(speedup) = speedup {
        println!("fleet hot-path speedup, 2 shards over 1: {speedup:.2}x");
    }

    let doc = Json::object()
        .field("bench", "fleet_scaling")
        .field("suite", "paper12")
        .field("method", method)
        .field("connections", connections)
        .field("hot_repeats", HOT_REPEATS)
        .field("counts", count_docs)
        .field(
            "hot_speedup_2_over_1",
            match speedup {
                Some(s) => Json::num(s),
                None => Json::Null,
            },
        )
        .field(
            "reshard",
            Json::object()
                .field("from_shards", 1u32)
                .field("to_shards", 2u32)
                .field("requests", peered.len())
                .field("peer_hits", peer_hits)
                .field(
                    "peer_rate",
                    Json::num(peer_hits as f64 / peered.len().max(1) as f64),
                )
                .field("byte_identical", true)
                .field("seeded_local_hits", sealed_local)
                .build(),
        )
        .build();
    std::fs::create_dir_all(&args.out).expect("create artifact dir");
    let path = args.out.join("BENCH_fleet_scaling.json");
    std::fs::write(&path, doc.pretty()).expect("write artifact");
    println!("artifact: {}", path.display());
}

fn main() {
    let args = parse_args();

    if let Some(max_shards) = args.fleet {
        fleet_scaling(&args, max_shards);
        return;
    }

    // Either drive an external daemon or boot one in-process.
    let spawned = if args.spawn {
        Some(
            start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..ServeConfig::default()
            })
            .expect("spawn in-process daemon"),
        )
    } else {
        None
    };
    let addr = match (&spawned, &args.addr) {
        (Some(daemon), _) => daemon.addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => panic!("--addr HOST:PORT is required (or pass --spawn)"),
    };

    if let Some(secs) = args.wait_healthz {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            let healthy = Client::connect_with_timeout(&addr, Duration::from_secs(2))
                .and_then(|mut c| c.get("/healthz"))
                .map(|r| r.status == 200)
                .unwrap_or(false);
            if healthy {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "daemon at {addr} not healthy within {secs}s"
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    assert_build_info(&addr);

    let trace = ClientTrace::new(&args);

    let mut benchmarks: Vec<usize> = (1..=12).collect();
    if let Some(budget) = args.budget {
        benchmarks.truncate(budget.max(1));
    }

    // The cold pass only has one request per suite entry — more
    // connections than entries would idle; the full connection count is
    // the open-loop passes' business.
    let cold_connections = args.connections.min(benchmarks.len());
    let open_requests = args
        .requests
        .unwrap_or_else(|| (2 * args.connections).max(benchmarks.len()));

    match args.rate {
        Some(rate) => println!(
            "fastvg-loadgen: cold pass ({} requests, {cold_connections} connections), then {} open-loop pass(es) of {open_requests} requests at {rate} req/s over {} connections -> {addr}",
            benchmarks.len(),
            args.passes.saturating_sub(1),
            args.connections,
        ),
        None => println!(
            "fastvg-loadgen: {} requests/pass x {} passes over {cold_connections} connections -> {addr}",
            benchmarks.len(),
            args.passes,
        ),
    }

    let mut pass_docs: Vec<Json> = Vec::new();
    let mut histogram_docs: Vec<Json> = Vec::new();
    let mut first_pass_bodies: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    let mut failed_requests = 0usize;
    let mut identity_ok = true;
    let mut post_cold_misses = 0usize;

    for pass in 1..=args.passes {
        let open_loop = args.rate.filter(|_| pass > 1);
        let (mode, samples, wall) = match open_loop {
            Some(rate) => {
                let (samples, wall) = drive_open_loop(
                    &addr,
                    &benchmarks,
                    args.connections,
                    &args.method,
                    rate,
                    open_requests,
                    trace.as_ref(),
                );
                ("open", samples, wall)
            }
            None => {
                let (samples, wall) = drive_pass(
                    &addr,
                    &benchmarks,
                    cold_connections,
                    &args.method,
                    trace.as_ref(),
                );
                ("closed", samples, wall)
            }
        };
        if let Some(trace) = &trace {
            // Drain per pass so the span ring never overflows.
            trace.flush();
        }

        let mut latencies_ms: Vec<f64> = samples
            .iter()
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        latencies_ms.sort_by(f64::total_cmp);
        let histogram = Histogram::default();
        for sample in &samples {
            histogram.observe(sample.latency);
        }
        let hits = samples.iter().filter(|s| s.is_hit()).count();
        let peer_hits = samples.iter().filter(|s| s.cache == "peer").count();
        let failures = samples.iter().filter(|s| s.status != 200).count();
        failed_requests += failures;
        if pass > 1 {
            post_cold_misses += samples.len() - hits;
        }

        for sample in &samples {
            if pass == 1 {
                first_pass_bodies.insert(sample.benchmark, sample.body.clone());
            } else if first_pass_bodies.get(&sample.benchmark) != Some(&sample.body) {
                identity_ok = false;
                eprintln!(
                    "byte-identity violation: benchmark {} differs from pass 1",
                    sample.benchmark
                );
            }
        }

        let rps = samples.len() as f64 / wall.as_secs_f64().max(1e-9);
        let (p50, p95, p99) = (
            percentile(&latencies_ms, 0.50),
            percentile(&latencies_ms, 0.95),
            percentile(&latencies_ms, 0.99),
        );
        println!(
            "pass {pass} ({mode}): {} requests in {:.3}s = {rps:.1} req/s | p50 {p50:.1}ms p95 {p95:.1}ms p99 {p99:.1}ms | {hits} cache hits ({peer_hits} peered), {failures} failed",
            samples.len(),
            wall.as_secs_f64(),
        );
        pass_docs.push(
            Json::object()
                .field("pass", pass)
                .field("mode", mode)
                .field(
                    "offered_rps",
                    match open_loop {
                        Some(rate) => Json::num(rate),
                        None => Json::Null,
                    },
                )
                .field("requests", samples.len())
                .field("wall_s", Json::num(wall.as_secs_f64()))
                .field("rps", Json::num(rps))
                .field("p50_ms", Json::num(p50))
                .field("p95_ms", Json::num(p95))
                .field("p99_ms", Json::num(p99))
                .field("cache_hits", hits)
                .field("peer_hits", peer_hits)
                .field(
                    "cache_hit_rate",
                    Json::num(hits as f64 / samples.len().max(1) as f64),
                )
                .field("failed_requests", failures)
                .build(),
        );
        histogram_docs.push(
            Json::object()
                .field("pass", pass)
                .field("mode", mode)
                .field("count", histogram.count())
                .field("sum_s", Json::num(histogram.sum().as_secs_f64()))
                .field(
                    "buckets",
                    histogram
                        .buckets()
                        .into_iter()
                        .map(|(bound, count)| {
                            Json::object()
                                .field(
                                    "le_us",
                                    match bound {
                                        Some(us) => Json::from(us),
                                        None => Json::Null,
                                    },
                                )
                                .field("count", count)
                                .build()
                        })
                        .collect::<Vec<_>>(),
                )
                .build(),
        );
    }

    let doc = Json::object()
        .field("bench", "serve_throughput")
        .field("suite", "paper12")
        .field("method", args.method.as_str())
        .field("connections", args.connections)
        .field("requests_per_pass", benchmarks.len())
        .field("passes", pass_docs)
        .field("failed_requests", failed_requests)
        .field("cache_identity_ok", identity_ok)
        .build();
    std::fs::create_dir_all(&args.out).expect("create artifact dir");
    let path = args.out.join("BENCH_serve_throughput.json");
    std::fs::write(&path, doc.pretty()).expect("write artifact");
    println!("artifact: {}", path.display());

    let histogram_doc = Json::object()
        .field("bench", "serve_latency_histogram")
        .field("connections", args.connections)
        .field(
            "rate_rps",
            match args.rate {
                Some(rate) => Json::num(rate),
                None => Json::Null,
            },
        )
        .field("passes", histogram_docs)
        .build();
    let histogram_path = args.out.join("BENCH_serve_latency_histogram.json");
    std::fs::write(&histogram_path, histogram_doc.pretty()).expect("write artifact");
    println!("artifact: {}", histogram_path.display());

    if args.remote_check {
        remote_check(&addr, args.record_tape.as_deref());
    }

    if let Some(daemon) = spawned {
        daemon.shutdown();
        daemon.join();
    }

    assert_eq!(failed_requests, 0, "failed requests");
    assert!(identity_ok, "cache-hit responses must replay cold bytes");
    if args.expect_cache_hits {
        assert_eq!(
            post_cold_misses, 0,
            "every post-cold request must hit the cache"
        );
    }
}
