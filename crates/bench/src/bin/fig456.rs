//! Regenerates the algorithm-internals figures of the paper:
//!
//! * **Figure 2** — an example double-dot CSD with its four charge-state
//!   regions (`fig2`);
//! * **Figure 4** — the critical triangular region confining both
//!   transition lines, spanned by the two anchor points (`fig4`);
//! * **Figure 5** — the row-major and column-major sweep traces on a
//!   small grid, showing the shrinking triangle (`fig5`);
//! * **Figure 6** — the post-processing stages: raw sweep points, the two
//!   filtered sets, and the joined result (`fig6`).
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin fig456 -- fig4
//! cargo run --release -p fastvg-bench --bin fig456          # all of them
//! cargo run --release -p fastvg-bench --bin fig456 -- --jobs 2
//! cargo run --release -p fastvg-bench --bin fig456 -- --out artifacts
//! ```
//!
//! Standard flags: `--jobs N` (the paper benchmarks the figures draw on
//! — CSD 6 for Figure 4, CSD 10 for Figure 6 — are rendered concurrently
//! through the batch layer; the figures themselves are order-sensitive
//! probe traces and stay serial), `--out DIR` (writes each figure's
//! ASCII art to `figN.txt`). The figures trace the *fast* pipeline's
//! internals, so `--method hough` has nothing to draw and exits with a
//! note.

use fastvg_bench::{session_on, Artifacts, BenchArgs, MethodFilter, Tee};
use fastvg_core::anchors::{find_anchors, AnchorConfig};
use fastvg_core::postprocess::{leftmost_per_row, lowest_per_column, postprocess};
use fastvg_core::report::Method;
use fastvg_core::sweep::{column_major_sweep, row_major_sweep, SweepConfig, SweepKind};
use qd_csd::render::AsciiRenderer;
use qd_csd::{Csd, Pixel, VoltageGrid};
use qd_dataset::{generate_suite, paper_specs, GeneratedBenchmark};
use qd_instrument::{SourceBackend, SourceScenario};
use qd_physics::DeviceBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    if args.method == MethodFilter::Hough {
        println!("fig456 traces the fast pipeline's internals; --method hough has nothing to draw");
        return Ok(());
    }
    let which: Option<String> = args.positionals().first().map(|s| s.to_string());
    let all = which.is_none();
    let is = |name: &str| all || which.as_deref() == Some(name);
    let artifacts = args.out.as_deref().map(Artifacts::at).transpose()?;

    // Pre-render whichever paper benchmarks the selected figures need,
    // in parallel.
    let mut wanted = Vec::new();
    if is("fig4") {
        wanted.push(6);
    }
    if is("fig6") {
        wanted.push(10);
    }
    let specs: Vec<_> = paper_specs()
        .into_iter()
        .filter(|s| wanted.contains(&s.index))
        .collect();
    let benches = generate_suite(&specs, args.jobs)?;
    let backend = args.resolve_backend();
    let by_index = |index: usize| -> &GeneratedBenchmark {
        benches
            .iter()
            .find(|b| b.spec.index == index)
            .expect("requested benchmark was pre-rendered")
    };

    let emit = |name: &str, tee: &mut Tee| -> std::io::Result<()> {
        if let Some(artifacts) = &artifacts {
            let path = artifacts.write(&format!("{name}.txt"), &tee.take())?;
            println!("artifact: {}", path.display());
        }
        Ok(())
    };

    let teeing = args.out.is_some();
    if is("fig2") {
        let mut tee = Tee::new(teeing);
        fig2(&mut tee)?;
        emit("fig2", &mut tee)?;
    }
    if is("fig4") {
        let mut tee = Tee::new(teeing);
        fig4(by_index(6), backend.as_ref(), &mut tee)?;
        emit("fig4", &mut tee)?;
    }
    if is("fig5") {
        let mut tee = Tee::new(teeing);
        fig5(backend.as_ref(), &mut tee)?;
        emit("fig5", &mut tee)?;
    }
    if is("fig6") {
        let mut tee = Tee::new(teeing);
        fig6(by_index(10), backend.as_ref(), &mut tee)?;
        emit("fig6", &mut tee)?;
    }
    if is("honeycomb") {
        let mut tee = Tee::new(teeing);
        honeycomb(&mut tee)?;
        emit("honeycomb", &mut tee)?;
    }
    Ok(())
}

/// Extra: the analytic honeycomb traced over a rendered diagram —
/// validates that the two-line model the extraction assumes near the
/// (0,0) corner is the local truth of the full cell structure.
fn honeycomb(tee: &mut Tee) -> Result<(), Box<dyn std::error::Error>> {
    use qd_physics::honeycomb::trace_honeycomb;
    use qd_physics::ChargeStateSolver;

    let device = DeviceBuilder::double_dot()
        .mutual_capacitance(0.2)
        .temperature(0.0015)
        .build()?;
    let (ix, iy) = device.as_array().pair_line_intersection(0, &[0.0, 0.0])?;
    let window = (ix - 35.0, iy - 32.0, ix + 25.0, iy + 28.0);
    let hc = trace_honeycomb(
        device.capacitance_model(),
        &ChargeStateSolver::default(),
        window,
        150,
    )?;

    let grid = VoltageGrid::new(window.0, window.1, 0.6, 100, 100)?;
    let csd = Csd::from_fn(grid, |v1, v2| {
        device.current(&[v1, v2]).expect("2-gate vector")
    })?;
    // Rasterize each analytic segment into overlay pixels.
    let mut overlay = Vec::new();
    for seg in &hc.segments {
        let steps = (seg.length() / 0.6).ceil() as usize + 1;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let v1 = seg.start.0 + t * (seg.end.0 - seg.start.0);
            let v2 = seg.start.1 + t * (seg.end.1 - seg.start.1);
            if let Some(p) = grid.pixel_of(v1, v2) {
                overlay.push(p);
            }
        }
    }
    let mut renderer = AsciiRenderer::new()
        .max_width(100)
        .with_overlays(overlay, '+');
    for tp in &hc.triple_points {
        if let Some(p) = grid.pixel_of(tp.0, tp.1) {
            renderer = renderer.with_overlay(p, 'X');
        }
    }
    tee.line("=== Honeycomb: analytic boundaries (+) and triple points (X) ===");
    tee.line(renderer.render(&csd));
    tee.line(format!(
        "{} boundary segments, {} triple points in the window",
        hc.segments.len(),
        hc.triple_points.len()
    ));
    for seg in &hc.segments {
        tee.line(format!(
            "  {:?} -> {:?}: slope {}  length {:.1} V",
            seg.from,
            seg.to,
            seg.slope()
                .map(|m| format!("{m:+.3}"))
                .unwrap_or_else(|| "vertical".into()),
            seg.length()
        ));
    }
    Ok(())
}

/// Figure 2: an example double-dot CSD with labelled charge regions.
fn fig2(tee: &mut Tee) -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceBuilder::double_dot().temperature(0.0015).build()?;
    let (ix, iy) = device.as_array().pair_line_intersection(0, &[0.0, 0.0])?;
    let grid = VoltageGrid::new(ix - 35.0, iy - 32.0, 0.6, 100, 100)?;
    let csd = Csd::from_fn(grid, |v1, v2| {
        device.current(&[v1, v2]).expect("2-gate vector")
    })?;
    tee.line("=== Figure 2: double-dot charge stability diagram ===");
    tee.line(AsciiRenderer::new().max_width(100).render(&csd));
    for (fx, fy, label) in [
        (0.15, 0.15, "(0, 0)"),
        (0.85, 0.15, "(1, 0)"),
        (0.15, 0.85, "(0, 1)"),
        (0.85, 0.85, "(1, 1)"),
    ] {
        let (v1, v2) = grid.voltage_of((fx * 99.0) as usize, (fy * 99.0) as usize);
        let state = device.ground_state(&[v1, v2])?;
        tee.line(format!(
            "corner ({fx:.0}%, {fy:.0}%): charge state {state} — expected {label}",
            fx = fx * 100.0,
            fy = fy * 100.0
        ));
    }
    tee.line("");
    Ok(())
}

/// Figure 4: the critical region spanned by the anchors.
fn fig4(
    bench: &GeneratedBenchmark,
    backend: &dyn SourceBackend,
    tee: &mut Tee,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut session = session_on(backend, bench, Method::FastExtraction);
    let anchors = find_anchors(&mut session, &AnchorConfig::default())?;
    let region = anchors.region()?;

    // Draw the triangle boundary.
    let mut boundary = Vec::new();
    for y in region.a2.y..=region.a1.y {
        if let Some((lo, hi)) = region.row_range(y) {
            boundary.push(Pixel::new(lo, y));
            boundary.push(Pixel::new(hi, y));
        }
    }
    for x in region.a1.x..=region.a2.x {
        boundary.push(Pixel::new(x, region.a1.y));
    }
    tee.line("=== Figure 4: critical triangular region (anchors A/B, boundary .) ===");
    let art = AsciiRenderer::new()
        .max_width(110)
        .with_overlays(boundary, '+')
        .with_overlay(anchors.a1, 'A')
        .with_overlay(anchors.a2, 'B')
        .render(&bench.csd);
    tee.line(art);
    tee.line(format!(
        "anchors: A = {} (shallow line), B = {} (steep line); right angle at {}",
        anchors.a1,
        anchors.a2,
        region.corner()
    ));
    tee.line(format!(
        "triangle covers {} of {} pixels ({:.1}%)\n",
        region.area_pixels(),
        bench.csd.grid().len(),
        100.0 * region.area_pixels() as f64 / bench.csd.grid().len() as f64
    ));
    Ok(())
}

/// Figure 5: sweep traces on a small 15x15 grid, as in the paper.
fn fig5(backend: &dyn SourceBackend, tee: &mut Tee) -> Result<(), Box<dyn std::error::Error>> {
    // A 15x15 toy CSD with a steep and a shallow line, like the paper's
    // illustration grid.
    let grid = VoltageGrid::new(0.0, 0.0, 1.0, 15, 15)?;
    let csd = Csd::from_fn(grid, |v1, v2| {
        let mut i = 4.0;
        if v2 > -3.5 * (v1 - 9.6) {
            i -= 1.0; // steep line
        }
        if v2 > 9.4 - 0.28 * v1 {
            i -= 0.8; // shallow line
        }
        i
    })?;
    let mut session = backend.session(SourceScenario::new(csd.clone()).with_label("fig5-rows"))?;
    let region = fastvg_core::triangle::CriticalRegion::new(Pixel::new(0, 13), Pixel::new(12, 3))
        .expect("anchors are up-left/down-right");

    tee.line("=== Figure 5 (a): row-major sweep ===");
    let rows = row_major_sweep(&mut session, region, &SweepConfig::default());
    for step in &rows.steps {
        assert_eq!(step.kind, SweepKind::RowMajor);
        let probed: Vec<String> = step.probed.iter().map(|p| p.to_string()).collect();
        tee.line(format!(
            "row {:>2}: probed {:<42} chose {}",
            step.line_index,
            probed.join(" "),
            step.chosen
        ));
    }
    tee.line("\n=== Figure 5 (b): column-major sweep ===");
    let mut session2 = backend.session(SourceScenario::new(csd.clone()).with_label("fig5-cols"))?;
    let cols = column_major_sweep(&mut session2, region, &SweepConfig::default());
    for step in &cols.steps {
        let probed: Vec<String> = step.probed.iter().map(|p| p.to_string()).collect();
        tee.line(format!(
            "col {:>2}: probed {:<42} chose {}",
            step.line_index,
            probed.join(" "),
            step.chosen
        ));
    }
    let art = AsciiRenderer::new()
        .with_overlays(rows.points.clone(), 'r')
        .with_overlays(cols.points.clone(), 'c')
        .with_overlay(region.a1, 'A')
        .with_overlay(region.a2, 'B')
        .render(&csd);
    tee.line(format!(
        "\nlocated points (r = row sweep, c = column sweep):\n{art}"
    ));
    Ok(())
}

/// Figure 6: post-processing stages on a real benchmark.
fn fig6(
    bench: &GeneratedBenchmark,
    backend: &dyn SourceBackend,
    tee: &mut Tee,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut session = session_on(backend, bench, Method::FastExtraction);
    let anchors = find_anchors(&mut session, &AnchorConfig::default())?;
    let region = anchors.region()?;
    let rows = row_major_sweep(&mut session, region, &SweepConfig::default());
    let cols = column_major_sweep(&mut session, region, &SweepConfig::default());

    let combined: Vec<Pixel> = rows.points.iter().chain(&cols.points).copied().collect();
    let set1 = lowest_per_column(&combined);
    let set2 = leftmost_per_row(&combined);
    let joined = postprocess(&combined);

    tee.line("=== Figure 6: post-processing on CSD 10 ===");
    tee.line(format!(
        "raw points: {} (row sweep {}, column sweep {})",
        combined.len(),
        rows.points.len(),
        cols.points.len()
    ));
    tee.line(format!(
        "filtered set 1 (lowest per column): {}",
        set1.len()
    ));
    tee.line(format!(
        "filtered set 2 (leftmost per row):  {}",
        set2.len()
    ));
    tee.line(format!("joined: {}", joined.len()));

    let before = AsciiRenderer::new()
        .max_width(110)
        .with_overlays(rows.points.clone(), 'r')
        .with_overlays(cols.points.clone(), 'c')
        .render(&bench.csd);
    tee.line(format!(
        "\nbefore filtering (r = row sweep, c = column sweep):\n{before}"
    ));
    let after = AsciiRenderer::new()
        .max_width(110)
        .with_overlays(joined.clone(), 'o')
        .render(&bench.csd);
    tee.line(format!("after filtering + join:\n{after}"));
    Ok(())
}
