//! Regenerates **Table 1** of the paper: success/fail, points probed,
//! total runtime and speedup for all 12 benchmarks, fast extraction vs
//! the Canny+Hough baseline.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin table1
//! ```

use fastvg_bench::{fmt_secs, run_baseline, run_fast};
use fastvg_core::report::SuccessCriteria;
use qd_dataset::paper_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let criteria = SuccessCriteria::default();
    let suite = paper_suite()?;

    println!("Table 1: Result Summary (synthetic qflow-like suite)");
    println!(
        "{:>3} {:>9} | {:>7} {:>9} | {:>16} {:>9} | {:>10} {:>10} | {:>8}",
        "CSD",
        "Size",
        "Fast",
        "Baseline",
        "Fast probes",
        "Baseline",
        "Fast time",
        "Base time",
        "Speedup"
    );
    println!("{}", "-".repeat(105));

    let mut fast_successes = 0;
    let mut base_successes = 0;
    let mut speedups: Vec<f64> = Vec::new();

    for bench in &suite {
        let fast = run_fast(bench, &criteria);
        let base = run_baseline(bench, &criteria);
        let f = &fast.report;
        let b = &base.report;
        fast_successes += f.success as usize;
        base_successes += b.success as usize;

        let speedup = if f.success { f.speedup_versus(b) } else { None };
        if let (true, Some(s)) = (f.success && b.success, speedup) {
            speedups.push(s);
        }
        println!(
            "{:>3} {:>9} | {:>7} {:>9} | {:>8} ({:>5.2}%) {:>9} | {:>10} {:>10} | {:>8}",
            f.benchmark,
            format!("{0}x{0}", f.size),
            if f.success { "Success" } else { "Fail" },
            if b.success { "Success" } else { "Fail" },
            f.probes,
            100.0 * f.coverage,
            b.probes,
            fmt_secs(f.runtime),
            fmt_secs(b.runtime),
            match speedup {
                Some(s) if f.success && b.success => format!("{s:.2}x"),
                Some(s) if f.success => format!("({s:.2}x)"),
                _ => "N/A".to_string(),
            }
        );
        if let Some(reason) = &f.failure {
            println!("      fast failure: {reason}");
        }
        if let Some(reason) = &b.failure {
            println!("      baseline failure: {reason}");
        }
    }

    println!("{}", "-".repeat(105));
    println!(
        "fast extraction: {fast_successes}/12 success (paper: 10/12)   baseline: {base_successes}/12 (paper: 9/12)"
    );
    if !speedups.is_empty() {
        let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = speedups.iter().cloned().fold(0.0, f64::max);
        println!(
            "speedup range on mutual successes: {lo:.2}x .. {hi:.2}x (paper: 5.84x .. 19.34x)"
        );
    }
    Ok(())
}
