//! Regenerates **Table 1** of the paper: success/fail, points probed,
//! total runtime and speedup for all 12 benchmarks, fast extraction vs
//! the Canny+Hough baseline.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin table1
//! cargo run --release -p fastvg-bench --bin table1 -- --jobs 4
//! cargo run --release -p fastvg-bench --bin table1 -- --gate --out artifacts
//! ```
//!
//! Flags:
//!
//! * `--jobs N` — run up to `N` benchmark sessions concurrently through
//!   [`fastvg_core::batch::BatchExtractor`] (default: one per core).
//!   Results are bit-identical for every `N`.
//! * `--out DIR` — artifact directory for `table1.csv` / `table1.json`
//!   (default `target/artifacts`).
//! * `--gate` — exit non-zero unless the reproduction holds the paper's
//!   quality bar: fast extractor ≥ 10/12 successes **and** mean speedup
//!   over mutual successes ≥ 5×. This is what CI's `table1-gate` job
//!   runs, so a quality regression fails the build instead of merging
//!   silently.

use fastvg_bench::{args_without_jobs, fmt_secs, jobs_from_args, run_suite};
use fastvg_core::report::SuccessCriteria;
use qd_dataset::paper_suite_jobs;
use std::io::Write;
use std::path::PathBuf;

/// Gate thresholds (paper: 10/12 successes, speedups 5.84×–19.34×).
const GATE_MIN_FAST_SUCCESSES: usize = 10;
const GATE_MIN_MEAN_SPEEDUP: f64 = 5.0;

struct Row {
    benchmark: usize,
    size: usize,
    fast_success: bool,
    base_success: bool,
    fast_probes: usize,
    fast_coverage: f64,
    base_probes: usize,
    fast_runtime: std::time::Duration,
    base_runtime: std::time::Duration,
    speedup: Option<f64>,
    alpha12: f64,
    alpha21: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    let rest = args_without_jobs();
    let gate = rest.iter().any(|a| a == "--gate");
    let out_dir = match rest.iter().position(|a| a == "--out") {
        Some(i) => match rest.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
            _ => {
                eprintln!("--out expects a directory path");
                std::process::exit(2);
            }
        },
        None => PathBuf::from("target/artifacts"),
    };

    let criteria = SuccessCriteria::default();
    let suite = paper_suite_jobs(jobs)?;
    let runs = run_suite(&suite, &criteria, jobs);

    println!("Table 1: Result Summary (synthetic qflow-like suite)");
    println!(
        "{:>3} {:>9} | {:>7} {:>9} | {:>16} {:>9} | {:>10} {:>10} | {:>8}",
        "CSD",
        "Size",
        "Fast",
        "Baseline",
        "Fast probes",
        "Baseline",
        "Fast time",
        "Base time",
        "Speedup"
    );
    println!("{}", "-".repeat(105));

    let mut rows = Vec::with_capacity(runs.len());
    let mut fast_successes = 0;
    let mut base_successes = 0;
    let mut speedups: Vec<f64> = Vec::new();

    for run in &runs {
        let f = &run.fast.report;
        let b = &run.baseline.report;
        fast_successes += f.success as usize;
        base_successes += b.success as usize;

        let speedup = if f.success { f.speedup_versus(b) } else { None };
        if let (true, Some(s)) = (f.success && b.success, speedup) {
            speedups.push(s);
        }
        println!(
            "{:>3} {:>9} | {:>7} {:>9} | {:>8} ({:>5.2}%) {:>9} | {:>10} {:>10} | {:>8}",
            f.benchmark,
            format!("{0}x{0}", f.size),
            if f.success { "Success" } else { "Fail" },
            if b.success { "Success" } else { "Fail" },
            f.probes,
            100.0 * f.coverage,
            b.probes,
            fmt_secs(f.runtime),
            fmt_secs(b.runtime),
            match speedup {
                Some(s) if f.success && b.success => format!("{s:.2}x"),
                Some(s) if f.success => format!("({s:.2}x)"),
                _ => "N/A".to_string(),
            }
        );
        if let Some(reason) = &f.failure {
            println!("      fast failure: {reason}");
        }
        if let Some(reason) = &b.failure {
            println!("      baseline failure: {reason}");
        }
        rows.push(Row {
            benchmark: f.benchmark,
            size: f.size,
            fast_success: f.success,
            base_success: b.success,
            fast_probes: f.probes,
            fast_coverage: f.coverage,
            base_probes: b.probes,
            fast_runtime: f.runtime,
            base_runtime: b.runtime,
            speedup: if f.success && b.success {
                speedup
            } else {
                None
            },
            alpha12: f.alpha12,
            alpha21: f.alpha21,
        });
    }

    println!("{}", "-".repeat(105));
    println!(
        "fast extraction: {fast_successes}/12 success (paper: 10/12)   baseline: {base_successes}/12 (paper: 9/12)"
    );
    let mean_speedup = if speedups.is_empty() {
        f64::NAN
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    if !speedups.is_empty() {
        let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = speedups.iter().cloned().fold(0.0, f64::max);
        println!(
            "speedup on mutual successes: {lo:.2}x .. {hi:.2}x, mean {mean_speedup:.2}x (paper: 5.84x .. 19.34x)"
        );
    }

    write_artifacts(
        &out_dir,
        &rows,
        fast_successes,
        base_successes,
        mean_speedup,
    )?;
    println!("artifacts: {}", out_dir.display());

    if gate {
        let successes_ok = fast_successes >= GATE_MIN_FAST_SUCCESSES;
        let speedup_ok = mean_speedup >= GATE_MIN_MEAN_SPEEDUP;
        if !(successes_ok && speedup_ok) {
            eprintln!(
                "table1 gate FAILED: fast successes {fast_successes}/12 (need >= {GATE_MIN_FAST_SUCCESSES}), \
                 mean speedup {mean_speedup:.2}x (need >= {GATE_MIN_MEAN_SPEEDUP:.2}x)"
            );
            std::process::exit(1);
        }
        println!(
            "table1 gate passed: {fast_successes}/12 successes, mean speedup {mean_speedup:.2}x"
        );
    }
    Ok(())
}

/// Writes `table1.csv` (per-benchmark rows) and `table1.json` (summary +
/// rows) for CI artifact upload. JSON is emitted by hand — the vendored
/// serde shim has no serializer.
fn write_artifacts(
    dir: &std::path::Path,
    rows: &[Row],
    fast_successes: usize,
    base_successes: usize,
    mean_speedup: f64,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;

    let mut csv = std::fs::File::create(dir.join("table1.csv"))?;
    writeln!(
        csv,
        "benchmark,size,fast_success,baseline_success,fast_probes,fast_coverage,baseline_probes,fast_runtime_s,baseline_runtime_s,speedup,alpha12,alpha21"
    )?;
    for r in rows {
        writeln!(
            csv,
            "{},{},{},{},{},{:.6},{},{:.3},{:.3},{},{},{}",
            r.benchmark,
            r.size,
            r.fast_success,
            r.base_success,
            r.fast_probes,
            r.fast_coverage,
            r.base_probes,
            r.fast_runtime.as_secs_f64(),
            r.base_runtime.as_secs_f64(),
            r.speedup.map_or("".into(), |s| format!("{s:.4}")),
            csv_f64(r.alpha12),
            csv_f64(r.alpha21),
        )?;
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"benchmark\": {}, \"size\": {}, \"fast_success\": {}, \"baseline_success\": {}, \
                 \"fast_probes\": {}, \"fast_coverage\": {:.6}, \"baseline_probes\": {}, \
                 \"fast_runtime_s\": {:.3}, \"baseline_runtime_s\": {:.3}, \"speedup\": {}, \
                 \"alpha12\": {}, \"alpha21\": {}}}",
                r.benchmark,
                r.size,
                r.fast_success,
                r.base_success,
                r.fast_probes,
                r.fast_coverage,
                r.base_probes,
                r.fast_runtime.as_secs_f64(),
                r.base_runtime.as_secs_f64(),
                r.speedup.map_or("null".into(), |s| format!("{s:.4}")),
                json_f64(r.alpha12),
                json_f64(r.alpha21),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"fast_successes\": {fast_successes},\n  \"baseline_successes\": {base_successes},\n  \
         \"benchmarks\": {},\n  \"mean_speedup\": {},\n  \"gate\": {{\"min_fast_successes\": {GATE_MIN_FAST_SUCCESSES}, \
         \"min_mean_speedup\": {GATE_MIN_MEAN_SPEEDUP:.1}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.len(),
        json_f64(mean_speedup),
        json_rows.join(",\n"),
    );
    std::fs::write(dir.join("table1.json"), json)
}

/// Renders an `f64` as JSON (NaN has no literal; emit `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Renders an `f64` as a CSV cell (empty for NaN on hard failures, so
/// strict float parsers never see a literal `NaN`).
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}
