//! Regenerates **Table 1** of the paper: success/fail, points probed,
//! total runtime and speedup for all 12 benchmarks, fast extraction vs
//! the Canny+Hough baseline.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin table1
//! cargo run --release -p fastvg-bench --bin table1 -- --jobs 4
//! cargo run --release -p fastvg-bench --bin table1 -- --gate --out artifacts
//! cargo run --release -p fastvg-bench --bin table1 -- --method fast
//! ```
//!
//! Flags (the standard bench set, see [`fastvg_bench::BenchArgs`]):
//!
//! * `--jobs N` — run up to `N` benchmark sessions concurrently through
//!   [`fastvg_core::batch::BatchExtractor`] (default: one per core).
//!   Results are bit-identical for every `N`.
//! * `--backend SPEC` — probe-source selection (`sim`,
//!   `throttled:<dwell>`, `record:<tape>[+inner]`, `replay:<tape>`;
//!   default `sim`). `record:tapes/{label}.tape` writes one tape per
//!   benchmark and method; replaying them reproduces this table
//!   bit-for-bit without the generator.
//! * `--method fast|hough` — run a single method (reduced table, no
//!   speedup column or artifacts). Default: both.
//! * `--out DIR` — artifact directory for `table1.csv` / `table1.json` /
//!   `BENCH_batch_throughput.json` (default `target/artifacts`).
//! * `--gate` — exit non-zero unless the reproduction holds the paper's
//!   quality bar: fast extractor ≥ 10/12 successes **and** mean speedup
//!   over mutual successes ≥ 5×. This is what CI's `table1-gate` job
//!   runs, so a quality regression fails the build instead of merging
//!   silently. Requires both methods.
//!
//! Besides the Table 1 artifacts, a run with both methods also times the
//! whole suite serially vs `--jobs 4` and writes the result to
//! `BENCH_batch_throughput.json`, so the perf trajectory is tracked
//! across PRs by the uploaded CI artifact.

use fastvg_bench::{csv_f64, fmt_secs, run_method_on, run_suite_on, Artifacts, BenchArgs};
use fastvg_core::report::SuccessCriteria;
use fastvg_wire::Json;
use qd_dataset::paper_suite_jobs;
use qd_instrument::SourceBackend;
use std::time::Instant;

/// Gate thresholds (paper: 10/12 successes, speedups 5.84×–19.34×).
const GATE_MIN_FAST_SUCCESSES: usize = 10;
const GATE_MIN_MEAN_SPEEDUP: f64 = 5.0;

struct Row {
    benchmark: usize,
    size: usize,
    fast_success: bool,
    base_success: bool,
    fast_probes: usize,
    fast_coverage: f64,
    base_probes: usize,
    fast_runtime: std::time::Duration,
    base_runtime: std::time::Duration,
    speedup: Option<f64>,
    alpha12: f64,
    alpha21: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let gate = args.has_flag("--gate");
    let both = args.method.fast() && args.method.hough();
    if gate && !both {
        eprintln!("--gate needs both methods (drop --method)");
        std::process::exit(2);
    }

    let criteria = SuccessCriteria::default();
    let suite = paper_suite_jobs(args.jobs)?;
    let backend = args.resolve_backend();

    if !both {
        // Single-method mode: one table through the one generic path.
        let extractor = args.method.extractors().remove(0);
        let runs = run_method_on(
            backend.as_ref(),
            extractor.as_ref(),
            &suite,
            &criteria,
            args.jobs,
        );
        println!("Table 1 ({} only)", extractor.method());
        println!(
            "{:>3} {:>9} | {:>7} | {:>16} | {:>10}",
            "CSD", "Size", "Result", "Probes", "Runtime"
        );
        println!("{}", "-".repeat(60));
        let mut successes = 0usize;
        for run in &runs {
            let r = &run.report;
            successes += r.success as usize;
            println!(
                "{:>3} {:>9} | {:>7} | {:>8} ({:>5.2}%) | {:>10}",
                r.benchmark,
                format!("{0}x{0}", r.size),
                if r.success { "Success" } else { "Fail" },
                r.probes,
                100.0 * r.coverage,
                fmt_secs(r.runtime),
            );
            if let Some(reason) = &r.failure {
                println!("      failure: {reason}");
            }
        }
        println!("{}", "-".repeat(60));
        println!("{}: {successes}/{} success", extractor.method(), runs.len());
        return Ok(());
    }

    let runs = run_suite_on(backend.as_ref(), &suite, &criteria, args.jobs);

    println!("Table 1: Result Summary (synthetic qflow-like suite)");
    println!(
        "{:>3} {:>9} | {:>7} {:>9} | {:>16} {:>9} | {:>10} {:>10} | {:>8}",
        "CSD",
        "Size",
        "Fast",
        "Baseline",
        "Fast probes",
        "Baseline",
        "Fast time",
        "Base time",
        "Speedup"
    );
    println!("{}", "-".repeat(105));

    let mut rows = Vec::with_capacity(runs.len());
    let mut fast_successes = 0;
    let mut base_successes = 0;
    let mut speedups: Vec<f64> = Vec::new();

    for run in &runs {
        let f = &run.fast.report;
        let b = &run.baseline.report;
        fast_successes += f.success as usize;
        base_successes += b.success as usize;

        let speedup = if f.success { f.speedup_versus(b) } else { None };
        if let (true, Some(s)) = (f.success && b.success, speedup) {
            speedups.push(s);
        }
        println!(
            "{:>3} {:>9} | {:>7} {:>9} | {:>8} ({:>5.2}%) {:>9} | {:>10} {:>10} | {:>8}",
            f.benchmark,
            format!("{0}x{0}", f.size),
            if f.success { "Success" } else { "Fail" },
            if b.success { "Success" } else { "Fail" },
            f.probes,
            100.0 * f.coverage,
            b.probes,
            fmt_secs(f.runtime),
            fmt_secs(b.runtime),
            match speedup {
                Some(s) if f.success && b.success => format!("{s:.2}x"),
                Some(s) if f.success => format!("({s:.2}x)"),
                _ => "N/A".to_string(),
            }
        );
        if let Some(reason) = &f.failure {
            println!("      fast failure: {reason}");
        }
        if let Some(reason) = &b.failure {
            println!("      baseline failure: {reason}");
        }
        rows.push(Row {
            benchmark: f.benchmark,
            size: f.size,
            fast_success: f.success,
            base_success: b.success,
            fast_probes: f.probes,
            fast_coverage: f.coverage,
            base_probes: b.probes,
            fast_runtime: f.runtime,
            base_runtime: b.runtime,
            speedup: if f.success && b.success {
                speedup
            } else {
                None
            },
            alpha12: f.alpha12,
            alpha21: f.alpha21,
        });
    }

    println!("{}", "-".repeat(105));
    println!(
        "fast extraction: {fast_successes}/12 success (paper: 10/12)   baseline: {base_successes}/12 (paper: 9/12)"
    );
    let mean_speedup = if speedups.is_empty() {
        f64::NAN
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    if !speedups.is_empty() {
        let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = speedups.iter().cloned().fold(0.0, f64::max);
        println!(
            "speedup on mutual successes: {lo:.2}x .. {hi:.2}x, mean {mean_speedup:.2}x (paper: 5.84x .. 19.34x)"
        );
    }

    let artifacts = Artifacts::at(&args.out_dir("target/artifacts"))?;
    write_artifacts(
        &artifacts,
        &rows,
        fast_successes,
        base_successes,
        mean_speedup,
    )?;
    write_throughput_bench(
        &artifacts,
        backend.as_ref(),
        &suite,
        &criteria,
        args.jobs,
        fast_successes,
        base_successes,
        mean_speedup,
    )?;
    println!("artifacts: {}", artifacts.dir().display());

    if gate {
        let successes_ok = fast_successes >= GATE_MIN_FAST_SUCCESSES;
        let speedup_ok = mean_speedup >= GATE_MIN_MEAN_SPEEDUP;
        if !(successes_ok && speedup_ok) {
            eprintln!(
                "table1 gate FAILED: fast successes {fast_successes}/12 (need >= {GATE_MIN_FAST_SUCCESSES}), \
                 mean speedup {mean_speedup:.2}x (need >= {GATE_MIN_MEAN_SPEEDUP:.2}x)"
            );
            std::process::exit(1);
        }
        println!(
            "table1 gate passed: {fast_successes}/12 successes, mean speedup {mean_speedup:.2}x"
        );
    }
    Ok(())
}

/// Times the full two-method suite serially vs `--jobs 4` and writes
/// `BENCH_batch_throughput.json` — the machine-readable perf artifact
/// tracked across PRs. Wall times are compute-bound here (replayed
/// sessions have no real dwell), so the parallel speedup reflects
/// available cores, not dwell overlap.
#[allow(clippy::too_many_arguments)]
fn write_throughput_bench(
    artifacts: &Artifacts,
    backend: &dyn SourceBackend,
    suite: &[qd_dataset::GeneratedBenchmark],
    criteria: &SuccessCriteria,
    jobs_flag: usize,
    fast_successes: usize,
    base_successes: usize,
    mean_speedup: f64,
) -> std::io::Result<()> {
    let time_with = |jobs: usize| -> (f64, usize) {
        let started = Instant::now();
        let runs = run_suite_on(backend, suite, criteria, jobs);
        let ok = runs.iter().filter(|r| r.fast.report.success).count();
        (started.elapsed().as_secs_f64(), ok)
    };
    let (serial_s, serial_ok) = time_with(1);
    let (jobs4_s, jobs4_ok) = time_with(4);
    assert_eq!(
        serial_ok, jobs4_ok,
        "batch determinism violated between jobs=1 and jobs=4"
    );

    let json = Json::object()
        .field("bench", "batch_throughput")
        .field("suite", "paper12-both-methods")
        .field("serial_wall_s", Json::num(serial_s))
        .field("jobs4_wall_s", Json::num(jobs4_s))
        .field(
            "throughput_speedup",
            Json::num(serial_s / jobs4_s.max(1e-12)),
        )
        .field("jobs_flag", jobs_flag)
        .field(
            "table1",
            Json::object()
                .field("fast_successes", fast_successes)
                .field("baseline_successes", base_successes)
                .field("mean_speedup", Json::num(mean_speedup))
                .build(),
        )
        .build();
    let path = artifacts.write("BENCH_batch_throughput.json", &json.pretty())?;
    println!(
        "batch throughput: {serial_s:.2}s serial vs {jobs4_s:.2}s --jobs 4 ({:.2}x) -> {}",
        serial_s / jobs4_s.max(1e-12),
        path.display()
    );
    Ok(())
}

/// Writes `table1.csv` (per-benchmark rows) and `table1.json` (summary +
/// rows) for CI artifact upload. JSON goes through the shared
/// [`fastvg_wire::Json`] serializer (the vendored serde shim has none).
fn write_artifacts(
    artifacts: &Artifacts,
    rows: &[Row],
    fast_successes: usize,
    base_successes: usize,
    mean_speedup: f64,
) -> std::io::Result<()> {
    let mut csv = String::from(
        "benchmark,size,fast_success,baseline_success,fast_probes,fast_coverage,baseline_probes,fast_runtime_s,baseline_runtime_s,speedup,alpha12,alpha21\n",
    );
    for r in rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{:.6},{},{:.3},{:.3},{},{},{}\n",
            r.benchmark,
            r.size,
            r.fast_success,
            r.base_success,
            r.fast_probes,
            r.fast_coverage,
            r.base_probes,
            r.fast_runtime.as_secs_f64(),
            r.base_runtime.as_secs_f64(),
            r.speedup.map_or("".into(), |s| format!("{s:.4}")),
            csv_f64(r.alpha12),
            csv_f64(r.alpha21),
        ));
    }
    artifacts.write("table1.csv", &csv)?;

    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::object()
                .field("benchmark", r.benchmark)
                .field("size", r.size)
                .field("fast_success", r.fast_success)
                .field("baseline_success", r.base_success)
                .field("fast_probes", r.fast_probes)
                .field("fast_coverage", Json::num(r.fast_coverage))
                .field("baseline_probes", r.base_probes)
                .field("fast_runtime_s", Json::num(r.fast_runtime.as_secs_f64()))
                .field(
                    "baseline_runtime_s",
                    Json::num(r.base_runtime.as_secs_f64()),
                )
                .field("speedup", r.speedup.map_or(Json::Null, Json::num))
                .field("alpha12", Json::num(r.alpha12))
                .field("alpha21", Json::num(r.alpha21))
                .build()
        })
        .collect();
    let json = Json::object()
        .field("fast_successes", fast_successes)
        .field("baseline_successes", base_successes)
        .field("benchmarks", rows.len())
        .field("mean_speedup", Json::num(mean_speedup))
        .field(
            "gate",
            Json::object()
                .field("min_fast_successes", GATE_MIN_FAST_SUCCESSES)
                .field("min_mean_speedup", Json::num(GATE_MIN_MEAN_SPEEDUP))
                .build(),
        )
        .field("rows", json_rows)
        .build();
    artifacts.write("table1.json", &json.pretty())?;
    Ok(())
}
