//! Randomized-cohort robustness study (extension beyond the paper).
//!
//! The paper evaluates on 12 fixed diagrams; this harness draws a cohort
//! of randomized healthy devices (lever arms, mutual capacitance,
//! temperature, noise all varied) and reports success *rates*, probe
//! statistics and α-error distributions — turning Table 1's anecdotes
//! into statistics. Methods run through the unified
//! [`fastvg_core::api::Extractor`] path, so adding a method to the study
//! means adding one trait object, not another code path.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin robustness -- 60 7
//! #                                     cohort size ^   ^ seed
//! cargo run --release -p fastvg-bench --bin robustness -- 60 7 --jobs 4
//! cargo run --release -p fastvg-bench --bin robustness -- --method fast
//! cargo run --release -p fastvg-bench --bin robustness -- --out artifacts
//! ```
//!
//! Standard flags: `--method fast|hough` (default both), `--jobs N`
//! (generation and extraction both fan out; every spec carries its own
//! seed, so results are bit-identical for every `N`), `--backend SPEC`
//! (probe-source selection; default `sim`), `--out DIR` (writes
//! `robustness.csv` with one row per device × method).

use fastvg_bench::{csv_f64, run_method_on, Artifacts, BenchArgs, MethodRun};
use fastvg_core::report::{Method, SuccessCriteria};
use qd_dataset::{generate_suite, random_specs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse();
    let positionals = args.positionals();
    let n: usize = positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let seed: u64 = positionals.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let criteria = SuccessCriteria::default();

    println!("robustness cohort: {n} randomized devices (seed {seed})");
    let specs = random_specs(n, seed);
    let benches = generate_suite(&specs, args.jobs)?;

    // One generic pass per selected method — no per-method code paths,
    // and the probe source is the `--backend` flag's business.
    let backend = args.resolve_backend();
    let extractors = args.method.extractors();
    let runs: Vec<(Method, Vec<MethodRun>)> = extractors
        .iter()
        .map(|e| {
            (
                e.method(),
                run_method_on(backend.as_ref(), e.as_ref(), &benches, &criteria, args.jobs),
            )
        })
        .collect();

    let pct = |k: usize| 100.0 * k as f64 / n as f64;
    println!();
    for (method, method_runs) in &runs {
        let ok = method_runs.iter().filter(|r| r.report.success).count();
        println!("success rate: {method} {ok}/{n} ({:.0}%)", pct(ok));
    }

    let summarize = |label: &str, v: &[f64]| {
        if v.is_empty() {
            println!("{label}: (no data)");
            return;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = sorted[sorted.len() / 2];
        let max = *sorted.last().expect("non-empty");
        println!("{label}: mean {mean:.4}, median {med:.4}, max {max:.4}");
    };

    for (method, method_runs) in &runs {
        let mut coverages = Vec::new();
        let mut errors = Vec::new();
        for (bench, run) in benches.iter().zip(method_runs) {
            if run.report.success {
                coverages.push(run.report.coverage);
                errors.push(
                    (run.report.alpha12 - bench.truth.alpha12)
                        .abs()
                        .max((run.report.alpha21 - bench.truth.alpha21).abs()),
                );
            }
        }
        summarize(&format!("{method:<15} coverage  "), &coverages);
        summarize(&format!("{method:<15} max |aerr|"), &errors);
    }

    // Speedups need both methods paired per device.
    if let (Some((_, fast)), Some((_, base))) = (
        runs.iter().find(|(m, _)| *m == Method::FastExtraction),
        runs.iter().find(|(m, _)| *m == Method::HoughBaseline),
    ) {
        let mut speedups = Vec::new();
        for (f, b) in fast.iter().zip(base) {
            if f.report.success && b.report.success {
                if let Some(s) = f.report.speedup_versus(&b.report) {
                    speedups.push(s);
                }
            }
        }
        summarize("speedup                   ", &speedups);
    }

    if let Some(dir) = &args.out {
        let artifacts = Artifacts::at(dir)?;
        let mut csv =
            String::from("device,method,success,probes,coverage,runtime_s,alpha12,alpha21\n");
        for (method, method_runs) in &runs {
            for run in method_runs {
                let r = &run.report;
                csv.push_str(&format!(
                    "{},{},{},{},{:.6},{:.3},{},{}\n",
                    r.benchmark,
                    method,
                    r.success,
                    r.probes,
                    r.coverage,
                    r.runtime.as_secs_f64(),
                    csv_f64(r.alpha12),
                    csv_f64(r.alpha21),
                ));
            }
        }
        let path = artifacts.write("robustness.csv", &csv)?;
        println!("artifact: {}", path.display());
    }
    Ok(())
}
