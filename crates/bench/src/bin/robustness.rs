//! Randomized-cohort robustness study (extension beyond the paper).
//!
//! The paper evaluates on 12 fixed diagrams; this harness draws a cohort
//! of randomized healthy devices (lever arms, mutual capacitance,
//! temperature, noise all varied) and reports success *rates*, probe
//! statistics and α-error distributions for both methods — turning
//! Table 1's anecdotes into statistics.
//!
//! ```sh
//! cargo run --release -p fastvg-bench --bin robustness -- 60 7
//! #                                     cohort size ^   ^ seed
//! cargo run --release -p fastvg-bench --bin robustness -- 60 7 --jobs 4
//! ```
//!
//! Generation and extraction both fan out over the batch layer
//! (`--jobs N`, default one worker per core); every spec carries its own
//! seed, so results are bit-identical for every `N`.

use fastvg_bench::{args_without_jobs, jobs_from_args, run_suite};
use fastvg_core::report::SuccessCriteria;
use qd_dataset::{generate_suite, random_specs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    let rest = args_without_jobs();
    let n: usize = rest.first().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let criteria = SuccessCriteria::default();

    println!("robustness cohort: {n} randomized devices (seed {seed})");
    let specs = random_specs(n, seed);
    let benches = generate_suite(&specs, jobs)?;
    let runs = run_suite(&benches, &criteria, jobs);

    let mut fast_ok = 0usize;
    let mut base_ok = 0usize;
    let mut coverages = Vec::new();
    let mut fast_errors = Vec::new();
    let mut base_errors = Vec::new();
    let mut speedups = Vec::new();

    for (bench, run) in benches.iter().zip(&runs) {
        let fast = &run.fast;
        let base = &run.baseline;
        if fast.report.success {
            fast_ok += 1;
            coverages.push(fast.report.coverage);
            fast_errors.push(
                (fast.report.alpha12 - bench.truth.alpha12)
                    .abs()
                    .max((fast.report.alpha21 - bench.truth.alpha21).abs()),
            );
        }
        if base.report.success {
            base_ok += 1;
            base_errors.push(
                (base.report.alpha12 - bench.truth.alpha12)
                    .abs()
                    .max((base.report.alpha21 - bench.truth.alpha21).abs()),
            );
        }
        if fast.report.success && base.report.success {
            if let Some(s) = fast.report.speedup_versus(&base.report) {
                speedups.push(s);
            }
        }
    }

    let pct = |k: usize| 100.0 * k as f64 / n as f64;
    println!(
        "\nsuccess rate: fast {fast_ok}/{n} ({:.0}%), baseline {base_ok}/{n} ({:.0}%)",
        pct(fast_ok),
        pct(base_ok)
    );

    let summarize = |label: &str, v: &[f64]| {
        if v.is_empty() {
            println!("{label}: (no data)");
            return;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = sorted[sorted.len() / 2];
        let max = *sorted.last().expect("non-empty");
        println!("{label}: mean {mean:.4}, median {med:.4}, max {max:.4}");
    };
    summarize("fast coverage       ", &coverages);
    summarize("fast max |alpha err|", &fast_errors);
    summarize("base max |alpha err|", &base_errors);
    summarize("speedup             ", &speedups);
    Ok(())
}
