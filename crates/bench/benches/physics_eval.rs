//! Criterion micro-benchmarks of the physics substrate: per-probe device
//! evaluation (the cost of every simulated `getCurrent`), ground-state
//! search, thermal mixing, and full benchmark-diagram generation.
//!
//! These quantify the simulator's own speed — relevant because the
//! extraction benchmarks evaluate the device once per probed pixel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qd_dataset::{generate, BenchmarkSpec};
use qd_physics::{ChargeStateSolver, DeviceBuilder};
use std::hint::black_box;

fn bench_device_eval(c: &mut Criterion) {
    let device = DeviceBuilder::double_dot()
        .build_array()
        .expect("device builds");
    c.bench_function("physics/current_double_dot", |b| {
        b.iter(|| black_box(device.current(black_box(&[40.0, 45.0]))));
    });

    let triple = DeviceBuilder::linear_array(3)
        .build_array()
        .expect("device builds");
    c.bench_function("physics/current_triple_dot", |b| {
        b.iter(|| black_box(triple.current(black_box(&[40.0, 45.0, 35.0]))));
    });

    let solver = ChargeStateSolver::default();
    let model = device.capacitance_model();
    c.bench_function("physics/ground_state", |b| {
        b.iter(|| black_box(solver.ground_state(model, black_box(&[40.0, 45.0]))));
    });
    c.bench_function("physics/thermal_occupation", |b| {
        b.iter(|| black_box(solver.thermal_occupation(model, black_box(&[40.0, 45.0]), 0.002)));
    });
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("physics/generate_benchmark");
    group.sample_size(10);
    for size in [63usize, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}x{size}")),
            &size,
            |b, &size| {
                let spec = BenchmarkSpec::clean(1, size);
                b.iter(|| black_box(generate(&spec)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_device_eval, bench_generation);
criterion_main!(benches);
