//! Criterion macro-benchmark for the batch-extraction engine:
//! suite-level throughput, serial vs parallel, on the 12-benchmark suite.
//!
//! Two regimes are measured:
//!
//! * **`throttled/*`** — each probe pays a real 50 µs dwell (1/1000 of
//!   the paper's 50 ms instrument dwell) via
//!   [`qd_instrument::ThrottledSource`]. This is the production shape of
//!   the workload: extraction is latency-bound on the instrument, the
//!   host CPU is idle during dwells, and batching across devices
//!   overlaps those dwells. Speedup here is real even on a single core.
//! * **`compute/*`** — replayed sources with zero dwell, measuring pure
//!   algorithmic throughput. Speedup here tracks the machine's core
//!   count (≈ 1× on a 1-core container, ≈ N× on N cores) because every
//!   job is CPU-bound.
//!
//! Extraction results are bit-identical across all `jobs` values (the
//! workspace's `batch_determinism` test asserts this over the same
//! suite); only wall-clock differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastvg_core::batch::BatchExtractor;
use qd_dataset::{paper_suite_jobs, GeneratedBenchmark};
use qd_instrument::{CsdSource, MeasurementSession, ThrottledSource};
use std::hint::black_box;
use std::time::Duration;

/// Emulated per-probe instrument dwell: 1/1000 of the paper's 50 ms.
const DWELL: Duration = Duration::from_micros(50);

fn suite() -> Vec<GeneratedBenchmark> {
    paper_suite_jobs(mini_rayon::available_workers()).expect("paper suite generates")
}

fn bench_throttled(c: &mut Criterion) {
    let suite = suite();
    let mut group = c.benchmark_group("batch_throughput/throttled");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| {
                let runner = BatchExtractor::new().with_jobs(jobs);
                b.iter(|| {
                    let outcomes = runner.run_fast(suite.len(), |i| {
                        MeasurementSession::new(ThrottledSource::new(
                            CsdSource::new(suite[i].csd.clone()),
                            DWELL,
                        ))
                    });
                    assert_eq!(outcomes.len(), suite.len());
                    black_box(outcomes)
                });
            },
        );
    }
    group.finish();
}

fn bench_compute(c: &mut Criterion) {
    let suite = suite();
    let mut group = c.benchmark_group("batch_throughput/compute");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| {
                let runner = BatchExtractor::new().with_jobs(jobs);
                b.iter(|| {
                    let outcomes = runner.run_fast(suite.len(), |i| {
                        MeasurementSession::new(CsdSource::new(suite[i].csd.clone()))
                    });
                    black_box(outcomes)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throttled, bench_compute);
criterion_main!(benches);
