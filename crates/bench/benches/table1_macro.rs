//! Criterion macro-benchmark behind **Table 1**: wall-clock *compute*
//! cost of the two extraction methods per CSD size.
//!
//! The experimental runtime in Table 1 is dominated by dwell time
//! (probes × 50 ms, accounted virtually by the harness binaries); this
//! bench pins down the remaining algorithmic cost and confirms it is
//! negligible against the dwell for both methods — i.e. the speedup
//! really is the probe-count ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastvg_core::baseline::HoughBaseline;
use fastvg_core::extraction::FastExtractor;
use qd_dataset::paper_benchmark;
use qd_instrument::{CsdSource, MeasurementSession};
use std::hint::black_box;

fn bench_fast_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/fast_extraction");
    for index in [3usize, 6, 12] {
        let bench = paper_benchmark(index).expect("benchmark generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("csd{index}_{0}x{0}", bench.spec.size)),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
                    black_box(FastExtractor::new().extract(&mut session).ok())
                });
            },
        );
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/hough_baseline");
    group.sample_size(20);
    for index in [3usize, 6, 12] {
        let bench = paper_benchmark(index).expect("benchmark generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("csd{index}_{0}x{0}", bench.spec.size)),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
                    black_box(HoughBaseline::new().extract(&mut session).ok())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fast_extraction, bench_baseline);
criterion_main!(benches);
