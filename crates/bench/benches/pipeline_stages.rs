//! Criterion micro-benchmarks of the fast-extraction pipeline stages:
//! anchor preprocessing (§4.4), the two sweeps (§4.3.2) and the
//! 2-piece-wise-linear fit (§4.3.3), each in isolation on CSD 6.
//!
//! Useful for spotting regressions in any single stage and for the
//! ablation discussion in EXPERIMENTS.md (the fit is the only stage whose
//! cost is independent of the diagram size).

use criterion::{criterion_group, criterion_main, Criterion};
use fastvg_core::anchors::{find_anchors, AnchorConfig};
use fastvg_core::fit::{fit_transition_lines, SlopeBounds};
use fastvg_core::sweep::{column_major_sweep, row_major_sweep, SweepConfig};
use qd_dataset::paper_benchmark;
use qd_instrument::{CsdSource, MeasurementSession};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let bench = paper_benchmark(6).expect("benchmark generates");

    c.bench_function("stages/anchors", |b| {
        b.iter(|| {
            let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
            black_box(find_anchors(&mut session, &AnchorConfig::default()).ok())
        });
    });

    // Precompute anchors once for the sweep stage benchmarks.
    let mut setup = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let anchors = find_anchors(&mut setup, &AnchorConfig::default()).expect("anchors on CSD 6");
    let region = anchors.region().expect("valid region");

    c.bench_function("stages/row_major_sweep", |b| {
        b.iter(|| {
            let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
            black_box(row_major_sweep(
                &mut session,
                region,
                &SweepConfig::default(),
            ))
        });
    });

    c.bench_function("stages/column_major_sweep", |b| {
        b.iter(|| {
            let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
            black_box(column_major_sweep(
                &mut session,
                region,
                &SweepConfig::default(),
            ))
        });
    });

    // Transition points for the fit benchmark.
    let mut session = MeasurementSession::new(CsdSource::new(bench.csd.clone()));
    let rows = row_major_sweep(&mut session, region, &SweepConfig::default());
    let cols = column_major_sweep(&mut session, region, &SweepConfig::default());
    let points: Vec<_> = rows.points.iter().chain(&cols.points).copied().collect();
    let filtered = fastvg_core::postprocess::postprocess(&points);

    c.bench_function("stages/postprocess", |b| {
        b.iter(|| black_box(fastvg_core::postprocess::postprocess(black_box(&points))));
    });

    c.bench_function("stages/two_segment_fit", |b| {
        b.iter(|| {
            black_box(fit_transition_lines(
                anchors.a1,
                anchors.a2,
                black_box(&filtered),
                &SlopeBounds::default(),
            ))
        });
    });
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
