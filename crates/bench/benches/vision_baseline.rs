//! Criterion micro-benchmarks of the baseline vision pipeline: Gaussian
//! blur, Sobel, Canny and the Hough transform on 100×100 and 200×200
//! diagrams — the compute that the paper's baseline spends after its full
//! acquisition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qd_dataset::paper_benchmark;
use qd_vision::blur::gaussian_blur;
use qd_vision::canny::{canny, CannyParams};
use qd_vision::hough::{hough_lines, HoughParams};
use qd_vision::sobel::sobel;
use std::hint::black_box;

fn bench_vision(c: &mut Criterion) {
    for index in [6usize, 12] {
        let bench = paper_benchmark(index).expect("benchmark generates");
        let csd = bench.csd;
        let size = bench.spec.size;
        let id = |stage: &str| BenchmarkId::new(stage, format!("{size}x{size}"));

        c.bench_with_input(id("vision/gaussian_blur"), &csd, |b, csd| {
            b.iter(|| black_box(gaussian_blur(csd, 5, 1.2)));
        });
        c.bench_with_input(id("vision/sobel"), &csd, |b, csd| {
            b.iter(|| black_box(sobel(csd)));
        });
        c.bench_with_input(id("vision/canny"), &csd, |b, csd| {
            b.iter(|| black_box(canny(csd, CannyParams::default())));
        });
        let edges = canny(&csd, CannyParams::default()).expect("edges");
        c.bench_with_input(id("vision/hough"), &edges, |b, edges| {
            b.iter(|| black_box(hough_lines(edges, HoughParams::default())));
        });
    }
}

criterion_group!(benches, bench_vision);
criterion_main!(benches);
