//! Determinism contract of the batch layer: `jobs = 1` and `jobs = 4`
//! must produce **bit-identical** extraction results over the full
//! 12-benchmark paper suite — same slopes, same α coefficients, same
//! probe counts, same probe scatters, for both methods. Only wall-clock
//! fields may differ.

use fastvg_bench::run_suite;
use fastvg_core::report::SuccessCriteria;
use qd_dataset::paper_suite_jobs;

// Suite *generation* determinism is asserted where it lives, by
// `qd_dataset::suite::tests::parallel_suite_generation_is_bit_identical`;
// this file owns the extraction-level contract.

#[test]
fn batch_extraction_is_bit_identical_across_jobs() {
    let suite = paper_suite_jobs(4).expect("suite generates");
    let criteria = SuccessCriteria::default();

    let serial = run_suite(&suite, &criteria, 1);
    let parallel = run_suite(&suite, &criteria, 4);
    assert_eq!(serial.len(), 12);
    assert_eq!(parallel.len(), 12);

    for (s, p) in serial.iter().zip(&parallel) {
        let idx = s.fast.report.benchmark;

        // Fast extraction: scoring row, probe ledger and raw slopes.
        assert_eq!(s.fast.report.success, p.fast.report.success, "csd {idx}");
        assert_eq!(s.fast.report.probes, p.fast.report.probes, "csd {idx}");
        assert_eq!(
            s.fast.report.alpha12.to_bits(),
            p.fast.report.alpha12.to_bits(),
            "csd {idx}: fast alpha12 diverged"
        );
        assert_eq!(
            s.fast.report.alpha21.to_bits(),
            p.fast.report.alpha21.to_bits(),
            "csd {idx}: fast alpha21 diverged"
        );
        assert_eq!(
            s.fast.scatter, p.fast.scatter,
            "csd {idx}: probe scatter diverged"
        );
        if let (Some(a), Some(b)) = (&s.fast.result, &p.fast.result) {
            assert_eq!(a.slope_h.to_bits(), b.slope_h.to_bits(), "csd {idx}");
            assert_eq!(a.slope_v.to_bits(), b.slope_v.to_bits(), "csd {idx}");
            assert_eq!(a.transition_points, b.transition_points, "csd {idx}");
            assert_eq!(a.probes, b.probes, "csd {idx}");
        } else {
            assert_eq!(
                s.fast.result.is_none(),
                p.fast.result.is_none(),
                "csd {idx}"
            );
        }

        // Baseline: scoring row and probe counts.
        assert_eq!(
            s.baseline.report.success, p.baseline.report.success,
            "csd {idx}"
        );
        assert_eq!(
            s.baseline.report.probes, p.baseline.report.probes,
            "csd {idx}"
        );
        assert_eq!(
            s.baseline.report.alpha12.to_bits(),
            p.baseline.report.alpha12.to_bits(),
            "csd {idx}: baseline alpha12 diverged"
        );
        assert_eq!(
            s.baseline.report.alpha21.to_bits(),
            p.baseline.report.alpha21.to_bits(),
            "csd {idx}: baseline alpha21 diverged"
        );
    }

    // The suite-level summary the CI gate consumes is therefore
    // jobs-independent too.
    let successes =
        |runs: &[fastvg_bench::SuiteRun]| runs.iter().filter(|r| r.fast.report.success).count();
    assert_eq!(successes(&serial), successes(&parallel));
    assert_eq!(successes(&serial), 10, "paper: fast succeeds on 10/12");
}
