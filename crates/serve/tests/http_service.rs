//! End-to-end tests of the daemon over real sockets: protocol shapes,
//! cache-hit byte-identity, async job polling, inline grids, request
//! hardening, metrics, and graceful shutdown.

use fastvg_serve::{start, Client, ServeConfig, ServiceHandle};
use fastvg_wire::Json;
use std::time::Duration;

fn boot() -> ServiceHandle {
    boot_with(|_| {})
}

fn boot_with(tweak: impl FnOnce(&mut ServeConfig)) -> ServiceHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        extract_jobs: 2,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    start(config).expect("daemon boots on an ephemeral port")
}

fn connect(daemon: &ServiceHandle) -> Client {
    Client::connect(&daemon.addr().to_string()).expect("connect")
}

#[test]
fn cache_hits_are_byte_identical_to_cold_runs() {
    let daemon = boot();
    let mut client = connect(&daemon);

    // Cold run: computed on the pool, cached on the way out.
    let cold = client
        .post("/extract?wait", br#"{"benchmark": 4, "method": "fast"}"#)
        .unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-fastvg-cache"), Some("miss"));
    assert_eq!(cold.header("x-fastvg-status"), Some("done"));
    let cold_doc = cold.json().unwrap();
    assert_eq!(cold_doc.get("ok").and_then(Json::as_bool), Some(true));
    let report = cold_doc.get("report").expect("report payload");
    assert_eq!(report.get("method").and_then(Json::as_str), Some("fast"));

    // Hit: exact same bytes, flagged as a hit.
    let hit = client
        .post("/extract?wait", br#"{"benchmark": 4, "method": "fast"}"#)
        .unwrap();
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(hit.header("x-fastvg-status"), Some("done"));
    assert_eq!(hit.body, cold.body, "cache must replay stored bytes");

    // Semantically equal spellings share the entry: the full paper spec
    // for benchmark 4 fingerprints like {"benchmark": 4}.
    let spec = qd_dataset::paper_specs()
        .into_iter()
        .find(|s| s.index == 4)
        .unwrap()
        .to_json()
        .dump();
    let spelled = client
        .post(
            "/extract?wait",
            format!("{{\"spec\": {spec}, \"method\": \"fast\"}}").as_bytes(),
        )
        .unwrap();
    assert_eq!(spelled.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(spelled.body, cold.body);

    // A different method is a different entry.
    let tuned = client
        .post("/extract?wait", br#"{"benchmark": 4, "method": "tuned"}"#)
        .unwrap();
    assert_eq!(tuned.header("x-fastvg-cache"), Some("miss"));

    let metrics = daemon.service().metrics();
    assert_eq!(metrics.cache_hits.get(), 2);
    assert_eq!(metrics.cache_misses.get(), 2);

    daemon.shutdown();
    daemon.join();
}

#[test]
fn async_submit_then_poll() {
    let daemon = boot();
    let mut client = connect(&daemon);

    let accepted = client.post("/extract", br#"{"benchmark": 3}"#).unwrap();
    assert_eq!(accepted.status, 202);
    let doc = accepted.json().unwrap();
    let id = doc.get("job").and_then(Json::as_u64).expect("job id");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("queued"));

    // Poll until done.
    let mut result = None;
    for _ in 0..200 {
        let polled = client.get(&format!("/jobs/{id}")).unwrap();
        assert_eq!(polled.status, 200);
        let doc = polled.json().unwrap();
        match doc.get("status").and_then(Json::as_str) {
            Some("queued" | "running") => {
                std::thread::sleep(Duration::from_millis(25));
            }
            _ => {
                result = Some((polled, doc));
                break;
            }
        }
    }
    let (polled, doc) = result.expect("job finishes");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(polled.header("x-fastvg-cache"), Some("miss"));

    // The wire report parses back into the unified type.
    let report = fastvg_core::api::ExtractionReport::from_json(doc.get("report").unwrap()).unwrap();
    assert!(report.slope_v < -1.0);
    assert!(!report.stages.is_empty());

    // A waiting request for the same scenario replays those exact bytes.
    let waited = client
        .post("/extract?wait", br#"{"benchmark": 3}"#)
        .unwrap();
    assert_eq!(waited.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(waited.body, polled.body);

    daemon.shutdown();
    daemon.join();
}

#[test]
fn inline_grids_and_custom_specs_extract() {
    let daemon = boot();
    let mut client = connect(&daemon);

    // A clean synthetic double-dot diagram, inlined as a grid.
    let size = 64usize;
    let mut data = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let (v1, v2) = (x as f64, y as f64);
            let mut current = 8.0 - 0.002 * (v1 + v2);
            if v2 > -4.0 * (v1 - 0.62 * size as f64) {
                current -= 1.0;
            }
            if v2 > 0.58 * size as f64 - 0.3 * v1 {
                current -= 0.8;
            }
            data.push(format!("{current:.6}"));
        }
    }
    let body = format!(
        "{{\"grid\": {{\"x0\": 0, \"y0\": 0, \"delta\": 1, \"width\": {size}, \"height\": {size}, \"data\": [{}]}}}}",
        data.join(",")
    );
    let response = client.post("/extract?wait", body.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{:?}", response.json());
    let doc = response.json().unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    // Same grid, different whitespace → same cache entry.
    let respaced = body.replace(", ", ",  ");
    let hit = client.post("/extract?wait", respaced.as_bytes()).unwrap();
    assert_eq!(hit.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(hit.body, response.body);

    // A custom spec request with an explicit seed replays bit-identically
    // across two *different* daemons (per-job seeds, not server state).
    let spec_body = br#"{"spec": {"size": 63, "seed": 424242}, "method": "fast"}"#;
    let first = client.post("/extract?wait", spec_body).unwrap();
    assert_eq!(first.header("x-fastvg-cache"), Some("miss"));
    let parse_slopes = |response: &fastvg_serve::ClientResponse| {
        let doc = response.json().unwrap();
        let report = doc.get("report").expect("report").clone();
        (
            report.get("slope_h").and_then(Json::as_f64).unwrap(),
            report.get("slope_v").and_then(Json::as_f64).unwrap(),
            report.get("probes").and_then(Json::as_u64).unwrap(),
        )
    };
    let other_daemon = boot();
    let mut other_client = connect(&other_daemon);
    let second = other_client.post("/extract?wait", spec_body).unwrap();
    assert_eq!(second.header("x-fastvg-cache"), Some("miss"));
    let (h1, v1, p1) = parse_slopes(&first);
    let (h2, v2, p2) = parse_slopes(&second);
    assert_eq!(
        h1.to_bits(),
        h2.to_bits(),
        "seeded replays are bit-identical"
    );
    assert_eq!(v1.to_bits(), v2.to_bits());
    assert_eq!(p1, p2);
    other_daemon.shutdown();
    other_daemon.join();

    daemon.shutdown();
    daemon.join();
}

#[test]
fn extraction_failures_carry_the_taxonomy() {
    let daemon = boot();
    let mut client = connect(&daemon);

    // A featureless diagram (constant current) cannot contain transition
    // lines: extraction must fail deterministically, with a category.
    let flat = format!(
        "{{\"grid\": {{\"x0\": 0, \"y0\": 0, \"delta\": 1, \"width\": 64, \"height\": 64, \"data\": [{}]}}}}",
        vec!["1.0"; 64 * 64].join(",")
    );
    let response = client.post("/extract?wait", flat.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "failures are results, not 5xx");
    assert_eq!(response.header("x-fastvg-status"), Some("failed"));
    let doc = response.json().unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let error = doc.get("error").expect("error payload");
    let failure = fastvg_core::WireFailure::from_json(error).expect("taxonomy category");
    assert!(!failure.message.is_empty());

    // Failures are cached like results.
    let again = client.post("/extract?wait", flat.as_bytes()).unwrap();
    assert_eq!(again.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(
        again.header("x-fastvg-status"),
        Some("failed"),
        "cached failures keep their structural outcome flag"
    );
    assert_eq!(again.body, response.body);

    daemon.shutdown();
    daemon.join();
}

#[test]
fn malformed_requests_are_rejected_not_crashed() {
    let daemon = boot();
    let mut client = connect(&daemon);

    let cases: &[(&[u8], u16)] = &[
        (b"not json", 400),
        (b"[]", 400),
        (b"{}", 400),
        (br#"{"benchmark": 13}"#, 400),
        (br#"{"benchmark": 0}"#, 400),
        (br#"{"benchmark": 3, "spec": {"size": 64}}"#, 400),
        (br#"{"benchmark": 3, "method": "slow"}"#, 400),
        (br#"{"spec": {"size": 4096}}"#, 400),
        (
            br#"{"grid": {"width": 8, "height": 8, "x0": 0, "y0": 0, "delta": 1, "data": [1]}}"#,
            400,
        ),
        (br#"{"grid": {"width": 8}, "seed": 1}"#, 400),
    ];
    for (body, expected) in cases {
        let response = client.post("/extract?wait", body).unwrap();
        assert_eq!(
            response.status,
            *expected,
            "{}",
            String::from_utf8_lossy(body)
        );
        let doc = response.json().unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("category"))
                .and_then(Json::as_str),
            Some("request")
        );
    }

    // Unknown routes and methods.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/extract").unwrap().status, 405);
    assert_eq!(client.post("/healthz", b"").unwrap().status, 405);
    assert_eq!(client.get("/jobs/abc").unwrap().status, 400);
    assert_eq!(client.get("/jobs/999999").unwrap().status, 404);

    // The connection survived all of that (keep-alive), and the daemon
    // still serves.
    let ok = client
        .post("/extract?wait", br#"{"benchmark": 5}"#)
        .unwrap();
    assert_eq!(ok.status, 200);

    daemon.shutdown();
    daemon.join();
}

#[test]
fn oversized_bodies_get_413() {
    let daemon = boot_with(|config| config.max_body_bytes = 1024);
    let mut client = connect(&daemon);
    let big = format!(
        "{{\"grid\": {{\"width\": 8, \"height\": 8, \"x0\": 0, \"y0\": 0, \"delta\": 1, \"data\": [{}]}}}}",
        vec!["1.0"; 2000].join(",")
    );
    let response = client.post("/extract", big.as_bytes()).unwrap();
    assert_eq!(response.status, 413);
    daemon.shutdown();
    daemon.join();
}

#[test]
fn healthz_and_metrics_report_the_workload() {
    let daemon = boot();
    let mut client = connect(&daemon);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = health.json().unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    let _ = client
        .post("/extract?wait", br#"{"benchmark": 8}"#)
        .unwrap();
    let _ = client
        .post("/extract?wait", br#"{"benchmark": 8}"#)
        .unwrap();

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    for needle in [
        "fastvg_requests_total{route=\"extract\"} 2",
        "fastvg_jobs_total{state=\"completed\"} 1",
        "fastvg_cache_requests_total{outcome=\"hit\"} 1",
        "fastvg_cache_requests_total{outcome=\"miss\"} 1",
        "fastvg_request_latency_seconds_count 2",
        "fastvg_stage_latency_seconds_bucket{stage=\"anchors\"",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    daemon.shutdown();
    daemon.join();
}

#[test]
fn concurrent_connections_share_the_daemon() {
    let daemon = boot();
    let addr = daemon.addr().to_string();

    // Four clients fire distinct benchmarks concurrently; then all four
    // fire the same ones again and must see hits with identical bytes.
    let first_pass: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let body = format!("{{\"benchmark\": {}}}", 3 + k);
                    let response = client.post("/extract?wait", body.as_bytes()).unwrap();
                    assert_eq!(response.status, 200, "connection {k}");
                    assert_eq!(response.header("x-fastvg-cache"), Some("miss"));
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let second_pass: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let body = format!("{{\"benchmark\": {}}}", 3 + k);
                    let response = client.post("/extract?wait", body.as_bytes()).unwrap();
                    assert_eq!(response.header("x-fastvg-cache"), Some("hit"));
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(first_pass, second_pass, "hits replay cold bytes");

    daemon.shutdown();
    daemon.join();
}

#[test]
fn shutdown_route_stops_the_daemon() {
    let daemon = boot();
    let mut client = connect(&daemon);
    let response = client.post("/shutdown", b"").unwrap();
    assert_eq!(response.status, 202);
    // join() returning proves the acceptor and workers drained.
    daemon.join();
}

/// The daemon-side fingerprint for an `/extract` body, computed through
/// the same [`fastvg_serve::ExtractParser`] the daemon (and the router)
/// use — tests never re-implement canonicalization.
fn fingerprint_of(body: &[u8]) -> (u64, String) {
    let parser = fastvg_serve::ExtractParser::new("sim").unwrap();
    let request = fastvg_serve::Request {
        method: "POST".into(),
        path: "/extract".into(),
        query: "wait".into(),
        headers: Vec::new(),
        body: body.to_vec(),
        read_us: 0,
    };
    let (job, _wait) = parser.parse(&request).expect("valid extract body");
    (job.fingerprint, job.canonical)
}

#[test]
fn cache_peering_serves_and_seeds_entries() {
    let warm = boot();
    let mut client = connect(&warm);
    let body = br#"{"benchmark": 6, "method": "fast"}"#;
    let (fp, canonical) = fingerprint_of(body);

    // Peer GET before any work: a miss, counted as such.
    let cold_probe = client.get(&format!("/cache/{fp}")).unwrap();
    assert_eq!(cold_probe.status, 404);

    let cold = client.post("/extract?wait", body).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-fastvg-cache"), Some("miss"));

    // Peer GET after: the stored bytes, framed exactly like a cache-hit
    // extract response so a router can relay it verbatim.
    let peek = client.get(&format!("/cache/{fp}")).unwrap();
    assert_eq!(peek.status, 200);
    assert_eq!(peek.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(peek.header("x-fastvg-status"), Some("done"));
    assert_eq!(peek.body, cold.body, "peer reads replay stored bytes");

    // The verified form: canonical key in the body must match the entry.
    let verified = client
        .send("GET", &format!("/cache/{fp}"), canonical.as_bytes())
        .unwrap();
    assert_eq!(verified.status, 200);
    assert_eq!(verified.body, cold.body);
    let mismatched = client
        .send("GET", &format!("/cache/{fp}"), b"some other canonical key")
        .unwrap();
    assert_eq!(mismatched.status, 404, "collision-guard: wrong key misses");

    let metrics = warm.service().metrics();
    assert_eq!(metrics.cache_peer_hits.get(), 2);
    assert_eq!(metrics.cache_peer_misses.get(), 2);

    // Seed a second, empty daemon with the warm daemon's entry — the
    // router's PUT half of peering — and verify the seeded daemon now
    // answers the original request as a byte-identical cache hit.
    let empty = boot();
    let mut peer = connect(&empty);
    assert_eq!(peer.get(&format!("/cache/{fp}")).unwrap().status, 404);
    let seed = Json::object()
        .field("key", canonical.as_str())
        .field("ok", true)
        .field("body", String::from_utf8(cold.body.clone()).unwrap())
        .build()
        .dump();
    let put = peer.put(&format!("/cache/{fp}"), seed.as_bytes()).unwrap();
    assert_eq!(put.status, 200, "{}", String::from_utf8_lossy(&put.body));
    let hit = peer.post("/extract?wait", body).unwrap();
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-fastvg-cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "seeded entry is byte-identical");
    assert_eq!(empty.service().metrics().cache_seeds.get(), 1);

    // A fingerprint that does not hash the key is rejected, not stored.
    let bad = peer
        .put(&format!("/cache/{}", fp ^ 1), seed.as_bytes())
        .unwrap();
    assert_eq!(bad.status, 400);

    warm.shutdown();
    empty.shutdown();
    warm.join();
    empty.join();
}

#[test]
fn cache_peering_can_be_disabled() {
    let daemon = boot_with(|cfg| cfg.cache_peering = false);
    let mut client = connect(&daemon);
    assert_eq!(client.get("/cache/1").unwrap().status, 404);
    let put = client.put("/cache/1", b"{}").unwrap();
    assert_eq!(put.status, 404, "disabled peering hides the routes");
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(
        health.get("cache_peering").and_then(Json::as_bool),
        Some(false)
    );
    daemon.shutdown();
    daemon.join();
}
