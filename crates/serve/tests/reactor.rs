//! Framing-edge tests for the epoll reactor, over raw sockets: the
//! cases a friendly keep-alive client never produces — pipelined
//! segments, heads split across writes, slowloris bodies, half-open
//! disconnects, accept-time overload, and graceful drain with a
//! response still in flight.

use fastvg_serve::{
    deferred, Completer, Handler, HttpConfig, HttpServer, Outcome, Request, Response,
};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Echoes `<method> <path>` (+ `:<body>` when non-empty); `/defer`
/// parks the request and hands its [`Completer`] to the test thread.
struct TestHandler {
    completers: Mutex<Sender<Completer>>,
}

impl Handler for TestHandler {
    fn handle(&self, request: &Request) -> Outcome {
        if request.path == "/defer" {
            let (deferred, completer) = deferred();
            self.completers
                .lock()
                .unwrap()
                .send(completer)
                .expect("test thread holds the receiver");
            return Outcome::Pending(deferred);
        }
        let mut text = format!("{} {}", request.method, request.path);
        if !request.body.is_empty() {
            text.push(':');
            text.push_str(&String::from_utf8_lossy(&request.body));
        }
        Outcome::Ready(Response::text(200, text))
    }
}

struct TestServer {
    server: HttpServer,
    addr: String,
    #[allow(dead_code)]
    completers: std::sync::mpsc::Receiver<Completer>,
}

fn boot(tweak: impl FnOnce(&mut HttpConfig)) -> TestServer {
    let (tx, rx) = channel();
    let handler = Arc::new(TestHandler {
        completers: Mutex::new(tx),
    });
    let mut config = HttpConfig::default();
    tweak(&mut config);
    let server = HttpServer::bind("127.0.0.1:0", handler, config).expect("ephemeral bind");
    let addr = server.addr().to_string();
    TestServer {
        server,
        addr,
        completers: rx,
    }
}

/// Reads one full response (status line + headers + content-length
/// body) out of `buf`, pulling more bytes off the stream as needed.
/// Trailing bytes — the next pipelined response, when the reactor
/// coalesces several into one segment — stay in `buf` for the next
/// call.
fn read_response_into(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("response read");
        assert!(n > 0, "connection closed before a full head: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or(0);
    while buf.len() < head_end + length {
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("body read");
        assert!(n > 0, "connection closed inside the body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf[head_end..head_end + length].to_vec();
    buf.drain(..head_end + length);
    (status, headers, body)
}

/// [`read_response_into`] for streams with at most one response in
/// flight (every test but the pipelined one).
fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut buf = Vec::new();
    read_response_into(stream, &mut buf)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

#[test]
fn pipelined_requests_in_one_segment_answer_in_order() {
    let ts = boot(|_| {});
    let mut stream = connect(&ts.addr);
    stream
        .write_all(
            b"GET /first HTTP/1.1\r\nhost: t\r\n\r\n\
              POST /second HTTP/1.1\r\nhost: t\r\ncontent-length: 5\r\n\r\nhello\
              GET /third HTTP/1.1\r\nhost: t\r\n\r\n",
        )
        .unwrap();
    let mut buf = Vec::new();
    let (status, _, body) = read_response_into(&mut stream, &mut buf);
    assert_eq!((status, body.as_slice()), (200, b"GET /first".as_slice()));
    let (status, _, body) = read_response_into(&mut stream, &mut buf);
    assert_eq!(
        (status, body.as_slice()),
        (200, b"POST /second:hello".as_slice())
    );
    let (status, _, body) = read_response_into(&mut stream, &mut buf);
    assert_eq!((status, body.as_slice()), (200, b"GET /third".as_slice()));
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn heads_split_across_many_writes_still_parse() {
    let ts = boot(|_| {});
    let mut stream = connect(&ts.addr);
    for piece in [
        "POST /sp",
        "lit HTTP/1.1\r\nho",
        "st: t\r\ncontent-le",
        "ngth: 4\r\n\r\n",
        "ab",
        "cd",
    ] {
        stream.write_all(piece.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, b"POST /split:abcd");
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn slowloris_bodies_hit_the_read_deadline_with_408() {
    let ts = boot(|config| {
        config.request_read_deadline = Duration::from_millis(200);
        config.idle_timeout = Duration::from_secs(30);
    });
    let mut stream = connect(&ts.addr);
    // Head complete, body trickling: one byte of forty ever arrives.
    stream
        .write_all(b"POST /drip HTTP/1.1\r\nhost: t\r\ncontent-length: 40\r\n\r\nx")
        .unwrap();
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 408, "trickling request must time out");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "close"),
        "a timed-out connection is not reusable: {headers:?}"
    );
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn idle_keepalive_connections_close_silently_not_with_408() {
    let ts = boot(|config| {
        config.idle_timeout = Duration::from_millis(200);
        config.request_read_deadline = Duration::from_secs(30);
    });
    let mut stream = connect(&ts.addr);
    // One complete request proves the connection is established and
    // idle-between-requests, not mid-request.
    stream
        .write_all(b"GET /warm HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);

    // Now sit idle past the timeout: the server closes without writing a
    // single byte (no 408 — the request deadline is for started
    // requests).
    let mut trailing = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match stream.read_to_end(&mut trailing) {
        Ok(_) => assert_eq!(trailing, b"", "idle close must be silent, got {trailing:?}"),
        Err(e) => panic!("expected clean close, got {e}"),
    }
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn client_disconnect_while_parked_does_not_kill_the_reactor() {
    let ts = boot(|_| {});
    {
        let mut stream = connect(&ts.addr);
        stream
            .write_all(b"GET /defer HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        // The handler parked the request; drop the connection mid-wait.
        let completer = ts
            .completers
            .recv_timeout(Duration::from_secs(5))
            .expect("request reaches the handler");
        drop(stream);
        std::thread::sleep(Duration::from_millis(50));
        // The completion lands on a dead connection: must be a no-op.
        completer.complete(Response::text(200, "too late"));
    }
    // The reactor survived and serves the next connection.
    let mut stream = connect(&ts.addr);
    stream
        .write_all(b"GET /alive HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_response(&mut stream);
    assert_eq!((status, body.as_slice()), (200, b"GET /alive".as_slice()));
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn shutdown_drains_parked_requests_before_exiting() {
    let ts = boot(|config| config.drain_deadline = Duration::from_secs(10));
    let mut stream = connect(&ts.addr);
    stream
        .write_all(b"GET /defer HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let completer = ts
        .completers
        .recv_timeout(Duration::from_secs(5))
        .expect("request reaches the handler");

    // Shutdown with the response still pending: the reactor must wait
    // for it, deliver it, then exit.
    let handle = ts.server.shutdown_handle();
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(100));
    completer.complete(Response::text(200, "drained"));

    let (status, headers, body) = read_response(&mut stream);
    assert_eq!((status, body.as_slice()), (200, b"drained".as_slice()));
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "close"),
        "draining responses must close: {headers:?}"
    );
    ts.server.join();
}

#[test]
fn over_limit_accepts_get_503_and_close() {
    let ts = boot(|config| config.max_connections = 2);
    let mut first = connect(&ts.addr);
    let mut second = connect(&ts.addr);
    for stream in [&mut first, &mut second] {
        stream
            .write_all(b"GET /seat HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let (status, _, _) = read_response(stream);
        assert_eq!(status, 200);
    }
    let mut third = connect(&ts.addr);
    let (status, headers, _) = read_response(&mut third);
    assert_eq!(status, 503, "third seat is over the limit");
    assert!(headers
        .iter()
        .any(|(k, v)| k == "connection" && v == "close"));

    // Releasing a seat makes room for the next accept.
    drop(first);
    std::thread::sleep(Duration::from_millis(100));
    let mut fourth = connect(&ts.addr);
    fourth
        .write_all(b"GET /seat HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut fourth);
    assert_eq!(status, 200);
    assert!(ts.server.stats().rejected() >= 1);
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn oversized_heads_get_431() {
    let ts = boot(|config| config.max_head_bytes = 256);
    let mut stream = connect(&ts.addr);
    let huge = format!(
        "GET /x HTTP/1.1\r\nhost: t\r\nx-filler: {}\r\n\r\n",
        "f".repeat(1024)
    );
    stream.write_all(huge.as_bytes()).unwrap();
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 431);
    assert!(headers
        .iter()
        .any(|(k, v)| k == "connection" && v == "close"));
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn many_keepalive_connections_round_robin_through_one_reactor() {
    let ts = boot(|_| {});
    let mut streams: Vec<TcpStream> = (0..64).map(|_| connect(&ts.addr)).collect();
    for round in 0..3 {
        for (i, stream) in streams.iter_mut().enumerate() {
            stream
                .write_all(format!("GET /c{i}r{round} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let (status, _, body) = read_response(stream);
            assert_eq!(status, 200);
            assert_eq!(body, format!("GET /c{i}r{round}").into_bytes());
        }
    }
    assert_eq!(ts.server.stats().open(), 64);
    assert_eq!(ts.server.stats().requests(), 64 * 3);
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn write_errors_on_closed_sockets_are_contained() {
    // A client that sends a request and slams the connection before
    // reading: the reactor's write hits ECONNRESET/EPIPE and must just
    // drop the connection.
    let ts = boot(|_| {});
    for _ in 0..16 {
        let mut stream = connect(&ts.addr);
        stream
            .write_all(b"GET /hitandrun HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        // Close both directions immediately; the server's response write
        // lands on a shut-down socket.
        stream.shutdown(std::net::Shutdown::Both).ok();
        drop(stream);
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut stream = connect(&ts.addr);
    stream
        .write_all(b"GET /alive HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_response(&mut stream);
    assert_eq!((status, body.as_slice()), (200, b"GET /alive".as_slice()));
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}

#[test]
fn read_timeout_guard() {
    // Sanity for the helper: a read timeout on our side must not be
    // mistaken for a server close in the silent-idle test.
    let ts = boot(|config| config.idle_timeout = Duration::from_secs(30));
    let stream = connect(&ts.addr);
    let mut probe = stream.try_clone().unwrap();
    probe
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut byte = [0u8; 1];
    let err = probe.read(&mut byte).unwrap_err();
    assert!(
        matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
        "{err:?}"
    );
    ts.server.shutdown_handle().shutdown();
    ts.server.join();
}
