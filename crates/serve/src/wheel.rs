//! A hashed timing wheel for the reactor's connection deadlines.
//!
//! The reactor arms thousands of cheap, coarse timers — keep-alive idle
//! timeouts, per-request read deadlines, `?wait` fallbacks — and cancels
//! almost all of them before they fire (every completed request cancels
//! its deadline). A binary heap would pay `O(log n)` per arm *and* need
//! tombstones for cancellation; the wheel arms in `O(1)` and cancels for
//! free via lazy invalidation: entries carry the connection's `cycle`
//! counter at arm time, and the reactor bumps the counter on every state
//! transition, so a fired entry whose cycle no longer matches is simply
//! stale and dropped.
//!
//! Timers are coarse by design (one tick of slack, default 25 ms): these
//! are liveness deadlines measured in seconds, not schedulers.

use std::time::{Duration, Instant};

/// One armed timer: fire for `token` if its `cycle` still matches.
#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline: Instant,
    token: u64,
    cycle: u64,
}

/// A fired timer, handed back to the reactor for validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    /// The registration token the timer was armed for.
    pub token: u64,
    /// The owner's cycle counter at arm time; stale if it moved on.
    pub cycle: u64,
}

/// The wheel: a ring of slots, each one tick wide. Deadlines beyond the
/// horizon (`slots × tick`) park in the last reachable slot and re-queue
/// when the cursor passes them.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    cursor: usize,
    /// Wall-clock start of the cursor slot.
    cursor_time: Instant,
    len: usize,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide.
    pub fn new(tick: Duration, slots: usize) -> Self {
        assert!(tick > Duration::ZERO, "tick must be positive");
        assert!(slots >= 2, "wheel needs at least two slots");
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            cursor_time: Instant::now(),
            len: 0,
        }
    }

    /// Number of armed (possibly stale) entries.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are armed.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer for `(token, cycle)` at `deadline`.
    pub fn schedule(&mut self, deadline: Instant, token: u64, cycle: u64) {
        if self.len == 0 {
            // Re-anchor an empty wheel so cursor time doesn't lag: a wheel
            // that sat idle for an hour must not spin through stale slots.
            self.cursor_time = Instant::now();
        }
        let slot = self.slot_for(deadline);
        self.slots[slot].push(Entry {
            deadline,
            token,
            cycle,
        });
        self.len += 1;
    }

    fn slot_for(&self, deadline: Instant) -> usize {
        let ticks = if deadline <= self.cursor_time {
            // Already due: next expire sweep picks it up in the cursor slot.
            0
        } else {
            let remaining = deadline.duration_since(self.cursor_time);
            // Integer division truncates toward "fires early"; `expire`
            // re-queues entries whose wall deadline hasn't passed, so
            // truncation costs a re-queue, never a premature fire.
            (remaining.as_nanos() / self.tick.as_nanos()) as usize
        };
        (self.cursor + ticks.min(self.slots.len() - 1)) % self.slots.len()
    }

    /// How long the reactor may sleep before the next sweep is needed.
    /// `None` means "no timers armed — sleep until a socket or waker
    /// event".
    pub fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let next_slot_end = self.cursor_time + self.tick;
        Some(next_slot_end.saturating_duration_since(now).min(self.tick))
    }

    /// Advances the cursor to `now`, appending every due timer to `out`.
    /// Entries beyond their slot but short of their wall deadline (the
    /// beyond-horizon case) are re-queued instead of fired.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<Fired>) {
        let mut requeue: Vec<Entry> = Vec::new();
        while self.cursor_time + self.tick <= now {
            let slot = self.cursor;
            let entries = std::mem::take(&mut self.slots[slot]);
            self.len -= entries.len();
            for entry in entries {
                if entry.deadline <= now {
                    out.push(Fired {
                        token: entry.token,
                        cycle: entry.cycle,
                    });
                } else {
                    requeue.push(entry);
                }
            }
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time += self.tick;
        }
        for entry in requeue {
            self.schedule(entry.deadline, entry.token, entry.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, now: Instant) -> Vec<Fired> {
        let mut fired = Vec::new();
        wheel.expire(now, &mut fired);
        fired
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 64);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(35), 1, 0);

        assert!(drain(&mut wheel, now + Duration::from_millis(20)).is_empty());
        let fired = drain(&mut wheel, now + Duration::from_millis(60));
        assert_eq!(fired, vec![Fired { token: 1, cycle: 0 }]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn beyond_horizon_deadlines_requeue_until_due() {
        // Horizon is 8 × 5ms = 40ms; the deadline sits far past it.
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 8);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(200), 9, 3);

        assert!(drain(&mut wheel, now + Duration::from_millis(100)).is_empty());
        assert_eq!(wheel.len(), 1, "entry re-queued, not dropped");
        let fired = drain(&mut wheel, now + Duration::from_millis(250));
        assert_eq!(fired, vec![Fired { token: 9, cycle: 3 }]);
    }

    #[test]
    fn many_timers_fire_in_any_order_but_completely() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 32);
        let now = Instant::now();
        for token in 0..100u64 {
            wheel.schedule(
                now + Duration::from_millis(5 + (token % 7) * 40),
                token,
                token,
            );
        }
        let mut fired = drain(&mut wheel, now + Duration::from_secs(1));
        fired.sort_by_key(|f| f.token);
        assert_eq!(fired.len(), 100);
        for (i, f) in fired.iter().enumerate() {
            assert_eq!(f.token, i as u64);
            assert_eq!(f.cycle, i as u64);
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.poll_timeout(now), None);
    }

    #[test]
    fn already_due_deadline_fires_on_next_sweep() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16);
        let now = Instant::now();
        wheel.schedule(now - Duration::from_secs(1), 4, 1);
        let fired = drain(&mut wheel, now + Duration::from_millis(20));
        assert_eq!(fired, vec![Fired { token: 4, cycle: 1 }]);
    }

    #[test]
    fn poll_timeout_bounded_by_tick() {
        let mut wheel = TimerWheel::new(Duration::from_millis(25), 16);
        let now = Instant::now();
        assert_eq!(wheel.poll_timeout(now), None);
        wheel.schedule(now + Duration::from_secs(5), 1, 0);
        let timeout = wheel.poll_timeout(now).expect("armed wheel has timeout");
        assert!(timeout <= Duration::from_millis(25));
    }
}
