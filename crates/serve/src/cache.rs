//! The sharded LRU result cache.
//!
//! Keyed by a content fingerprint of the canonical request — method +
//! fully resolved scenario spec in [`fastvg_wire::Json::canonical`] form
//! — so semantically identical requests (`{"benchmark": 3}` vs the same
//! device spelled out field by field) share one entry. Values are the
//! *serialized* result documents, which is what makes cache-hit
//! responses byte-identical to the cold run that populated them: the
//! daemon replays stored bytes, it never re-serializes.
//!
//! Sharding keeps the daemon's connection workers from serializing on
//! one mutex: each fingerprint maps to one of `shards` independently
//! locked LRU maps. Eviction is per shard, least-recently-used first.
//! FNV-64 fingerprints can collide in principle, so every entry stores
//! its full canonical key and a hit requires an exact key match — a
//! collision costs a miss, never a wrong answer.

use fastvg_wire::mix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entries across all shards (`0` disables caching).
    pub capacity: usize,
    /// Number of independently locked shards (≥ 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            shards: 8,
        }
    }
}

/// What the cache stores per request: the serialized result document
/// plus its outcome flag (kept structurally, never re-derived from the
/// bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// The result document bytes, replayed verbatim on hit.
    pub body: Vec<u8>,
    /// Whether the document reports `"ok": true`.
    pub ok: bool,
}

#[derive(Debug)]
struct Entry {
    /// Full canonical key, verified on hit (fingerprints may collide).
    key: String,
    result: CachedResult,
    /// Last-touch tick for LRU ordering.
    touched: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
}

/// A sharded, fingerprint-keyed LRU map from canonical requests to
/// serialized result documents.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: config.capacity.div_ceil(shards),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        // The fingerprint is raw FNV-1a, whose low bits correlate with
        // the last bytes hashed; `fnv % n` would pile structured key
        // families (same suffix, e.g. a shared backend tail) onto one
        // shard. Mix first so the reduction sees avalanche-quality bits.
        &self.shards[(mix64(fingerprint) as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up the stored result for `(fingerprint, key)`, refreshing
    /// its LRU position on hit.
    pub fn get(&self, fingerprint: u64, key: &str) -> Option<CachedResult> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let tick = self.tick();
        let mut shard = self.shard(fingerprint).lock().expect("cache poisoned");
        let entry = shard.entries.get_mut(&fingerprint)?;
        if entry.key != key {
            return None; // fingerprint collision: treat as a miss
        }
        entry.touched = tick;
        Some(entry.result.clone())
    }

    /// Looks up whatever is stored under `fingerprint` alone, returning
    /// the entry's full canonical key alongside its result so the caller
    /// can do (or skip) its own collision check. This is the cache-peer
    /// lookup: a sibling probing `GET /cache/<fingerprint>` without the
    /// canonical key gets the entry plus the key that owns it.
    /// Refreshes the LRU position like [`ResultCache::get`].
    pub fn peek(&self, fingerprint: u64) -> Option<(String, CachedResult)> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let tick = self.tick();
        let mut shard = self.shard(fingerprint).lock().expect("cache poisoned");
        let entry = shard.entries.get_mut(&fingerprint)?;
        entry.touched = tick;
        Some((entry.key.clone(), entry.result.clone()))
    }

    /// Stores a result under `(fingerprint, key)`, evicting the shard's
    /// least-recently-used entry when over capacity.
    pub fn insert(&self, fingerprint: u64, key: &str, result: CachedResult) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let tick = self.tick();
        let mut shard = self.shard(fingerprint).lock().expect("cache poisoned");
        shard.entries.insert(
            fingerprint,
            Entry {
                key: key.to_string(),
                result,
                touched: tick,
            },
        );
        while shard.entries.len() > self.per_shard_capacity {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(&fp, _)| fp)
                .expect("non-empty over capacity");
            shard.entries.remove(&oldest);
        }
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, shards: usize) -> ResultCache {
        ResultCache::new(CacheConfig { capacity, shards })
    }

    fn ok(body: &[u8]) -> CachedResult {
        CachedResult {
            body: body.to_vec(),
            ok: true,
        }
    }

    #[test]
    fn stores_and_replays_bytes_with_outcome() {
        let c = cache(8, 2);
        assert!(c.get(1, "k1").is_none());
        c.insert(1, "k1", ok(b"body-1"));
        assert_eq!(c.get(1, "k1"), Some(ok(b"body-1")));
        c.insert(
            2,
            "k2",
            CachedResult {
                body: b"failure".to_vec(),
                ok: false,
            },
        );
        assert!(!c.get(2, "k2").unwrap().ok, "outcome flag is structural");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn collisions_miss_instead_of_lying() {
        let c = cache(8, 1);
        c.insert(42, "key-a", ok(b"a"));
        assert!(c.get(42, "key-b").is_none(), "same fingerprint, other key");
        assert!(c.get(42, "key-a").is_some());
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        let c = cache(2, 1);
        c.insert(1, "k1", ok(b"1"));
        c.insert(2, "k2", ok(b"2"));
        assert!(c.get(1, "k1").is_some()); // refresh k1; k2 is now LRU
        c.insert(3, "k3", ok(b"3"));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, "k2").is_none(), "LRU entry evicted");
        assert!(c.get(1, "k1").is_some());
        assert!(c.get(3, "k3").is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = cache(0, 4);
        c.insert(1, "k", ok(b"x"));
        assert!(c.get(1, "k").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn shards_partition_the_key_space() {
        // Headroom over 64 entries: the mixed shard assignment is not a
        // perfectly even split, so a tight capacity would evict.
        let c = cache(256, 8);
        for fp in 0..64u64 {
            c.insert(fp, &format!("k{fp}"), ok(&[fp as u8]));
        }
        assert_eq!(c.len(), 64);
        for fp in 0..64u64 {
            assert_eq!(c.get(fp, &format!("k{fp}")), Some(ok(&[fp as u8])));
        }
    }

    #[test]
    fn peek_returns_key_and_result_without_verification() {
        let c = cache(8, 2);
        assert!(c.peek(7).is_none());
        c.insert(7, "canonical-7", ok(b"body-7"));
        let (key, result) = c.peek(7).expect("entry present");
        assert_eq!(key, "canonical-7");
        assert_eq!(result, ok(b"body-7"));
    }

    #[test]
    fn structured_fingerprints_spread_across_shards() {
        // Fingerprints sharing their low 32 bits (zero) — the family a
        // raw `fnv % shards` reduction would pile onto shard 0. With the
        // mixed reduction every shard must see a fair share.
        let shards = 8;
        let c = cache(4096, shards);
        let n = 1024u64;
        for i in 0..n {
            c.insert(i << 32, &format!("k{i}"), ok(&[1]));
        }
        assert_eq!(c.len(), n as usize, "no collisions among test keys");
        let per_shard: Vec<usize> = c
            .shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .collect();
        let expected = n as usize / shards;
        for (i, &count) in per_shard.iter().enumerate() {
            assert!(
                count > expected / 2 && count < expected * 2,
                "shard {i} holds {count} of {n} entries (expected ~{expected}): {per_shard:?}"
            );
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(cache(128, 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let fp = (t * 1000 + i) % 96;
                        let key = format!("k{fp}");
                        c.insert(fp, &key, ok(key.as_bytes()));
                        if let Some(result) = c.get(fp, &key) {
                            assert_eq!(result.body, key.as_bytes());
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 128);
    }
}
