//! The `fastvg-serve` daemon binary.
//!
//! ```sh
//! cargo run --release -p fastvg-serve -- --addr 127.0.0.1:8737
//! curl -s localhost:8737/healthz
//! curl -s -X POST localhost:8737/extract?wait -d '{"benchmark": 6}'
//! curl -s -X POST localhost:8737/shutdown
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:8737`; port
//!   `0` picks an ephemeral port, printed on stdout).
//! * `--jobs N` — concurrent extraction workers (default: one per core).
//! * `--max-connections N` — concurrently open connections before the
//!   reactor answers `503` at accept (default 4096).
//! * `--read-deadline-s SECS` — per-request read deadline, the
//!   anti-slowloris bound (default 30).
//! * `--idle-timeout-s SECS` — keep-alive idle timeout between requests
//!   (default 10).
//! * `--drain-deadline-s SECS` — graceful-shutdown drain bound
//!   (default 30).
//! * `--queue-capacity N` — pending jobs before 503 (default 256).
//! * `--cache-capacity N` — cached results, `0` disables (default 1024).
//! * `--cache-shards N` — cache lock shards (default 8).
//! * `--backend SPEC` — default probe backend for scenarios
//!   (`sim`, `throttled:<dwell>`, `record:<tape>[+inner]`,
//!   `replay:<tape>`; default `sim`). Requests may override with their
//!   own (restricted) `"backend"` member.
//! * `--no-cache-peering` — disable the `GET`/`PUT /cache/<fingerprint>`
//!   peering surface (`fastvg-router` uses it to share warm results
//!   across a fleet; see `docs/FLEET.md`).
//! * `--trace-out PATH` — export finished spans as newline-JSON to
//!   `PATH` and trace every request (see `docs/OBSERVABILITY.md`).
//! * `--trace-seed N` — fixed trace/span id seed for replay tests
//!   (default: entropy).
//! * `--slow-ms MS` — log a rate-limited structured line (JSON on
//!   stderr, with the trace id) for requests slower than `MS`
//!   milliseconds (default: off).
//! * `--shutdown-after SECS` — stop gracefully after a deadline (CI
//!   smoke harnesses; `std` cannot catch SIGTERM, so the deadline and
//!   `POST /shutdown` are the daemon's stop channels).

use fastvg_serve::{start, CacheConfig, ServeConfig};
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let value = args
        .next()
        .unwrap_or_else(|| panic!("{flag} expects a value"));
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag} got malformed value {value:?}"))
}

fn main() {
    let mut config = ServeConfig::default();
    let mut cache = CacheConfig::default();
    let mut shutdown_after: Option<u64> = None;

    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_flag(&mut args, "--addr"),
            "--jobs" => config.extract_jobs = parse_flag(&mut args, "--jobs"),
            "--max-connections" => {
                config.max_connections = parse_flag(&mut args, "--max-connections")
            }
            "--read-deadline-s" => {
                config.request_read_deadline =
                    Duration::from_secs(parse_flag(&mut args, "--read-deadline-s"))
            }
            "--idle-timeout-s" => {
                config.idle_timeout = Duration::from_secs(parse_flag(&mut args, "--idle-timeout-s"))
            }
            "--drain-deadline-s" => {
                config.drain_deadline =
                    Duration::from_secs(parse_flag(&mut args, "--drain-deadline-s"))
            }
            "--queue-capacity" => config.queue_capacity = parse_flag(&mut args, "--queue-capacity"),
            "--batch-max" => config.batch_max = parse_flag(&mut args, "--batch-max"),
            "--cache-capacity" => cache.capacity = parse_flag(&mut args, "--cache-capacity"),
            "--cache-shards" => cache.shards = parse_flag(&mut args, "--cache-shards"),
            "--max-body-bytes" => config.max_body_bytes = parse_flag(&mut args, "--max-body-bytes"),
            "--wait-timeout-s" => {
                config.wait_timeout = Duration::from_secs(parse_flag(&mut args, "--wait-timeout-s"))
            }
            "--backend" => config.backend = parse_flag(&mut args, "--backend"),
            "--no-cache-peering" => config.cache_peering = false,
            "--trace-out" => {
                config.trace_out = Some(parse_flag::<String>(&mut args, "--trace-out").into())
            }
            "--trace-seed" => config.trace_seed = Some(parse_flag(&mut args, "--trace-seed")),
            "--slow-ms" => {
                config.slow_threshold =
                    Some(Duration::from_millis(parse_flag(&mut args, "--slow-ms")))
            }
            "--shutdown-after" => shutdown_after = Some(parse_flag(&mut args, "--shutdown-after")),
            other => {
                eprintln!("unknown flag {other:?} (see the crate docs for the flag list)");
                std::process::exit(2);
            }
        }
    }
    config.cache = cache;

    let daemon = match start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("fastvg-serve failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The line scripts grep for; flush so pipes see it immediately.
    println!("fastvg-serve listening on http://{}", daemon.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if let Some(secs) = shutdown_after {
        let handle = daemon.shutdown_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(secs));
            handle.shutdown();
        });
    }

    // Runs until POST /shutdown, a ShutdownHandle, or --shutdown-after.
    let handle = daemon.shutdown_handle();
    while !handle.is_shutdown() {
        std::thread::sleep(Duration::from_millis(100));
    }
    daemon.shutdown(); // stop the queue too, then drain
    daemon.join();
    println!("fastvg-serve stopped");
}
