//! Service telemetry: lock-free counters and latency histograms with a
//! Prometheus-style text exposition on `GET /metrics`.
//!
//! Counters are plain relaxed atomics — every hot-path touch is one
//! `fetch_add`. Histograms use fixed log-spaced buckets so p50/p95/p99
//! can be read off the cumulative counts without the server retaining
//! per-request samples. Per-stage extraction latencies are fed from the
//! [`fastvg_core::api::StageTiming`]s each completed job reports, which
//! makes the paper's per-stage cost profile (§4) observable on a live
//! daemon, not just in offline benches.

use fastvg_core::api::StageTiming;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A monotonically increasing counter (relaxed atomics — telemetry does
/// not need ordering).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs) of the latency buckets, log-spaced from 50 µs to
/// 10 s. An implicit `+Inf` bucket catches the rest.
const BUCKET_BOUNDS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total observed time.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// The shared bucket layout: upper bounds in µs, log-spaced; an
    /// implicit `+Inf` bucket follows the last bound.
    pub fn bucket_bounds_us() -> &'static [u64] {
        &BUCKET_BOUNDS_US
    }

    /// Snapshot of `(upper_bound_us, count)` per bucket, `None` for the
    /// final `+Inf` bucket. Counts are per-bucket, not cumulative.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, bucket)| {
                (
                    BUCKET_BOUNDS_US.get(i).copied(),
                    bucket.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Approximate quantile `q` in `[0, 1]`, read off the bucket bounds
    /// (`None` when empty). Upper-bound biased: the true value is at or
    /// below the returned bound.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let us = BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX / 1000);
                return Some(Duration::from_micros(us));
            }
        }
        None
    }

    /// Appends the exposition lines for a histogram named `name`.
    /// Public so `fastvg-router` renders its proxy-latency histogram in
    /// the same format.
    pub fn render(&self, name: &str, labels: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = match BUCKET_BOUNDS_US.get(i) {
                Some(&us) => format!("{}", us as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            let sep = if labels.is_empty() { "" } else { "," };
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!(
            "{name}_sum{braces} {}\n",
            self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!("{name}_count{braces} {}\n", self.count()));
    }
}

/// Appends the `# HELP` / `# TYPE` preamble for a metric family. Every
/// family in an exposition gets exactly one preamble, before its first
/// sample line. Public so `fastvg-router` (and ad-hoc lines appended
/// outside [`Metrics::render`]) emit the same format.
pub fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Appends the `fastvg_build_info` gauge: a constant `1` carrying the
/// crate version and git revision as labels — the standard Prometheus
/// idiom for joining fleet telemetry against deploy metadata. `git`
/// comes from the `FASTVG_GIT` env var each daemon/router `build.rs`
/// stamps at compile time.
pub fn render_build_info(out: &mut String, version: &str, git: &str) {
    family(
        out,
        "fastvg_build_info",
        "gauge",
        "Build metadata as labels; value is always 1.",
    );
    out.push_str(&format!(
        "fastvg_build_info{{version=\"{version}\",git=\"{git}\"}} 1\n"
    ));
}

/// Appends the multiplexed-backend contention families from a
/// [`ChannelPool`](qd_instrument::ChannelPool) snapshot: per-channel
/// stall time (virtual, in seconds), acquire outcomes
/// (`clean`/`stalled`) and the used-over-horizon busy fraction.
pub fn render_mux(stats: &qd_instrument::MuxStats, out: &mut String) {
    family(
        out,
        "fastvg_mux_channel_wait_seconds_total",
        "counter",
        "Virtual time sessions stalled waiting for scheduled dwell slots, per channel.",
    );
    let slot = stats.slot.as_secs_f64();
    for c in &stats.channels {
        out.push_str(&format!(
            "fastvg_mux_channel_wait_seconds_total{{chan=\"{}\"}} {}\n",
            c.chan,
            c.wait_slots as f64 * slot
        ));
    }
    family(
        out,
        "fastvg_mux_acquire_total",
        "counter",
        "Dwell-slot acquisitions per channel, by outcome (clean = at the session's own pace).",
    );
    for c in &stats.channels {
        for (outcome, value) in [("clean", c.clean), ("stalled", c.stalled)] {
            out.push_str(&format!(
                "fastvg_mux_acquire_total{{chan=\"{}\",outcome=\"{outcome}\"}} {value}\n",
                c.chan
            ));
        }
    }
    family(
        out,
        "fastvg_mux_channel_busy_fraction",
        "gauge",
        "Used dwell slots over the channel's schedule horizon (1 = perfectly packed).",
    );
    for c in &stats.channels {
        out.push_str(&format!(
            "fastvg_mux_channel_busy_fraction{{chan=\"{}\"}} {}\n",
            c.chan,
            c.busy_fraction()
        ));
    }
}

/// All the daemon's telemetry, shared by every connection worker and the
/// scheduler.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `POST /extract` requests accepted for parsing.
    pub requests_extract: Counter,
    /// `GET /jobs/<id>` requests.
    pub requests_jobs: Counter,
    /// `GET /healthz` requests.
    pub requests_healthz: Counter,
    /// `GET /metrics` requests.
    pub requests_metrics: Counter,
    /// Requests answered with a 4xx status.
    pub http_4xx: Counter,
    /// Requests answered with a 5xx status.
    pub http_5xx: Counter,
    /// Jobs accepted into the queue.
    pub jobs_submitted: Counter,
    /// Jobs that finished with a report.
    pub jobs_completed: Counter,
    /// Jobs that finished with an extraction failure.
    pub jobs_failed: Counter,
    /// Submissions rejected because the queue was full.
    pub queue_rejected: Counter,
    /// Jobs currently waiting in the queue.
    pub queue_depth: Gauge,
    /// Jobs currently running on the pool.
    pub jobs_running: Gauge,
    /// Results served from the cache.
    pub cache_hits: Counter,
    /// Submissions that missed the cache.
    pub cache_misses: Counter,
    /// Entries currently cached.
    pub cache_entries: Gauge,
    /// `GET /cache/<fingerprint>` peer probes answered with an entry.
    pub cache_peer_hits: Counter,
    /// `GET /cache/<fingerprint>` peer probes that found nothing.
    pub cache_peer_misses: Counter,
    /// Entries seeded by a peer via `PUT /cache/<fingerprint>`.
    pub cache_seeds: Counter,
    /// Wall-clock latency of `POST /extract` handling (including waits).
    pub request_latency: Histogram,
    /// End-to-end job latency, submit → finished.
    pub job_latency: Histogram,
    /// Per-extraction-stage latency, fed from each report's
    /// [`StageTiming`]s.
    stage_latency: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Metrics {
    /// Folds one finished job's per-stage timings in.
    pub fn observe_stages(&self, stages: &[StageTiming]) {
        let mut map = self.stage_latency.lock().expect("metrics poisoned");
        for timing in stages {
            map.entry(timing.stage.name())
                .or_default()
                .observe(timing.elapsed);
        }
    }

    /// The `GET /metrics` exposition document. Each family carries one
    /// `# HELP` / `# TYPE` preamble ahead of its sample lines, per the
    /// Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        family(
            &mut out,
            "fastvg_requests_total",
            "counter",
            "Requests received, by route.",
        );
        for (route, value) in [
            ("extract", self.requests_extract.get()),
            ("jobs", self.requests_jobs.get()),
            ("healthz", self.requests_healthz.get()),
            ("metrics", self.requests_metrics.get()),
        ] {
            out.push_str(&format!(
                "fastvg_requests_total{{route=\"{route}\"}} {value}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_http_responses_total",
            "counter",
            "Error responses sent, by status class.",
        );
        for (class, value) in [("4xx", self.http_4xx.get()), ("5xx", self.http_5xx.get())] {
            out.push_str(&format!(
                "fastvg_http_responses_total{{class=\"{class}\"}} {value}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_jobs_total",
            "counter",
            "Job lifecycle events, by state.",
        );
        for (state, value) in [
            ("submitted", self.jobs_submitted.get()),
            ("completed", self.jobs_completed.get()),
            ("failed", self.jobs_failed.get()),
            ("rejected", self.queue_rejected.get()),
        ] {
            out.push_str(&format!("fastvg_jobs_total{{state=\"{state}\"}} {value}\n"));
        }
        family(
            &mut out,
            "fastvg_cache_requests_total",
            "counter",
            "Result-cache lookups on the extract path, by outcome.",
        );
        for (outcome, value) in [
            ("hit", self.cache_hits.get()),
            ("miss", self.cache_misses.get()),
        ] {
            out.push_str(&format!(
                "fastvg_cache_requests_total{{outcome=\"{outcome}\"}} {value}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_cache_peer_requests_total",
            "counter",
            "Peer cache probes served (GET /cache/<fp>), by outcome.",
        );
        for (outcome, value) in [
            ("peer_hit", self.cache_peer_hits.get()),
            ("peer_miss", self.cache_peer_misses.get()),
        ] {
            out.push_str(&format!(
                "fastvg_cache_peer_requests_total{{outcome=\"{outcome}\"}} {value}\n"
            ));
        }
        family(
            &mut out,
            "fastvg_cache_seeds_total",
            "counter",
            "Cache entries planted by peers via PUT /cache/<fp>.",
        );
        out.push_str(&format!(
            "fastvg_cache_seeds_total {}\n",
            self.cache_seeds.get()
        ));
        family(
            &mut out,
            "fastvg_cache_entries",
            "gauge",
            "Entries currently in the result cache.",
        );
        out.push_str(&format!(
            "fastvg_cache_entries {}\n",
            self.cache_entries.get()
        ));
        family(
            &mut out,
            "fastvg_queue_depth",
            "gauge",
            "Jobs waiting in the submission queue.",
        );
        out.push_str(&format!("fastvg_queue_depth {}\n", self.queue_depth.get()));
        family(
            &mut out,
            "fastvg_jobs_running",
            "gauge",
            "Jobs currently running on the extraction pool.",
        );
        out.push_str(&format!(
            "fastvg_jobs_running {}\n",
            self.jobs_running.get()
        ));
        family(
            &mut out,
            "fastvg_request_latency_seconds",
            "histogram",
            "Wall-clock latency of POST /extract handling.",
        );
        self.request_latency
            .render("fastvg_request_latency_seconds", "", &mut out);
        family(
            &mut out,
            "fastvg_job_latency_seconds",
            "histogram",
            "End-to-end job latency, submit to finished.",
        );
        self.job_latency
            .render("fastvg_job_latency_seconds", "", &mut out);
        let stages = self.stage_latency.lock().expect("metrics poisoned");
        if !stages.is_empty() {
            // One preamble for the whole family, not one per label set.
            family(
                &mut out,
                "fastvg_stage_latency_seconds",
                "histogram",
                "Per-extraction-stage latency from completed jobs.",
            );
        }
        for (stage, histogram) in stages.iter() {
            histogram.render(
                "fastvg_stage_latency_seconds",
                &format!("stage=\"{stage}\""),
                &mut out,
            );
        }
        out
    }

    /// The cache hit rate so far (`None` before any lookup).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastvg_core::api::Stage;

    #[test]
    fn counters_and_gauges() {
        let m = Metrics::default();
        m.requests_extract.inc();
        m.requests_extract.add(2);
        m.queue_depth.set(5);
        assert_eq!(m.requests_extract.get(), 3);
        assert_eq!(m.queue_depth.get(), 5);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.observe(Duration::from_micros(80));
        }
        h.observe(Duration::from_millis(40));
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(100)));
        assert_eq!(h.quantile(0.99), Some(Duration::from_micros(100)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(50_000)));
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn exposition_contains_every_family() {
        let m = Metrics::default();
        m.requests_extract.inc();
        m.cache_misses.inc();
        m.cache_peer_hits.inc();
        m.cache_seeds.inc();
        m.request_latency.observe(Duration::from_micros(300));
        m.observe_stages(&[StageTiming {
            stage: Stage::Anchors,
            probes: 12,
            elapsed: Duration::from_micros(90),
        }]);
        let text = m.render();
        for needle in [
            "fastvg_requests_total{route=\"extract\"} 1",
            "fastvg_cache_requests_total{outcome=\"miss\"} 1",
            "fastvg_cache_peer_requests_total{outcome=\"peer_hit\"} 1",
            "fastvg_cache_peer_requests_total{outcome=\"peer_miss\"} 0",
            "fastvg_cache_seeds_total 1",
            "fastvg_queue_depth 0",
            "fastvg_request_latency_seconds_bucket",
            "fastvg_request_latency_seconds_count 1",
            "fastvg_stage_latency_seconds_bucket{stage=\"anchors\",le=",
            "fastvg_stage_latency_seconds_count{stage=\"anchors\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn hit_rate() {
        let m = Metrics::default();
        assert_eq!(m.cache_hit_rate(), None);
        m.cache_hits.add(3);
        m.cache_misses.add(1);
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }
}
