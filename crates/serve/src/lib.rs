//! `fastvg-serve` — the extraction service daemon.
//!
//! The paper makes single-device virtual-gate extraction fast; the
//! ROADMAP's north star is a system that *serves* that extraction at
//! fleet scale. This crate is the missing layer between the two: a
//! long-running daemon that accepts extraction jobs over HTTP, schedules
//! them onto the same worker pool and object-safe
//! [`fastvg_core::api::Extractor`] path the offline harnesses use,
//! caches results by content, and exposes live telemetry.
//!
//! Everything is built on `std::net` — zero new external dependencies,
//! consistent with the workspace's offline vendor policy.
//!
//! | module | role |
//! |---|---|
//! | [`http`] | hand-rolled HTTP/1.1 on an epoll reactor: nonblocking accept, keep-alive, request limits, graceful drain |
//! | [`queue`] | bounded job queue + batch scheduler over the mini-rayon pool |
//! | [`cache`] | sharded LRU result cache keyed by canonical-request fingerprints |
//! | [`metrics`] | counters + latency histograms behind `GET /metrics` |
//! | [`service`] | the routes, request validation, and daemon lifecycle |
//! | [`client`] | the minimal keep-alive client used by `fastvg-loadgen`, tests and examples |
//! | [`remote`] | [`RemoteExtractor`]: the daemon as a drop-in `&dyn Extractor` |
//!
//! Scenarios are measured through a runtime-selected
//! [`qd_instrument::SourceBackend`] (`--backend` / the request's
//! `"backend"` member); see `docs/BACKENDS.md`.
//!
//! The wire protocol — newline-framed JSON over `POST /extract`,
//! `GET /jobs/<id>`, `GET /healthz`, `GET /metrics` — is specified in
//! `docs/PROTOCOL.md`. Responses reuse the workspace's own currencies:
//! success bodies embed a serialized
//! [`fastvg_core::api::ExtractionReport`], failures the flattened
//! [`fastvg_core::WireFailure`] taxonomy.
//!
//! # In-process quickstart
//!
//! ```
//! use fastvg_serve::{start, Client, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let daemon = start(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! })?;
//!
//! let mut client = Client::connect(&daemon.addr().to_string())?;
//! let response = client.post("/extract?wait", br#"{"benchmark": 6}"#)?;
//! assert_eq!(response.status, 200);
//! assert_eq!(response.header("x-fastvg-cache"), Some("miss"));
//! let doc = response.json()?;
//! assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
//!
//! // The same request again is a cache hit with byte-identical body.
//! let again = client.post("/extract?wait", br#"{"benchmark": 6}"#)?;
//! assert_eq!(again.header("x-fastvg-cache"), Some("hit"));
//! assert_eq!(again.body, response.body);
//!
//! daemon.shutdown();
//! daemon.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod remote;
pub mod service;
mod wheel;

pub use cache::{CacheConfig, ResultCache};
pub use client::{Client, ClientConfig, ClientResponse};
pub use http::{
    deferred, Completer, Deferred, Handler, HttpConfig, HttpServer, Outcome, Request, Response,
    ServerStats, ShutdownHandle,
};
pub use metrics::{Histogram, Metrics};
pub use queue::{JobQueue, JobRequest, JobState, Scenario};
pub use remote::RemoteExtractor;
pub use service::{
    start, ConfigError, ExtractParser, ExtractService, RequestError, ServeConfig,
    ServeConfigBuilder, ServeError, ServiceHandle, REQUEST_BACKEND_SCHEMES, REQUEST_MAX_DWELL,
};
