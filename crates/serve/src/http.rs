//! A minimal, dependency-free HTTP/1.1 server on an epoll reactor.
//!
//! One reactor thread multiplexes every connection over a level-triggered
//! readiness poller ([`mini_epoll`]), so concurrency is bounded by file
//! descriptors — not worker threads. The pieces:
//!
//! * **nonblocking accept + per-connection state machines** — each
//!   connection owns an inbound buffer and walks
//!   `Idle → ReadingHead → ReadingBody → (Awaiting) → Writing → Idle`,
//!   framing requests incrementally: heads split across reads, pipelined
//!   requests in one segment, and write backpressure (partial writes park
//!   the connection on writable interest) all fall out of the machine;
//! * **deferred responses** — a [`Handler`] returns [`Outcome::Ready`]
//!   for immediate responses or [`Outcome::Pending`] with a [`Deferred`]
//!   whose paired [`Completer`] any thread may fulfill later; completion
//!   wakes the reactor through an eventfd, so a long `?wait` extraction
//!   parks a connection, never a thread;
//! * **timer wheel deadlines** — a keep-alive connection idling between
//!   requests hits [`HttpConfig::idle_timeout`] (silent close), while a
//!   trickling client inside a request hits
//!   [`HttpConfig::request_read_deadline`] (`408`) — two different
//!   failure modes, two different timers;
//! * **request limits** — head and body caps are enforced before any
//!   allocation trusts the peer, and [`HttpConfig::max_connections`]
//!   bounds the descriptor budget (over-limit accepts get `503`);
//! * **graceful shutdown** — [`ShutdownHandle::shutdown`] (the SIGTERM
//!   stand-in; `std` cannot install signal handlers) wakes the reactor,
//!   which stops accepting, lets in-flight requests (including parked
//!   deferred ones) finish, closes idle connections, and force-closes
//!   stragglers after [`HttpConfig::drain_deadline`].
//!
//! Routing, bodies and status codes are the caller's job via [`Handler`];
//! this module speaks only the protocol. Response bytes are identical to
//! the threaded server this replaced.

use crate::wheel::{Fired, TimerWheel};
use mini_epoll::{Event, Interest, Poller, Waker};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Maximum simultaneously open connections; accepts beyond the cap
    /// are answered `503` and closed.
    pub max_connections: usize,
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum request body bytes (larger bodies get `413`).
    pub max_body_bytes: usize,
    /// Hard deadline for reading one full request (head + body), armed
    /// at the first byte. Bounds how long a trickling client (slowloris)
    /// can hold a parser mid-request; expiring answers `408`.
    pub request_read_deadline: Duration,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before being closed silently. Distinct from
    /// [`HttpConfig::request_read_deadline`]: an idle connection has no
    /// request in flight and gets no error response.
    pub idle_timeout: Duration,
    /// On shutdown, how long in-flight connections get to finish before
    /// being force-closed.
    pub drain_deadline: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            max_connections: 4096,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            request_read_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(30),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty if absent).
    pub query: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Microseconds the reactor spent reading this request off the
    /// socket (first byte to dispatch). Zero when the request arrived in
    /// one read, or for requests not built by the reactor (tests).
    pub read_us: u64,
}

impl Request {
    /// First value of `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the query string contains flag `name` (bare or `=true`).
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            pair == name
                || pair
                    .split_once('=')
                    .is_some_and(|(k, v)| k == name && v != "false" && v != "0")
        })
    }
}

/// One response to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already serialized document.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Appends one header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// What a [`Handler`] hands back for one request.
#[derive(Debug)]
pub enum Outcome {
    /// The response is ready now; write it.
    Ready(Response),
    /// The response will be produced later by a [`Completer`]; park the
    /// connection without blocking the reactor.
    Pending(Deferred),
}

/// What the server calls per request. Implementations are shared across
/// connections, so they take `&self`. **Must not block**: the handler
/// runs on the reactor thread, so anything slow (or anything waiting on
/// another thread) must return [`Outcome::Pending`] and complete later.
pub trait Handler: Send + Sync {
    /// Produces the outcome for one request.
    fn handle(&self, request: &Request) -> Outcome;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Outcome {
        Outcome::Ready(self(request))
    }
}

/// Creates a linked deferred-response pair: return the [`Deferred`] from
/// a [`Handler`] (inside [`Outcome::Pending`]) and hand the
/// [`Completer`] to whatever thread will produce the response.
pub fn deferred() -> (Deferred, Completer) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Empty),
    });
    (
        Deferred {
            slot: Arc::clone(&slot),
            fallback: None,
        },
        Completer { slot: Some(slot) },
    )
}

/// The reactor-side half of a deferred response (see [`deferred`]).
#[derive(Debug)]
pub struct Deferred {
    slot: Arc<Slot>,
    fallback: Option<(Instant, Box<Response>)>,
}

impl Deferred {
    /// Arms a fallback: if the [`Completer`] has not fired by `at`, the
    /// server answers with `response` instead, and a late completion is
    /// discarded. Without a fallback an uncompleted response is bounded
    /// only by the `Completer` being dropped.
    #[must_use]
    pub fn with_fallback(mut self, at: Instant, response: Response) -> Self {
        self.fallback = Some((at, Box::new(response)));
        self
    }
}

/// The producer-side half of a deferred response (see [`deferred`]).
/// Send it anywhere; completing (or dropping) it wakes the reactor.
#[derive(Debug)]
pub struct Completer {
    slot: Option<Arc<Slot>>,
}

impl Completer {
    /// Fulfills the deferred response. If the connection already gave up
    /// (client disconnected, fallback fired), the response is discarded.
    pub fn complete(mut self, response: Response) {
        if let Some(slot) = self.slot.take() {
            slot.fulfill(response);
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.fulfill(Response::text(500, "response producer dropped"));
        }
    }
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
}

#[derive(Debug)]
enum SlotState {
    /// No response yet; reactor not yet parked on it.
    Empty,
    /// Reactor parked; completion must wake it.
    Attached(Notify),
    /// Response produced before the reactor consumed it.
    Done(Box<Response>),
    /// Connection gave up (or consumed the response); late completions
    /// are discarded.
    Closed,
}

#[derive(Debug)]
struct Notify {
    completions: Arc<Mutex<Vec<Fired>>>,
    waker: Arc<Waker>,
    token: u64,
    cycle: u64,
}

impl Slot {
    fn fulfill(&self, response: Response) {
        let mut state = self.state.lock().expect("slot poisoned");
        match std::mem::replace(&mut *state, SlotState::Done(Box::new(response))) {
            SlotState::Attached(notify) => {
                drop(state);
                notify
                    .completions
                    .lock()
                    .expect("completions poisoned")
                    .push(Fired {
                        token: notify.token,
                        cycle: notify.cycle,
                    });
                let _ = notify.waker.wake();
            }
            SlotState::Empty => {}
            SlotState::Closed => *state = SlotState::Closed,
            // complete() consumes the Completer, so two fulfills can't
            // happen; keep the first response if it somehow does.
            done @ SlotState::Done(_) => *state = done,
        }
    }

    /// Attach the reactor's wakeup route; returns the response instead if
    /// it was already produced (completion won the race).
    fn attach(&self, notify: Notify) -> Option<Box<Response>> {
        let mut state = self.state.lock().expect("slot poisoned");
        match std::mem::replace(&mut *state, SlotState::Attached(notify)) {
            SlotState::Done(response) => {
                *state = SlotState::Closed;
                Some(response)
            }
            _ => None,
        }
    }

    /// Take the response if present, closing the slot either way.
    fn take_if_done(&self) -> Option<Box<Response>> {
        let mut state = self.state.lock().expect("slot poisoned");
        match std::mem::replace(&mut *state, SlotState::Closed) {
            SlotState::Done(response) => Some(response),
            _ => None,
        }
    }

    /// Abandon: late completions will be discarded.
    fn close(&self) {
        *self.state.lock().expect("slot poisoned") = SlotState::Closed;
    }
}

/// Reactor counters, readable from any thread (e.g. for `/metrics`).
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    request_timeouts: AtomicU64,
    idle_closed: AtomicU64,
}

impl ServerStats {
    /// Connections accepted since boot (including later-rejected ones).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open(&self) -> u64 {
        self.accepted()
            .saturating_sub(self.closed.load(Ordering::Relaxed))
            .saturating_sub(self.rejected.load(Ordering::Relaxed))
    }

    /// Connections refused with `503` because
    /// [`HttpConfig::max_connections`] was reached.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests fully parsed and dispatched to the handler.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered `408` for exceeding the read deadline.
    pub fn request_timeouts(&self) -> u64 {
        self.request_timeouts.load(Ordering::Relaxed)
    }

    /// Keep-alive connections closed by the idle timeout.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running HTTP server; dropping it does **not** stop it — use
/// [`ShutdownHandle::shutdown`] then [`HttpServer::join`].
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    stats: Arc<ServerStats>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

/// Triggers a graceful stop of an [`HttpServer`] — the daemon's
/// "SIGTERM channel": `std` cannot hook real signals, so anything that
/// wants the server down (CLI flag timers, the `/shutdown` route, tests)
/// calls [`ShutdownHandle::shutdown`] instead.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl ShutdownHandle {
    /// Requests the stop: the reactor wakes, stops accepting, drains
    /// in-flight requests, and closes idle connections.
    pub fn shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = self.waker.wake();
        }
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const WHEEL_TICK: Duration = Duration::from_millis(25);
const WHEEL_SLOTS: usize = 1024;

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the reactor thread.
    ///
    /// # Errors
    ///
    /// Propagates socket and poller errors (bind failure, invalid
    /// address, descriptor exhaustion).
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.add(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN)?);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let reactor = Reactor {
            poller,
            listener: Some(listener),
            handler,
            config,
            stop: Arc::clone(&stop),
            waker: Arc::clone(&waker),
            completions: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::clone(&stats),
            conns: Vec::new(),
            next_cycles: Vec::new(),
            free: Vec::new(),
            open: 0,
            wheel: TimerWheel::new(WHEEL_TICK, WHEEL_SLOTS),
            draining: false,
            drain_at: None,
        };
        let thread = std::thread::Builder::new()
            .name("fastvg-reactor".into())
            .spawn(move || reactor.run())?;

        Ok(HttpServer {
            addr,
            stop,
            waker,
            stats,
            reactor: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            waker: Arc::clone(&self.waker),
        }
    }

    /// Live reactor counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Waits until the reactor has fully stopped (drain complete). Call
    /// [`ShutdownHandle::shutdown`] first — or from another thread — or
    /// this blocks forever.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

/// Shared context a connection needs to make progress. Split from
/// `Reactor` so one connection can be operated on while the reactor's
/// other fields stay borrowable.
struct Ctx<'a> {
    poller: &'a Poller,
    wheel: &'a mut TimerWheel,
    handler: &'a dyn Handler,
    config: &'a HttpConfig,
    stats: &'a ServerStats,
    completions: &'a Arc<Mutex<Vec<Fired>>>,
    waker: &'a Arc<Waker>,
    token: u64,
    now: Instant,
    draining: bool,
}

struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    handler: Arc<dyn Handler>,
    config: HttpConfig,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    completions: Arc<Mutex<Vec<Fired>>>,
    stats: Arc<ServerStats>,
    conns: Vec<Option<Conn>>,
    /// Per-slot cycle seed, persisted across slot reuse so a stale
    /// completion or timer for a dead connection can never match the
    /// slot's next tenant.
    next_cycles: Vec<u64>,
    free: Vec<usize>,
    open: usize,
    wheel: TimerWheel,
    draining: bool,
    drain_at: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<Fired> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                if self.open == 0 {
                    break;
                }
                if self.drain_at.is_some_and(|at| Instant::now() >= at) {
                    break; // force-close stragglers by dropping them
                }
            }
            let now = Instant::now();
            let mut timeout = self.wheel.poll_timeout(now);
            if let Some(at) = self.drain_at {
                let remaining = at.saturating_duration_since(now);
                timeout = Some(timeout.map_or(remaining, |t| t.min(remaining)));
            }
            match self.poller.wait(&mut events, timeout) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // poller itself failed: nothing to salvage
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    _ => self.conn_event(event),
                }
            }
            self.drain_completions();
            fired.clear();
            self.wheel.expire(Instant::now(), &mut fired);
            for f in &fired {
                self.timer_fired(*f);
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_at = Some(Instant::now() + self.config.drain_deadline);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(&listener);
        }
        for idx in 0..self.conns.len() {
            let is_idle = matches!(
                self.conns[idx],
                Some(Conn {
                    state: ConnState::Idle,
                    ..
                })
            ) && self.conns[idx]
                .as_ref()
                .is_some_and(|c| c.write_buf.is_empty());
            if is_idle {
                if let Some(conn) = self.conns[idx].take() {
                    self.release(idx, conn);
                }
            } else if let Some(conn) = self.conns[idx].as_mut() {
                conn.close_after_write = true;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    ServerStats::bump(&self.stats.accepted);
                    if self.open >= self.config.max_connections {
                        ServerStats::bump(&self.stats.rejected);
                        // Accepted sockets are blocking (nonblocking is
                        // not inherited); a one-shot write of a tiny 503
                        // into an empty send buffer doesn't stall.
                        let bytes = serialize_response(
                            &Response::text(503, "connection limit reached"),
                            true,
                        );
                        let mut stream = stream;
                        let _ = stream.write_all(&bytes);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        ServerStats::bump(&self.stats.closed);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.alloc_slot();
                    let token = FIRST_CONN_TOKEN + idx as u64;
                    if self.poller.add(&stream, token, Interest::READABLE).is_err() {
                        ServerStats::bump(&self.stats.closed);
                        self.free.push(idx);
                        continue;
                    }
                    let conn = Conn::new(stream, self.next_cycles[idx]);
                    // Arm the idle timer: a silent client must not hold a
                    // descriptor forever.
                    self.wheel.schedule(
                        Instant::now() + self.config.idle_timeout,
                        token,
                        conn.cycle,
                    );
                    let mut conn = conn;
                    conn.idle_armed_cycle = conn.cycle;
                    self.conns[idx] = Some(conn);
                    self.open += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection failures (ECONNABORTED, EMFILE):
                // stop this sweep; level-triggered readiness retries us.
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.conns.push(None);
            self.next_cycles.push(0);
            self.conns.len() - 1
        }
    }

    fn slot_of(&self, token: u64) -> Option<usize> {
        let idx = token.checked_sub(FIRST_CONN_TOKEN)? as usize;
        (idx < self.conns.len()).then_some(idx)
    }

    /// Returns the connection's slot to the free list and records its
    /// final cycle so stale events can't touch the next tenant.
    fn release(&mut self, idx: usize, conn: Conn) {
        let _ = self.poller.delete(&conn.stream);
        if let ConnState::Awaiting { slot, .. } = &conn.state {
            slot.close();
        }
        self.next_cycles[idx] = conn.cycle.wrapping_add(1);
        self.free.push(idx);
        self.open -= 1;
        ServerStats::bump(&self.stats.closed);
    }

    /// Runs `op` on the connection for `token` (if still alive), closing
    /// it when `op` returns `false`. The `Ctx` is built field by field
    /// here (not via a constructor) so the borrows split: `conn` is
    /// taken out of `self.conns` first, then the rest of `self` lends
    /// its pieces.
    fn with_conn(&mut self, token: u64, op: impl FnOnce(&mut Conn, &mut Ctx<'_>) -> bool) {
        let Some(idx) = self.slot_of(token) else {
            return;
        };
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let mut ctx = Ctx {
            poller: &self.poller,
            wheel: &mut self.wheel,
            handler: self.handler.as_ref(),
            config: &self.config,
            stats: &self.stats,
            completions: &self.completions,
            waker: &self.waker,
            token,
            now: Instant::now(),
            draining: self.draining,
        };
        let keep = op(&mut conn, &mut ctx);
        if keep {
            self.conns[idx] = Some(conn);
        } else {
            self.release(idx, conn);
        }
    }

    fn conn_event(&mut self, event: Event) {
        self.with_conn(event.token, |conn, ctx| {
            if event.error {
                return false;
            }
            if event.readable && !conn.fill_read(ctx.config) {
                return false;
            }
            conn.make_progress(ctx)
        });
    }

    fn drain_completions(&mut self) {
        let pending: Vec<Fired> = {
            let mut completions = self.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *completions)
        };
        for key in pending {
            self.with_conn(key.token, |conn, ctx| {
                if conn.cycle != key.cycle {
                    return true; // stale: connection moved on
                }
                conn.on_completion(ctx)
            });
        }
    }

    fn timer_fired(&mut self, fired: Fired) {
        self.with_conn(fired.token, |conn, ctx| {
            if conn.cycle != fired.cycle {
                return true; // stale: cancelled by a state transition
            }
            conn.on_deadline(ctx)
        });
    }
}

/// Per-connection protocol state.
#[derive(Debug)]
enum ConnState {
    /// Between requests (keep-alive) or fresh; idle timer armed.
    Idle,
    /// Some request bytes arrived; the head is not complete yet.
    ReadingHead {
        /// Whole-request read deadline, fixed at the first byte.
        deadline: Instant,
    },
    /// Head parsed; waiting for `body_len` bytes.
    ReadingBody {
        head: Box<Head>,
        body_len: usize,
        deadline: Instant,
    },
    /// Request dispatched; parked on a deferred response.
    Awaiting {
        slot: Arc<Slot>,
        fallback: Option<Box<Response>>,
        close: bool,
    },
    /// Response queued; flushing `write_buf`.
    Writing,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Monotonic state-transition counter; timers and completions armed
    /// with an older cycle are stale and ignored.
    cycle: u64,
    state: ConnState,
    /// Unconsumed inbound bytes (may hold pipelined requests).
    buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_write: bool,
    /// Peer sent FIN: serve what's buffered, then close.
    read_closed: bool,
    registered: Interest,
    idle_armed_cycle: u64,
    read_armed_cycle: u64,
    write_armed_cycle: u64,
}

impl Conn {
    fn new(stream: TcpStream, cycle: u64) -> Conn {
        Conn {
            stream,
            cycle,
            state: ConnState::Idle,
            buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_write: false,
            read_closed: false,
            registered: Interest::READABLE,
            idle_armed_cycle: u64::MAX,
            read_armed_cycle: u64::MAX,
            write_armed_cycle: u64::MAX,
        }
    }

    fn bump_cycle(&mut self) {
        self.cycle = self.cycle.wrapping_add(1);
    }

    fn buffer_cap(config: &HttpConfig) -> usize {
        config.max_head_bytes + config.max_body_bytes + 4096
    }

    /// Pulls everything available off the socket (up to the buffer cap).
    /// Returns `false` on a hard error; EOF just sets `read_closed`.
    fn fill_read(&mut self, config: &HttpConfig) -> bool {
        if self.read_closed {
            return true;
        }
        let cap = Self::buffer_cap(config);
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if self.buf.len() >= cap {
                return true; // backpressure: leave the rest in the kernel
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return true;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    if n < scratch.len() {
                        return true; // drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Advances the state machine as far as the buffered bytes allow:
    /// flushes writes, parses requests (including pipelined ones),
    /// dispatches to the handler. Returns `false` to close.
    fn make_progress(&mut self, ctx: &mut Ctx<'_>) -> bool {
        loop {
            if !self.flush_writes() {
                return false;
            }
            if self.write_pos < self.write_buf.len() {
                // Write-blocked: guard against a peer that never reads.
                if self.write_armed_cycle != self.cycle {
                    ctx.wheel.schedule(
                        ctx.now + ctx.config.request_read_deadline,
                        ctx.token,
                        self.cycle,
                    );
                    self.write_armed_cycle = self.cycle;
                }
                self.sync_interest(ctx);
                return true;
            }
            if matches!(self.state, ConnState::Writing) {
                if self.close_after_write {
                    return false;
                }
                self.bump_cycle();
                self.state = ConnState::Idle;
            }
            match &self.state {
                ConnState::Idle => {
                    // Tolerate blank lines between requests (RFC 9112 §2.2).
                    let skip = self
                        .buf
                        .iter()
                        .take_while(|&&b| b == b'\r' || b == b'\n')
                        .count();
                    if skip > 0 {
                        self.buf.drain(..skip);
                    }
                    if self.buf.is_empty() {
                        if self.read_closed {
                            return false;
                        }
                        if self.idle_armed_cycle != self.cycle {
                            ctx.wheel.schedule(
                                ctx.now + ctx.config.idle_timeout,
                                ctx.token,
                                self.cycle,
                            );
                            self.idle_armed_cycle = self.cycle;
                        }
                        self.sync_interest(ctx);
                        return true;
                    }
                    // First bytes of a request: start the per-request clock.
                    self.bump_cycle();
                    self.state = ConnState::ReadingHead {
                        deadline: ctx.now + ctx.config.request_read_deadline,
                    };
                }
                ConnState::ReadingHead { deadline } => {
                    let deadline = *deadline;
                    match parse_head(
                        &self.buf,
                        ctx.config.max_head_bytes,
                        ctx.config.max_body_bytes,
                    ) {
                        HeadParse::Incomplete => {
                            if self.read_closed {
                                return false;
                            }
                            self.arm_read_deadline(ctx, deadline);
                            self.sync_interest(ctx);
                            return true;
                        }
                        HeadParse::Reject(status, message) => {
                            self.queue_response(ctx, Response::text(status, message), true);
                        }
                        HeadParse::Complete { head, consumed } => {
                            self.buf.drain(..consumed);
                            if head.expect_continue
                                && head.body_len > 0
                                && self.buf.len() < head.body_len
                            {
                                self.write_buf
                                    .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                            }
                            let body_len = head.body_len;
                            self.state = ConnState::ReadingBody {
                                head,
                                body_len,
                                deadline,
                            };
                        }
                    }
                }
                ConnState::ReadingBody {
                    body_len, deadline, ..
                } => {
                    let (body_len, deadline) = (*body_len, *deadline);
                    if self.buf.len() < body_len {
                        if self.read_closed {
                            return false;
                        }
                        self.arm_read_deadline(ctx, deadline);
                        self.sync_interest(ctx);
                        return true;
                    }
                    let body: Vec<u8> = self.buf.drain(..body_len).collect();
                    let ConnState::ReadingBody { head, .. } =
                        std::mem::replace(&mut self.state, ConnState::Idle)
                    else {
                        unreachable!("state checked above");
                    };
                    self.bump_cycle();
                    ServerStats::bump(&ctx.stats.requests);
                    // The read clock started when the first byte armed the
                    // whole-request deadline; recover it from the deadline.
                    let read_us = (Instant::now() + ctx.config.request_read_deadline)
                        .saturating_duration_since(deadline)
                        .as_micros() as u64;
                    let request = Request {
                        method: head.method,
                        path: head.path,
                        query: head.query,
                        headers: head.headers,
                        body,
                        read_us,
                    };
                    let close = head.close;
                    // The reactor must survive a handler panic: one poisoned
                    // request turning into a dead daemon is the worst trade.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.handler.handle(&request)
                    }))
                    .unwrap_or_else(|_| Outcome::Ready(Response::text(500, "handler panicked")));
                    match outcome {
                        Outcome::Ready(response) => {
                            self.queue_response(ctx, response, close);
                        }
                        Outcome::Pending(Deferred { slot, fallback }) => {
                            let notify = Notify {
                                completions: Arc::clone(ctx.completions),
                                waker: Arc::clone(ctx.waker),
                                token: ctx.token,
                                cycle: self.cycle,
                            };
                            match slot.attach(notify) {
                                Some(response) => {
                                    // Completion beat us to it: no parking.
                                    self.queue_response(ctx, *response, close);
                                }
                                None => {
                                    let fallback = fallback.map(|(at, response)| {
                                        ctx.wheel.schedule(at, ctx.token, self.cycle);
                                        response
                                    });
                                    self.state = ConnState::Awaiting {
                                        slot,
                                        fallback,
                                        close,
                                    };
                                    self.sync_interest(ctx);
                                    return true;
                                }
                            }
                        }
                    }
                }
                ConnState::Awaiting { .. } => {
                    self.sync_interest(ctx);
                    return true;
                }
                ConnState::Writing => unreachable!("flushed above"),
            }
        }
    }

    fn arm_read_deadline(&mut self, ctx: &mut Ctx<'_>, deadline: Instant) {
        if self.read_armed_cycle != self.cycle {
            ctx.wheel.schedule(deadline, ctx.token, self.cycle);
            self.read_armed_cycle = self.cycle;
        }
    }

    /// Serializes `response` into the write buffer and enters `Writing`.
    /// The caller's progress loop performs the actual flush.
    fn queue_response(&mut self, ctx: &mut Ctx<'_>, response: Response, close: bool) {
        let close = close || ctx.draining || self.close_after_write;
        self.write_buf
            .extend_from_slice(&serialize_response(&response, close));
        self.close_after_write = close;
        self.bump_cycle();
        self.state = ConnState::Writing;
    }

    /// A deferred response was completed for the current cycle.
    fn on_completion(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let state = std::mem::replace(&mut self.state, ConnState::Idle);
        let ConnState::Awaiting {
            slot,
            fallback,
            close,
        } = state
        else {
            self.state = state;
            return true; // spurious
        };
        match slot.take_if_done() {
            Some(response) => {
                self.queue_response(ctx, *response, close);
                self.make_progress(ctx)
            }
            None => {
                // Completion notification without a stored response should
                // be impossible; re-park rather than invent an answer.
                self.state = ConnState::Awaiting {
                    slot,
                    fallback,
                    close,
                };
                true
            }
        }
    }

    /// A timer armed for the current cycle fired; meaning depends on the
    /// state the cycle belongs to.
    fn on_deadline(&mut self, ctx: &mut Ctx<'_>) -> bool {
        match std::mem::replace(&mut self.state, ConnState::Idle) {
            ConnState::Idle => {
                ServerStats::bump(&ctx.stats.idle_closed);
                false // idle timeout: silent close, no error response
            }
            ConnState::ReadingHead { .. } | ConnState::ReadingBody { .. } => {
                ServerStats::bump(&ctx.stats.request_timeouts);
                self.queue_response(
                    ctx,
                    Response::text(408, "request read deadline exceeded"),
                    true,
                );
                self.make_progress(ctx)
            }
            ConnState::Awaiting {
                slot,
                fallback,
                close,
            } => {
                // Race: the completion may have landed but not yet been
                // drained — prefer the real response over the fallback.
                let response = match slot.take_if_done() {
                    Some(response) => *response,
                    None => {
                        slot.close();
                        fallback.map_or_else(
                            || Response::text(500, "deferred response timed out"),
                            |boxed| *boxed,
                        )
                    }
                };
                self.queue_response(ctx, response, close);
                self.make_progress(ctx)
            }
            ConnState::Writing => false, // write stalled past the deadline
        }
    }

    fn flush_writes(&mut self) -> bool {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        true
    }

    fn sync_interest(&mut self, ctx: &Ctx<'_>) {
        let desired = Interest {
            readable: !self.read_closed && self.buf.len() < Self::buffer_cap(ctx.config),
            writable: self.write_pos < self.write_buf.len(),
        };
        if desired != self.registered {
            let _ = ctx.poller.modify(&self.stream, ctx.token, desired);
            self.registered = desired;
        }
    }
}

/// A parsed request head (everything before the body).
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    body_len: usize,
    close: bool,
    expect_continue: bool,
}

enum HeadParse {
    /// Need more bytes.
    Incomplete,
    /// Head parsed; `consumed` bytes of the buffer belong to it.
    Complete { head: Box<Head>, consumed: usize },
    /// Protocol violation worth a status code before closing.
    Reject(u16, &'static str),
}

/// Incremental head parser over the connection's raw inbound buffer.
/// Semantics (and rejection messages) match the threaded server this
/// replaced: lowercased header names, no transfer-encoding support,
/// head/body caps enforced before trusting any length.
fn parse_head(buf: &[u8], max_head: usize, max_body: usize) -> HeadParse {
    // Find the blank line ending the head.
    let mut line_start = 0usize;
    let head_end = loop {
        match buf[line_start..].iter().position(|&b| b == b'\n') {
            None => {
                if buf.len() > max_head {
                    return HeadParse::Reject(431, "request head too large");
                }
                return HeadParse::Incomplete;
            }
            Some(rel) => {
                let nl = line_start + rel;
                let mut line = &buf[line_start..nl];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                if line.is_empty() {
                    break nl + 1;
                }
                line_start = nl + 1;
                if line_start > max_head {
                    return HeadParse::Reject(431, "request head too large");
                }
            }
        }
    };
    if head_end > max_head + 2 {
        return HeadParse::Reject(431, "request head too large");
    }
    let Ok(head_text) = std::str::from_utf8(&buf[..head_end]) else {
        return HeadParse::Reject(400, "request head is not UTF-8");
    };

    let mut lines = head_text.lines().filter(|l| !l.is_empty());
    let Some(request_line) = lines.next() else {
        return HeadParse::Reject(400, "malformed request line");
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HeadParse::Reject(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return HeadParse::Reject(400, "unsupported protocol version");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return HeadParse::Reject(400, "malformed header line");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return HeadParse::Reject(400, "transfer-encoding not supported");
    }
    let body_len = match find("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return HeadParse::Reject(400, "malformed content-length"),
        },
    };
    if body_len > max_body {
        return HeadParse::Reject(413, "request body too large");
    }
    let close = find("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    let expect_continue = find("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue"));

    HeadParse::Complete {
        head: Box::new(Head {
            method: method.to_uppercase(),
            path,
            query,
            headers,
            body_len,
            close,
            expect_continue,
        }),
        consumed: head_end,
    }
}

/// Serializes a response exactly as the threaded server did — the bytes
/// on the wire are part of the protocol contract (loadgen asserts
/// byte-identical cached responses).
fn serialize_response(response: &Response, close: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&response.body);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_incremental_and_complete() {
        let raw = b"POST /extract?wait=true HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\nbody";
        for cut in 0..raw.len() - 4 {
            assert!(
                matches!(parse_head(&raw[..cut], 16384, 4096), HeadParse::Incomplete),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let HeadParse::Complete { head, consumed } = parse_head(raw, 16384, 4096) else {
            panic!("full head should parse");
        };
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/extract");
        assert_eq!(head.query, "wait=true");
        assert_eq!(head.body_len, 4);
        assert!(!head.close);
        assert_eq!(&raw[consumed..], b"body");
    }

    #[test]
    fn parse_head_rejections_match_protocol() {
        let cases: [(&[u8], u16); 5] = [
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ncontent-length: 99999\r\n\r\n", 413),
        ];
        for (raw, want) in cases {
            let HeadParse::Reject(status, _) = parse_head(raw, 16384, 4096) else {
                panic!("{:?} should be rejected", String::from_utf8_lossy(raw));
            };
            assert_eq!(status, want);
        }
    }

    #[test]
    fn parse_head_caps_oversized_heads_even_without_newline() {
        let raw = vec![b'A'; 5000];
        let HeadParse::Reject(status, _) = parse_head(&raw, 4096, 4096) else {
            panic!("oversized head should be rejected");
        };
        assert_eq!(status, 431);
    }

    #[test]
    fn serialized_response_bytes_are_stable() {
        let response = Response::json(200, "{}").with_header("x-fastvg-cache", "hit");
        let bytes = serialize_response(&response, false);
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\nconnection: keep-alive\r\nx-fastvg-cache: hit\r\n\r\n{}"
        );
    }

    #[test]
    fn completer_drop_produces_a_500() {
        let (deferred, completer) = deferred();
        drop(completer);
        let response = deferred.slot.take_if_done().expect("drop fulfills");
        assert_eq!(response.status, 500);
    }

    #[test]
    fn completion_before_attach_is_returned_at_attach() {
        let (deferred, completer) = deferred();
        completer.complete(Response::text(200, "early"));
        let (completions, _poller, waker) = {
            let poller = Poller::new().expect("poller");
            let waker = Arc::new(Waker::new(&poller, 1).expect("waker"));
            (Arc::new(Mutex::new(Vec::new())), poller, waker)
        };
        let got = deferred.slot.attach(Notify {
            completions,
            waker,
            token: 2,
            cycle: 0,
        });
        assert_eq!(got.expect("already done").body, b"early");
    }
}
