//! A minimal, dependency-free HTTP/1.1 server on `std::net`.
//!
//! Exactly the surface the extraction daemon needs, hardened the way a
//! long-running service must be:
//!
//! * **threaded acceptor** — one accept loop feeding a fixed pool of
//!   connection workers over a channel (bounded by the worker count:
//!   a connection is only accepted when a worker will take it next);
//! * **keep-alive** — workers serve any number of requests per
//!   connection (HTTP/1.1 default), honoring `Connection: close`;
//! * **request limits** — header block and body sizes are capped before
//!   any allocation trusts the peer; per-syscall read timeouts close
//!   idle connections, and a whole-request deadline
//!   ([`HttpConfig::max_request_read`]) bounds how long a trickling
//!   client (one byte per interval, each read "making progress") can
//!   pin a worker;
//! * **graceful shutdown** — a [`ShutdownHandle`] (the SIGTERM stand-in;
//!   `std` cannot install signal handlers) flips a flag, unblocks the
//!   acceptor, lets in-flight requests finish, and [`HttpServer::join`]
//!   waits for every worker to drain.
//!
//! Routing, bodies and status codes are the caller's job via [`Handler`];
//! this module speaks only the protocol.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Connection worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum request body bytes (larger bodies get `413`).
    pub max_body_bytes: usize,
    /// Socket read timeout per syscall; bounds how long a worker needs
    /// to notice a shutdown while parked on an idle keep-alive
    /// connection.
    pub read_timeout: Duration,
    /// Hard deadline for reading one full request (head + body). The
    /// per-syscall timeout alone would let a trickling client that
    /// delivers one byte per interval pin a worker forever; this caps
    /// the total.
    pub max_request_read: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            max_request_read: Duration::from_secs(30),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty if absent).
    pub query: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the query string contains flag `name` (bare or `=true`).
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            pair == name
                || pair
                    .split_once('=')
                    .is_some_and(|(k, v)| k == name && v != "false" && v != "0")
        })
    }
}

/// One response to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already serialized document.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Appends one header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// What the server calls per request. Implementations are shared across
/// workers, so they take `&self`.
pub trait Handler: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Why reading one request failed.
enum ReadOutcome {
    /// A complete request was read.
    Request(Box<Request>),
    /// The peer closed (or never spoke) — end the connection silently.
    Closed,
    /// A protocol violation worth a status code before closing.
    Reject(u16, &'static str),
}

/// A running HTTP server; dropping it does **not** stop it — use
/// [`ShutdownHandle::shutdown`] then [`HttpServer::join`].
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Triggers a graceful stop of an [`HttpServer`] — the daemon's
/// "SIGTERM channel": `std` cannot hook real signals, so anything that
/// wants the server down (CLI flag timers, the `/shutdown` route, tests)
/// calls [`ShutdownHandle::shutdown`] instead.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests the stop: no new connections are accepted, in-flight
    /// requests finish, idle keep-alive connections close within the
    /// read timeout.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopping
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        // A wildcard bind (0.0.0.0 / ::) is not a connectable
        // destination on every platform — poke loopback instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the acceptor and
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, invalid address).
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        // sync_channel(0): the acceptor only admits a connection when a
        // worker is ready to rendezvous, so the listener backlog is the
        // only queue and workers are never oversubscribed.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(0);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    let stream = {
                        let guard = rx.lock().expect("http rx poisoned");
                        guard.recv()
                    };
                    match stream {
                        Ok(stream) => serve_connection(stream, &*handler, &config, &stop),
                        Err(_) => return, // acceptor gone: shutdown
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break; // the shutdown poke or a late client
                    }
                    let Ok(stream) = stream else { continue };
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping `tx` wakes every idle worker with RecvError.
            })
        };

        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.addr,
            stop: Arc::clone(&self.stop),
        }
    }

    /// Waits until the server has fully stopped (acceptor and all
    /// workers joined). Call [`ShutdownHandle::shutdown`] first — or
    /// from another thread — or this blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves requests on one connection until close, error, or shutdown.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    config: &HttpConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let deadline = Instant::now() + config.max_request_read;
        let outcome = read_request(&mut reader, &mut writer, config, deadline);
        let request = match outcome {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed => return,
            ReadOutcome::Reject(status, message) => {
                let response = Response::text(status, message);
                let _ = write_response(&mut writer, &response, true);
                return;
            }
        };
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let response = handler.handle(&request);
        if write_response(&mut writer, &response, close).is_err() || close {
            return;
        }
    }
}

/// Reads one full request, enforcing the head/body limits and the
/// whole-request read deadline.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    config: &HttpConfig,
    deadline: Instant,
) -> ReadOutcome {
    // Head: everything up to the blank line, capped.
    let mut head = Vec::new();
    loop {
        if Instant::now() >= deadline {
            return ReadOutcome::Reject(408, "request read deadline exceeded");
        }
        let mut line = Vec::new();
        match read_line(reader, &mut line, config.max_head_bytes, deadline) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(_) => {}
            Err(LineError::TooLong) => return ReadOutcome::Reject(431, "request head too large"),
            Err(LineError::Deadline) => {
                return ReadOutcome::Reject(408, "request read deadline exceeded")
            }
            Err(LineError::Io) => return ReadOutcome::Closed,
        }
        if line == b"\r\n" || line == b"\n" {
            if head.is_empty() {
                continue; // tolerate leading blank lines (RFC 9112 §2.2)
            }
            break;
        }
        head.extend_from_slice(&line);
        if head.len() > config.max_head_bytes {
            return ReadOutcome::Reject(431, "request head too large");
        }
    }
    let Ok(head) = String::from_utf8(head) else {
        return ReadOutcome::Reject(400, "request head is not UTF-8");
    };

    let mut lines = head.lines();
    let Some(request_line) = lines.next() else {
        return ReadOutcome::Closed;
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Reject(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Reject(400, "unsupported protocol version");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Reject(400, "malformed header line");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };

    // Body, if declared. (No chunked support — the protocol's clients
    // always send Content-Length, and unknown transfer codings are
    // rejected rather than mis-framed.)
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ReadOutcome::Reject(400, "transfer-encoding not supported");
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Reject(400, "malformed content-length"),
        },
    };
    if length > config.max_body_bytes {
        return ReadOutcome::Reject(413, "request body too large");
    }
    if request
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    {
        let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }
    if length > 0 {
        // Chunked fill instead of one read_exact, so a trickling body
        // is checked against the whole-request deadline between reads.
        let mut body = vec![0u8; length];
        let mut filled = 0usize;
        while filled < length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => filled += n,
                Err(_) => return ReadOutcome::Closed,
            }
            if filled < length && Instant::now() >= deadline {
                return ReadOutcome::Reject(408, "request read deadline exceeded");
            }
        }
        request.body = body;
    }
    ReadOutcome::Request(Box::new(request))
}

enum LineError {
    TooLong,
    Deadline,
    Io,
}

/// `read_until(b'\n')` with a byte cap and a wall-clock deadline.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    cap: usize,
    deadline: Instant,
) -> Result<usize, LineError> {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(_) => return Err(LineError::Io),
        };
        if available.is_empty() {
            return Ok(line.len()); // EOF
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                return Ok(line.len());
            }
            None => {
                let n = available.len();
                line.extend_from_slice(available);
                reader.consume(n);
                if line.len() > cap {
                    return Err(LineError::TooLong);
                }
                if Instant::now() >= deadline {
                    return Err(LineError::Deadline);
                }
            }
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}
