//! The bounded job queue, job table, and batch scheduler.
//!
//! `POST /extract` submissions land here as validated [`JobRequest`]s.
//! One scheduler thread drains the queue in arrival order, *realizes*
//! each scenario into a diagram and fans the extractions out over the
//! vendored mini-rayon pool through the same
//! [`fastvg_core::batch::BatchExtractor`]`/&dyn `[`Extractor`] path
//! every offline harness uses — the daemon adds scheduling and caching,
//! never a second extraction code path.
//!
//! # Determinism
//!
//! Scenario specs carry their own seeds ([`qd_dataset::BenchmarkSpec`]),
//! generation derives per-job RNGs from them, and replay sessions are
//! pure, so resubmitting a request reproduces the same slopes, α
//! coefficients and probe counts bit-for-bit regardless of batch
//! composition or worker count — only wall-clock fields vary. That is
//! what makes result caching sound.

use crate::cache::ResultCache;
use crate::metrics::Metrics;
use fastvg_core::api::{extract_with, ExtractionReport, Extractor};
use fastvg_core::baseline::HoughBaseline;
use fastvg_core::extraction::FastExtractor;
use fastvg_core::report::Method;
use fastvg_core::tuning::TuningLoop;
use fastvg_core::ExtractError;
use fastvg_obs::{SpanId, TraceId, Tracer};
use fastvg_wire::{Json, TraceContext};
use mini_rayon::ThreadPool;
use qd_csd::Csd;
use qd_dataset::BenchmarkSpec;
use qd_instrument::{BoxedSource, MeasurementSession, SourceBackend, SourceScenario};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one job extracts: a scenario to realize into a diagram.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Generate a synthetic device from a (seeded) spec.
    Spec(BenchmarkSpec),
    /// Replay an inline charge stability diagram.
    Grid(Box<Csd>),
}

impl Scenario {
    /// Produces the diagram to probe. Spec generation is deterministic
    /// in the spec's seed, so realization commutes with batching.
    fn realize(&self) -> Result<Csd, String> {
        match self {
            Scenario::Spec(spec) => qd_dataset::generate(spec)
                .map(|bench| bench.csd)
                .map_err(|e| e.to_string()),
            Scenario::Grid(csd) => Ok((**csd).clone()),
        }
    }

    /// The generation seed behind the scenario (0 for inline grids),
    /// recorded into tape headers by recording backends.
    fn seed(&self) -> u64 {
        match self {
            Scenario::Spec(spec) => spec.seed,
            Scenario::Grid(_) => 0,
        }
    }
}

/// A validated submission: the scenario, the method to run, the probe
/// backend realizing it, and the canonical form + fingerprint the
/// result cache is keyed by.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to extract.
    pub scenario: Scenario,
    /// Which method to run.
    pub method: Method,
    /// The probe backend the scenario is measured through — the
    /// daemon's default, or the request's validated `"backend"` member.
    pub backend: Arc<dyn SourceBackend>,
    /// [`fastvg_wire::fnv1a64`] of [`JobRequest::canonical`].
    pub fingerprint: u64,
    /// The canonical request document (sorted keys, resolved spec,
    /// canonical backend string).
    pub canonical: String,
    /// Trace context of the originating request (the daemon's request
    /// span), when the request is being traced. The scheduler parents
    /// its queue-wait / extract / stage spans to it. Deliberately *not*
    /// part of the canonical form: tracing never splits cache entries.
    pub trace: Option<TraceContext>,
}

/// A finished job's outcome: the serialized, newline-framed result
/// document — exactly the bytes a cache hit will replay.
#[derive(Debug, Clone)]
pub struct FinishedJob {
    /// Whether extraction succeeded (`"ok": true` in the document).
    pub ok: bool,
    /// Whether this outcome was served from the result cache.
    pub cache_hit: bool,
    /// The result document bytes.
    pub body: Vec<u8>,
}

impl FinishedJob {
    /// The wire token for this outcome — `done` or `failed`, carried in
    /// the `x-fastvg-status` header of finished-job responses.
    pub fn status_name(&self) -> &'static str {
        if self.ok {
            "done"
        } else {
            "failed"
        }
    }
}

/// Where a job currently is.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Being extracted by a batch worker.
    Running,
    /// Finished (result or failure).
    Finished(FinishedJob),
}

impl JobState {
    /// The wire token for status documents and headers.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished(finished) => finished.status_name(),
        }
    }
}

struct JobEntry {
    state: JobState,
    /// Taken by the scheduler when the job starts running.
    request: Option<JobRequest>,
    submitted: Instant,
}

/// A one-shot completion subscription (see [`JobQueue::on_finished`]):
/// invoked with `Some(outcome)` when the job finishes, `None` if the
/// queue stops first.
pub type FinishedCallback = Box<dyn FnOnce(Option<FinishedJob>) + Send>;

struct QueueInner {
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    finished_order: VecDeque<u64>,
    watchers: HashMap<u64, Vec<FinishedCallback>>,
    stopping: bool,
}

/// The bounded submission queue plus the job table behind
/// `GET /jobs/<id>`.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
    retain_finished: usize,
    next_id: AtomicU64,
}

/// The queue refused a submission because it is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("job queue at capacity")
    }
}

impl std::error::Error for QueueFull {}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// An empty queue holding at most `capacity` pending jobs and
    /// remembering the last `retain_finished` finished ones.
    pub fn new(capacity: usize, retain_finished: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                jobs: HashMap::new(),
                finished_order: VecDeque::new(),
                watchers: HashMap::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            retain_finished: retain_finished.max(1),
            next_id: AtomicU64::new(1),
        }
    }

    fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `capacity` jobs are already pending or
    /// the queue is stopping (a stopping scheduler would never run the
    /// job, so admitting it would strand the client).
    pub fn submit(&self, request: JobRequest) -> Result<u64, QueueFull> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.pending.len() >= self.capacity || inner.stopping {
            return Err(QueueFull);
        }
        let id = self.allocate_id();
        inner.jobs.insert(
            id,
            JobEntry {
                state: JobState::Queued,
                request: Some(request),
                submitted: Instant::now(),
            },
        );
        inner.pending.push_back(id);
        drop(inner);
        self.cv.notify_all();
        Ok(id)
    }

    /// Registers a job that is already finished (cache hits), so
    /// `GET /jobs/<id>` works uniformly.
    pub fn insert_finished(&self, finished: FinishedJob) -> u64 {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let id = self.allocate_id();
        inner.jobs.insert(
            id,
            JobEntry {
                state: JobState::Finished(finished),
                request: None,
                submitted: Instant::now(),
            },
        );
        Self::remember_finished(&mut inner, id, self.retain_finished);
        id
    }

    fn remember_finished(inner: &mut QueueInner, id: u64, retain: usize) {
        inner.finished_order.push_back(id);
        while inner.finished_order.len() > retain {
            if let Some(old) = inner.finished_order.pop_front() {
                inner.jobs.remove(&old);
            }
        }
    }

    /// The current state of a job, if it is still remembered.
    pub fn status(&self, id: u64) -> Option<JobState> {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.jobs.get(&id).map(|entry| entry.state.clone())
    }

    /// Blocks until job `id` finishes, the timeout lapses, or the queue
    /// stops. Returns the outcome only in the first case.
    pub fn wait_finished(&self, id: u64, timeout: Duration) -> Option<FinishedJob> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            match inner.jobs.get(&id) {
                Some(JobEntry {
                    state: JobState::Finished(finished),
                    ..
                }) => return Some(finished.clone()),
                Some(_) => {}
                None => return None,
            }
            if inner.stopping {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("queue poisoned");
            inner = guard;
        }
    }

    /// Takes up to `max` pending jobs (blocking while the queue is empty)
    /// and marks them running. Returns `None` once the queue is stopping
    /// and drained — the scheduler's exit condition.
    pub fn take_batch(&self, max: usize) -> Option<Vec<(u64, JobRequest, Instant)>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.pending.is_empty() {
                let take = inner.pending.len().min(max.max(1));
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    let id = inner.pending.pop_front().expect("checked non-empty");
                    let entry = inner.jobs.get_mut(&id).expect("pending job in table");
                    entry.state = JobState::Running;
                    let request = entry.request.take().expect("queued job has request");
                    batch.push((id, request, entry.submitted));
                }
                return Some(batch);
            }
            if inner.stopping {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue poisoned");
        }
    }

    /// Records a job's outcome and wakes any waiters — blocking
    /// (`wait_finished`) and subscribed (`on_finished`) alike.
    pub fn finish(&self, id: u64, finished: FinishedJob) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let mut fire: Vec<FinishedCallback> = Vec::new();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.state = JobState::Finished(finished.clone());
            Self::remember_finished(&mut inner, id, self.retain_finished);
            if let Some(watchers) = inner.watchers.remove(&id) {
                fire = watchers;
            }
        }
        drop(inner);
        self.cv.notify_all();
        // Callbacks run outside the queue lock: they may grab other locks
        // (the reactor's completion list) or be arbitrarily slow.
        for callback in fire {
            callback(Some(finished.clone()));
        }
    }

    /// Subscribes a one-shot callback for job `id`, the non-blocking
    /// sibling of [`JobQueue::wait_finished`] (this is how the reactor's
    /// deferred `?wait` responses get completed). The callback fires
    /// on whichever thread resolves the job:
    ///
    /// * immediately on this thread if the job already finished (or is
    ///   unknown / the queue is stopping — then with `None`);
    /// * on the scheduler thread from [`JobQueue::finish`];
    /// * on the stopping thread from [`JobQueue::stop`], with `None`.
    pub fn on_finished(&self, id: u64, callback: FinishedCallback) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let immediate: Option<Option<FinishedJob>> = match inner.jobs.get(&id) {
            Some(JobEntry {
                state: JobState::Finished(finished),
                ..
            }) => Some(Some(finished.clone())),
            None => Some(None),
            Some(_) if inner.stopping => Some(None),
            Some(_) => None,
        };
        match immediate {
            Some(outcome) => {
                drop(inner);
                callback(outcome);
            }
            None => {
                inner.watchers.entry(id).or_default().push(callback);
            }
        }
    }

    /// Pending jobs waiting for the scheduler.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").pending.len()
    }

    /// Starts the shutdown: wakes the scheduler and every waiter, and
    /// fires outstanding [`JobQueue::on_finished`] subscriptions with
    /// `None` so parked connections fall back instead of hanging out the
    /// full wait timeout.
    pub fn stop(&self) {
        let fire: Vec<FinishedCallback> = {
            let mut inner = self.inner.lock().expect("queue poisoned");
            inner.stopping = true;
            inner.watchers.drain().flat_map(|(_, v)| v).collect()
        };
        self.cv.notify_all();
        for callback in fire {
            callback(None);
        }
    }
}

/// Serializes a successful extraction into the newline-framed result
/// document (`{"ok":true,"report":{…}}`).
pub fn result_body(report: &ExtractionReport) -> Vec<u8> {
    let mut body = Json::object()
        .field("ok", true)
        .field("report", report.to_json())
        .build()
        .dump();
    body.push('\n');
    body.into_bytes()
}

/// Serializes an extraction failure into the newline-framed result
/// document (`{"ok":false,"error":{…}}`), flattening the taxonomy chain.
pub fn failure_body(error: &ExtractError) -> Vec<u8> {
    let mut body = Json::object()
        .field("ok", false)
        .field("error", error.to_wire().to_json())
        .build()
        .dump();
    body.push('\n');
    body.into_bytes()
}

/// Serializes a protocol-level failure (scenario realization, queue
/// administration) with the out-of-taxonomy category `"request"`.
pub fn request_failure_body(message: &str) -> Vec<u8> {
    let mut body = Json::object()
        .field("ok", false)
        .field(
            "error",
            Json::object()
                .field("category", "request")
                .field("message", message)
                .field("chain", Vec::<Json>::new())
                .build(),
        )
        .build()
        .dump();
    body.push('\n');
    body.into_bytes()
}

/// The scheduler: drains the queue, realizes scenarios, and fans each
/// batch onto the worker pool through the erased [`Extractor`] path.
pub struct Scheduler {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    jobs: usize,
    batch_max: usize,
    tracer: Option<Arc<Tracer>>,
}

impl Scheduler {
    /// A scheduler over the shared queue/cache/metrics, running up to
    /// `jobs` concurrent extractions (`0` = one per core) and draining
    /// at most `batch_max` submissions per wakeup.
    pub fn new(
        queue: Arc<JobQueue>,
        cache: Arc<ResultCache>,
        metrics: Arc<Metrics>,
        jobs: usize,
        batch_max: usize,
    ) -> Self {
        Self {
            queue,
            cache,
            metrics,
            jobs: if jobs == 0 {
                mini_rayon::available_workers()
            } else {
                jobs
            },
            batch_max: batch_max.max(1),
            tracer: None,
        }
    }

    /// Attaches the daemon's tracer: jobs carrying a
    /// [`JobRequest::trace`] context get queue-wait / extract / stage
    /// spans minted when they finish.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs until [`JobQueue::stop`] — the scheduler thread's body.
    pub fn run(self) {
        // One extractor per method, built once and driven erased — the
        // scheduler never branches on what it is running.
        let extractors: Vec<(Method, Box<dyn Extractor>)> = vec![
            (Method::FastExtraction, Box::new(FastExtractor::new())),
            (Method::HoughBaseline, Box::new(HoughBaseline::new())),
            (Method::TunedFast, Box::new(TuningLoop::new())),
        ];
        while let Some(batch) = self.queue.take_batch(self.batch_max) {
            self.metrics.queue_depth.set(self.queue.depth() as u64);
            self.metrics.jobs_running.set(batch.len() as u64);
            self.run_batch(&batch, &extractors);
            self.metrics.jobs_running.set(0);
            self.metrics.queue_depth.set(self.queue.depth() as u64);
        }
    }

    fn run_batch(
        &self,
        batch: &[(u64, JobRequest, Instant)],
        extractors: &[(Method, Box<dyn Extractor>)],
    ) {
        let pool = ThreadPool::new(self.jobs);
        let realized: Vec<Result<Csd, String>> =
            pool.par_map(batch, |_, (_, request, _)| request.scenario.realize());

        // Scenarios that failed to realize finish immediately.
        for ((id, request, submitted), realized) in batch.iter().zip(&realized) {
            if let Err(message) = realized {
                self.finish(
                    *id,
                    request,
                    *submitted,
                    FinishedJob {
                        ok: false,
                        cache_hit: false,
                        body: request_failure_body(message),
                    },
                    None,
                );
            }
        }

        // A method with no registered extractor must still finish its
        // jobs (defensive: `Method` is non-exhaustive, and a hung job
        // would pin its waiter until the timeout).
        for ((id, request, submitted), realized) in batch.iter().zip(&realized) {
            if realized.is_ok() && !extractors.iter().any(|(m, _)| *m == request.method) {
                self.finish(
                    *id,
                    request,
                    *submitted,
                    FinishedJob {
                        ok: false,
                        cache_hit: false,
                        body: request_failure_body(&format!(
                            "method {} not servable",
                            request.method
                        )),
                    },
                    None,
                );
            }
        }

        // Group the rest by method and run each group through the one
        // erased batch path. Sources are opened through each job's
        // backend *before* the fan-out, so an open failure (unreadable
        // tape, unwritable path) finishes its job cleanly instead of
        // panicking a worker.
        for (method, extractor) in extractors {
            let mut group: Vec<(usize, Mutex<Option<BoxedSource>>)> = Vec::new();
            for (i, (id, request, submitted)) in batch.iter().enumerate() {
                if request.method != *method || realized[i].is_err() {
                    continue;
                }
                let csd = realized[i].as_ref().expect("checked ok").clone();
                let scenario = SourceScenario::new(csd)
                    .with_label(format!("job{id}"))
                    .with_seed(request.scenario.seed());
                match request.backend.open(scenario) {
                    Ok(source) => group.push((i, Mutex::new(Some(source)))),
                    // Open failures are environmental (a tape missing
                    // *right now*, a directory briefly unwritable), not
                    // deterministic properties of the request — finish
                    // the job but keep the failure out of the result
                    // cache so a fixed environment serves fresh runs.
                    Err(e) => self.finish_uncached(
                        *id,
                        *submitted,
                        FinishedJob {
                            ok: false,
                            cache_hit: false,
                            body: request_failure_body(&format!("backend open failed: {e}")),
                        },
                    ),
                }
            }
            if group.is_empty() {
                continue;
            }
            let outcomes = fastvg_core::batch::BatchExtractor::new()
                .with_jobs(self.jobs)
                .run(extractor.as_ref(), group.len(), |k| {
                    let source = group[k]
                        .1
                        .lock()
                        .expect("source slot poisoned")
                        .take()
                        .expect("each job's source is taken exactly once");
                    MeasurementSession::new(source)
                });
            for (k, outcome) in outcomes.into_iter().enumerate() {
                let (id, request, submitted) = &batch[group[k].0];
                let wall = outcome.wall;
                // Drain the job's shared-channel stall summary (if its
                // backend multiplexes) whether it succeeded or not, so
                // the pool's finished-session ledger stays tidy.
                let channel_wait = request
                    .backend
                    .channel_pool()
                    .and_then(|pool| pool.take_session_wait(&format!("job{id}")));
                let (finished, mut stages) = match outcome.outcome {
                    Ok(report) => {
                        let body = result_body(&report);
                        (
                            FinishedJob {
                                ok: true,
                                cache_hit: false,
                                body,
                            },
                            Some(report.stages),
                        )
                    }
                    Err(error) => (
                        FinishedJob {
                            ok: false,
                            cache_hit: false,
                            body: failure_body(&error),
                        },
                        None,
                    ),
                };
                // Appended *after* `result_body(&report)` serialized the
                // response: the synthetic stage feeds metrics histograms
                // and trace waterfalls only — cached and wire bytes stay
                // bit-identical to an unmultiplexed run.
                if let (Some(stages), Some(wait)) = (stages.as_mut(), channel_wait) {
                    stages.push(fastvg_core::api::StageTiming {
                        stage: fastvg_core::api::Stage::ChannelWait,
                        probes: wait.stalled as usize,
                        elapsed: wait.wait,
                    });
                }
                self.trace_job(request, *submitted, wall, stages.as_deref());
                self.finish(*id, request, *submitted, finished, stages.as_deref());
            }
        }
    }

    /// Mints the scheduler-side spans for one finished traced job:
    /// `queue_wait` (submit → extraction start) and `extract` (the
    /// job's in-pipeline wall time), plus one child span per extraction
    /// stage laid out sequentially inside `extract`. Stage spans are
    /// re-exported from the Observer-derived [`StageTiming`]s each
    /// report carries — the pipeline itself is not re-instrumented.
    /// Spans are backdated from wall-clock "now": the job just finished,
    /// so `extract` ended now and started `wall` ago, and `queue_wait`
    /// covers the remainder back to the submit instant.
    fn trace_job(
        &self,
        request: &JobRequest,
        submitted: Instant,
        wall: Duration,
        stages: Option<&[fastvg_core::api::StageTiming]>,
    ) {
        let (Some(tracer), Some(ctx)) = (self.tracer.as_ref(), request.trace) else {
            return;
        };
        let trace = TraceId(ctx.trace);
        let parent = Some(SpanId(ctx.span));
        let now_us = fastvg_obs::unix_us();
        let total_us = submitted.elapsed().as_micros() as u64;
        let wall_us = (wall.as_micros() as u64).min(total_us);
        let submit_us = now_us.saturating_sub(total_us);
        let extract_start_us = now_us.saturating_sub(wall_us);
        tracer.emit(
            trace,
            parent,
            "queue_wait",
            submit_us,
            total_us - wall_us,
            Vec::new(),
        );
        let extract = tracer.emit(
            trace,
            parent,
            "extract",
            extract_start_us,
            wall_us,
            vec![("method", request.method.wire_name().to_string())],
        );
        let mut cursor = extract_start_us;
        for timing in stages.unwrap_or(&[]) {
            let dur = timing.elapsed.as_micros() as u64;
            // Channel-wait is virtual time overlapping the real stages
            // (the session stalls *inside* its sweeps), so its span is
            // an overlay child at the extract start, not a slice of the
            // sequential stage tiling.
            if timing.stage == fastvg_core::api::Stage::ChannelWait {
                tracer.emit(
                    trace,
                    Some(extract),
                    timing.stage.name(),
                    extract_start_us,
                    dur,
                    vec![("stalled_probes", timing.probes.to_string())],
                );
                continue;
            }
            tracer.emit(
                trace,
                Some(extract),
                timing.stage.name(),
                cursor,
                dur,
                vec![("probes", timing.probes.to_string())],
            );
            cursor += dur;
        }
    }

    fn finish(
        &self,
        id: u64,
        request: &JobRequest,
        submitted: Instant,
        finished: FinishedJob,
        stages: Option<&[fastvg_core::api::StageTiming]>,
    ) {
        if let Some(stages) = stages {
            self.metrics.observe_stages(stages);
        }
        // Extraction and realization failures are cached too: they are
        // as deterministic as results. (Environmental failures go
        // through `finish_uncached` instead.)
        self.cache.insert(
            request.fingerprint,
            &request.canonical,
            crate::cache::CachedResult {
                body: finished.body.clone(),
                ok: finished.ok,
            },
        );
        self.metrics.cache_entries.set(self.cache.len() as u64);
        self.finish_uncached(id, submitted, finished);
    }

    /// [`Scheduler::finish`] without the cache insert — for failures
    /// that depend on the daemon's environment rather than the request.
    fn finish_uncached(&self, id: u64, submitted: Instant, finished: FinishedJob) {
        if finished.ok {
            self.metrics.jobs_completed.inc();
        } else {
            self.metrics.jobs_failed.inc();
        }
        self.metrics.job_latency.observe(submitted.elapsed());
        self.queue.finish(id, finished);
    }
}

/// Convenience used by tests and the `serve` example: runs one request
/// synchronously through the same code path the scheduler uses
/// (realize, open through the request's backend, erased extract,
/// serialize), without a daemon.
///
/// # Errors
///
/// Returns the realization / backend-open error message for
/// unrealizable scenarios.
pub fn run_inline(request: &JobRequest) -> Result<Vec<u8>, String> {
    let csd = request.scenario.realize()?;
    let extractor: Box<dyn Extractor> = match request.method {
        Method::FastExtraction => Box::new(FastExtractor::new()),
        Method::HoughBaseline => Box::new(HoughBaseline::new()),
        Method::TunedFast => Box::new(TuningLoop::new()),
        other => return Err(format!("method {other} not servable")),
    };
    let scenario = SourceScenario::new(csd)
        .with_label("inline")
        .with_seed(request.scenario.seed());
    let mut session = request
        .backend
        .session(scenario)
        .map_err(|e| format!("backend open failed: {e}"))?;
    Ok(match extract_with(extractor.as_ref(), &mut session) {
        Ok(report) => result_body(&report),
        Err(error) => failure_body(&error),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn request(seed: u64) -> JobRequest {
        let mut spec = BenchmarkSpec::clean(0, 64);
        spec.seed = seed;
        let canonical = spec.to_json().canonical();
        JobRequest {
            fingerprint: fastvg_wire::fnv1a64(canonical.as_bytes()),
            canonical,
            scenario: Scenario::Spec(spec),
            method: Method::FastExtraction,
            backend: Arc::new(qd_instrument::SimBackend),
            trace: None,
        }
    }

    #[test]
    fn queue_respects_capacity_and_order() {
        let q = JobQueue::new(2, 16);
        let a = q.submit(request(1)).unwrap();
        let b = q.submit(request(2)).unwrap();
        assert_eq!(q.submit(request(3)).unwrap_err(), QueueFull);
        assert_eq!(q.depth(), 2);
        let batch = q.take_batch(8).unwrap();
        let ids: Vec<u64> = batch.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(ids, vec![a, b], "arrival order preserved");
        assert_eq!(q.depth(), 0);
        assert!(matches!(q.status(a), Some(JobState::Running)));
    }

    #[test]
    fn finish_wakes_waiters_and_is_observable() {
        let q = Arc::new(JobQueue::new(8, 16));
        let id = q.submit(request(7)).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.wait_finished(id, Duration::from_secs(5)))
        };
        let batch = q.take_batch(1).unwrap();
        q.finish(
            batch[0].0,
            FinishedJob {
                ok: true,
                cache_hit: false,
                body: b"{}\n".to_vec(),
            },
        );
        let finished = waiter.join().unwrap().expect("woken with outcome");
        assert!(finished.ok);
        assert!(matches!(q.status(id), Some(JobState::Finished(_))));
        assert_eq!(q.status(id).unwrap().name(), "done");
    }

    #[test]
    fn wait_times_out_and_stop_unblocks() {
        let q = Arc::new(JobQueue::new(8, 16));
        let id = q.submit(request(9)).unwrap();
        assert!(q.wait_finished(id, Duration::from_millis(30)).is_none());

        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.take_batch(4))
        };
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.wait_finished(9999, Duration::from_secs(30)))
        };
        // Unknown job id returns immediately.
        assert!(waiter.join().unwrap().is_none());
        // take_batch first drains the one pending job…
        assert!(blocked.join().unwrap().is_some());
        // …then stop() makes the next take return None.
        q.stop();
        assert!(q.take_batch(4).is_none());
    }

    #[test]
    fn on_finished_fires_at_finish_immediately_and_on_stop() {
        let q = Arc::new(JobQueue::new(8, 16));
        let outcomes: Arc<Mutex<Vec<(&'static str, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let record = |label: &'static str| {
            let outcomes = Arc::clone(&outcomes);
            Box::new(move |finished: Option<FinishedJob>| {
                outcomes.lock().unwrap().push((label, finished.is_some()));
            })
        };

        // Subscribed before the job resolves: fires from finish().
        let id = q.submit(request(11)).unwrap();
        q.on_finished(id, record("pending"));
        assert!(outcomes.lock().unwrap().is_empty(), "not fired yet");
        let batch = q.take_batch(1).unwrap();
        q.finish(
            batch[0].0,
            FinishedJob {
                ok: true,
                cache_hit: false,
                body: b"{}\n".to_vec(),
            },
        );
        // Already finished: fires inline. Unknown id: fires inline with None.
        q.on_finished(id, record("done"));
        q.on_finished(424242, record("unknown"));
        // Still-queued watcher at stop(): fired with None.
        let parked = q.submit(request(12)).unwrap();
        q.on_finished(parked, record("stopped"));
        q.stop();

        let seen = outcomes.lock().unwrap().clone();
        assert_eq!(
            seen,
            vec![
                ("pending", true),
                ("done", true),
                ("unknown", false),
                ("stopped", false),
            ]
        );
        // Stopping queues refuse new work instead of stranding it.
        assert_eq!(q.submit(request(13)).unwrap_err(), QueueFull);
    }

    #[test]
    fn finished_jobs_are_garbage_collected() {
        let q = JobQueue::new(64, 2);
        let first = q.insert_finished(FinishedJob {
            ok: true,
            cache_hit: true,
            body: b"1".to_vec(),
        });
        for _ in 0..2 {
            q.insert_finished(FinishedJob {
                ok: true,
                cache_hit: true,
                body: b"x".to_vec(),
            });
        }
        assert!(q.status(first).is_none(), "oldest finished job evicted");
    }

    #[test]
    fn scheduler_drains_and_caches() {
        let queue = Arc::new(JobQueue::new(16, 64));
        let cache = Arc::new(ResultCache::new(CacheConfig::default()));
        let metrics = Arc::new(Metrics::default());
        let scheduler = Scheduler::new(
            Arc::clone(&queue),
            Arc::clone(&cache),
            Arc::clone(&metrics),
            2,
            8,
        );
        let handle = std::thread::spawn(move || scheduler.run());

        let ids: Vec<u64> = (0..3)
            .map(|k| queue.submit(request(100 + k)).unwrap())
            .collect();
        let outcomes: Vec<FinishedJob> = ids
            .iter()
            .map(|&id| {
                queue
                    .wait_finished(id, Duration::from_secs(60))
                    .expect("job finishes")
            })
            .collect();
        for outcome in &outcomes {
            assert!(outcome.ok, "clean spec must extract");
            assert!(outcome.body.ends_with(b"\n"), "newline framing");
        }
        assert_eq!(metrics.jobs_completed.get(), 3);
        assert_eq!(cache.len(), 3, "every outcome cached");

        // The cache now replays the exact bytes, outcome attached.
        let req = request(100);
        let cached = cache.get(req.fingerprint, &req.canonical).unwrap();
        assert_eq!(cached.body, outcomes[0].body);
        assert!(cached.ok);

        queue.stop();
        handle.join().unwrap();
    }

    #[test]
    fn inline_runner_matches_scheduler_bytes_except_timing() {
        // Same request through run_inline twice: slopes identical
        // (timing fields differ, so compare the parsed reports).
        let req = request(5);
        let a = run_inline(&req).unwrap();
        let b = run_inline(&req).unwrap();
        let parse = |bytes: &[u8]| {
            let doc = Json::parse(std::str::from_utf8(bytes).unwrap().trim()).unwrap();
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            ExtractionReport::from_json(doc.get("report").unwrap()).unwrap()
        };
        let (ra, rb) = (parse(&a), parse(&b));
        assert_eq!(ra.slope_h.to_bits(), rb.slope_h.to_bits());
        assert_eq!(ra.slope_v.to_bits(), rb.slope_v.to_bits());
        assert_eq!(ra.probes, rb.probes);
    }

    #[test]
    fn unrealizable_scenarios_fail_with_request_category() {
        let queue = Arc::new(JobQueue::new(4, 16));
        let cache = Arc::new(ResultCache::new(CacheConfig::default()));
        let metrics = Arc::new(Metrics::default());

        // A spec the generator rejects: lever arms that make the device
        // model singular.
        let mut spec = BenchmarkSpec::clean(0, 64);
        spec.lever_arms = [[0.01, 0.01], [0.01, 0.01]];
        let canonical = spec.to_json().canonical();
        let id = queue
            .submit(JobRequest {
                fingerprint: fastvg_wire::fnv1a64(canonical.as_bytes()),
                canonical,
                scenario: Scenario::Spec(spec),
                method: Method::FastExtraction,
                backend: Arc::new(qd_instrument::SimBackend),
                trace: None,
            })
            .unwrap();

        let scheduler = Scheduler::new(Arc::clone(&queue), cache, Arc::clone(&metrics), 1, 4);
        let handle = std::thread::spawn(move || scheduler.run());
        let finished = queue
            .wait_finished(id, Duration::from_secs(30))
            .expect("finishes");
        assert!(!finished.ok);
        let doc = Json::parse(std::str::from_utf8(&finished.body).unwrap().trim()).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("category"))
                .and_then(Json::as_str),
            Some("request")
        );
        assert_eq!(metrics.jobs_failed.get(), 1);
        queue.stop();
        handle.join().unwrap();
    }
}
