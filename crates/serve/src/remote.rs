//! [`RemoteExtractor`] — a `fastvg-serve` daemon as a drop-in
//! [`Extractor`].
//!
//! The PR-3 redesign made every extraction method an interchangeable
//! `&dyn Extractor`; this module extends the family across the network:
//! a [`RemoteExtractor`] acquires the session's diagram locally, ships
//! it to a daemon as an inline-grid scenario (`docs/PROTOCOL.md`), and
//! returns the *server's* [`ExtractionReport`] — so local pipelines,
//! replayed tapes and remote daemons all run through the same harness
//! code, `BatchExtractor` fan-out included.
//!
//! The division of labour mirrors a lab deployment: the *instrument* is
//! local (the session being probed), the *compute* is remote. The full
//! window is acquired once (bracketed as [`Stage::Acquire`] for
//! observers) and the daemon extracts on the shipped data, so the
//! report's probe counts, slopes and α coefficients are bit-identical
//! to a local run of the same method on the same diagram — that is what
//! makes the remote path a transparent substitute, and what the tier-1
//! `remote` test pins.
//!
//! Failures map into the [`ExtractError::Remote`] branch of the
//! taxonomy: transport and protocol problems get their own category,
//! while a failure the *server's extraction* reported keeps the
//! category the server assigned (see [`fastvg_core::RemoteError`]).

use crate::client::{Client, ClientConfig, ClientResponse};
use fastvg_core::api::{ExtractionReport, Extractor, SessionView, Stage};
use fastvg_core::baseline::acquire_full_csd;
use fastvg_core::report::Method;
use fastvg_core::{ExtractError, RemoteError, WireFailure};
use fastvg_wire::Json;
use qd_csd::Csd;
use std::time::{Duration, Instant};

/// An [`Extractor`] that delegates the compute to a `fastvg-serve`
/// daemon.
///
/// ```no_run
/// use fastvg_core::api::extract_with;
/// use fastvg_serve::RemoteExtractor;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut session = qd_instrument::MeasurementSession::new(
/// #     qd_instrument::CsdSource::new(qd_csd::Csd::constant(
/// #         qd_csd::VoltageGrid::new(0.0, 0.0, 1.0, 32, 32)?, 1.0)?));
/// let remote = RemoteExtractor::new("127.0.0.1:8737");
/// let report = extract_with(&remote, &mut session)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RemoteExtractor {
    addr: String,
    method: Method,
    timeout: Duration,
    client: ClientConfig,
}

impl RemoteExtractor {
    /// A remote fast extraction against the daemon at `addr`
    /// (`"host:port"`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            method: Method::FastExtraction,
            timeout: Duration::from_secs(120),
            client: ClientConfig::new(),
        }
    }

    /// Selects the method the daemon should run (builder style).
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Caps the end-to-end request time, connect included (builder
    /// style; default 120 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adopts a full transport policy — retries, connect timeout,
    /// `TCP_NODELAY` (builder style). The read timeout is still governed
    /// by [`RemoteExtractor::with_timeout`], which caps the whole
    /// request.
    #[must_use]
    pub fn with_client_config(mut self, config: ClientConfig) -> Self {
        self.client = config;
        self
    }

    /// The daemon address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn transport(e: std::io::Error) -> ExtractError {
        ExtractError::Remote(RemoteError::Transport(e))
    }

    fn protocol(message: impl Into<String>) -> ExtractError {
        ExtractError::Remote(RemoteError::Protocol {
            message: message.into(),
        })
    }

    /// Serializes the acquired diagram as the protocol's inline-grid
    /// scenario.
    fn grid_request(&self, csd: &Csd) -> String {
        let grid = csd.grid();
        let (x0, y0) = grid.origin();
        let mut body = Json::object()
            .field("method", self.method.wire_name())
            .field(
                "grid",
                Json::object()
                    .field("x0", Json::num(x0))
                    .field("y0", Json::num(y0))
                    .field("delta", Json::num(grid.delta()))
                    .field("width", grid.width())
                    .field("height", grid.height())
                    .field(
                        "data",
                        csd.data().iter().map(|&v| Json::num(v)).collect::<Vec<_>>(),
                    )
                    .build(),
            )
            .build()
            .dump();
        body.push('\n');
        body
    }

    /// Decodes a finished-result document into the report or the
    /// server's failure.
    fn decode(&self, response: &ClientResponse) -> Result<ExtractionReport, ExtractError> {
        let doc = response
            .json()
            .map_err(|e| Self::protocol(format!("response body is not JSON: {e}")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                let report = doc
                    .get("report")
                    .ok_or_else(|| Self::protocol("ok result carries no \"report\""))?;
                ExtractionReport::from_json(report)
                    .map_err(|e| Self::protocol(format!("malformed report: {e}")))
            }
            Some(false) => {
                let error = doc
                    .get("error")
                    .ok_or_else(|| Self::protocol("failed result carries no \"error\""))?;
                // Out-of-taxonomy categories ("request") mean the
                // *delegation* was rejected, not the extraction.
                match WireFailure::from_json(error) {
                    Ok(failure) => Err(ExtractError::Remote(RemoteError::Failure(failure))),
                    Err(_) => {
                        let message = error
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("unintelligible error document");
                        Err(Self::protocol(format!(
                            "service rejected the request: {message}"
                        )))
                    }
                }
            }
            None => Err(Self::protocol("response carries no \"ok\" member")),
        }
    }

    /// Polls `GET /jobs/<id>` until the job finishes or the deadline
    /// lapses — the fallback when the `?wait` window elapsed server-side.
    fn poll(
        &self,
        client: &mut Client,
        job: &str,
        deadline: Instant,
    ) -> Result<ExtractionReport, ExtractError> {
        loop {
            if Instant::now() >= deadline {
                return Err(Self::protocol(format!(
                    "job {job} did not finish within {:?}",
                    self.timeout
                )));
            }
            std::thread::sleep(Duration::from_millis(50));
            let response = client
                .get(&format!("/jobs/{job}"))
                .map_err(Self::transport)?;
            match response.header("x-fastvg-status") {
                Some("done") | Some("failed") => return self.decode(&response),
                _ if response.status == 200 => continue, // queued/running
                _ => {
                    return Err(Self::protocol(format!(
                        "job poll answered {}",
                        response.status
                    )))
                }
            }
        }
    }
}

impl Extractor for RemoteExtractor {
    fn method(&self) -> Method {
        self.method
    }

    fn extract(&self, session: &mut SessionView<'_>) -> Result<ExtractionReport, ExtractError> {
        let deadline = Instant::now() + self.timeout;

        // The local half: acquire the instrument's full window once.
        // Observers see it as an Acquire stage; the *returned* report's
        // stage accounting is the server's.
        session.begin_stage(Stage::Acquire);
        let acquired = acquire_full_csd(session);
        session.end_stage();
        let csd = acquired?;

        let body = self.grid_request(&csd);
        let mut client = self
            .client
            .clone()
            .read_timeout(self.timeout)
            .connect(&self.addr)
            .map_err(Self::transport)?;
        let response = client
            .post("/extract?wait", body.as_bytes())
            .map_err(Self::transport)?;
        match response.status {
            200 => self.decode(&response),
            202 => {
                let job = response
                    .header("x-fastvg-job")
                    .ok_or_else(|| Self::protocol("202 answer carries no job id"))?
                    .to_string();
                self.poll(&mut client, &job, deadline)
            }
            status => {
                let detail = response
                    .json()
                    .ok()
                    .and_then(|doc| {
                        doc.get("error")?
                            .get("message")
                            .and_then(Json::as_str)
                            .map(str::to_string)
                    })
                    .unwrap_or_else(|| "no detail".to_string());
                Err(Self::protocol(format!(
                    "service answered {status}: {detail}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{start, ServeConfig};
    use fastvg_core::api::extract_with;
    use fastvg_core::extraction::FastExtractor;
    use qd_csd::VoltageGrid;
    use qd_instrument::{CsdSource, MeasurementSession};

    fn diagram(size: usize) -> Csd {
        let grid = VoltageGrid::new(0.0, 0.0, 1.0, size, size).unwrap();
        let s = size as f64 / 100.0;
        Csd::from_fn(grid, move |v1, v2| {
            let mut i = 8.0 - 0.002 * (v1 + v2);
            if v2 > -4.0 * (v1 - 62.0 * s) {
                i -= 1.0;
            }
            if v2 > 58.0 * s - 0.3 * v1 {
                i -= 0.8;
            }
            i
        })
        .unwrap()
    }

    #[test]
    fn remote_report_matches_local_extraction() {
        let daemon = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            extract_jobs: 2,
            ..ServeConfig::default()
        })
        .expect("daemon boots");

        let remote = RemoteExtractor::new(daemon.addr().to_string());
        assert_eq!(remote.method(), Method::FastExtraction);
        let mut session = MeasurementSession::new(CsdSource::new(diagram(100)));
        let served = extract_with(&remote, &mut session).expect("remote extraction");

        let mut session = MeasurementSession::new(CsdSource::new(diagram(100)));
        let local = extract_with(&FastExtractor::new(), &mut session).expect("local extraction");

        assert_eq!(served.method, local.method);
        assert_eq!(served.slope_h.to_bits(), local.slope_h.to_bits());
        assert_eq!(served.slope_v.to_bits(), local.slope_v.to_bits());
        assert_eq!(served.matrix, local.matrix);
        assert_eq!(served.probes, local.probes);
        assert_eq!(served.unique_pixels, local.unique_pixels);
        assert_eq!(served.coverage.to_bits(), local.coverage.to_bits());

        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn unreachable_daemons_surface_transport_errors() {
        // A port from the ephemeral range nobody is listening on: bind
        // and drop a listener to find a free one.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let remote =
            RemoteExtractor::new(format!("127.0.0.1:{port}")).with_timeout(Duration::from_secs(2));
        let mut session = MeasurementSession::new(CsdSource::new(diagram(32)));
        let err = extract_with(&remote, &mut session).unwrap_err();
        assert_eq!(err.category(), fastvg_core::ErrorCategory::Remote);
        assert!(
            matches!(err, ExtractError::Remote(RemoteError::Transport(_))),
            "{err:?}"
        );
    }

    #[test]
    fn server_side_extraction_failures_keep_their_category() {
        let daemon = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            extract_jobs: 1,
            ..ServeConfig::default()
        })
        .expect("daemon boots");

        // A featureless diagram: extraction fails server-side (no
        // transition lines), and the failure arrives category-intact.
        let flat = Csd::constant(VoltageGrid::new(0.0, 0.0, 1.0, 64, 64).unwrap(), 1.0).unwrap();
        let remote = RemoteExtractor::new(daemon.addr().to_string());
        let mut session = MeasurementSession::new(CsdSource::new(flat));
        let err = extract_with(&remote, &mut session).unwrap_err();
        match &err {
            ExtractError::Remote(RemoteError::Failure(w)) => {
                assert_ne!(
                    w.category,
                    fastvg_core::ErrorCategory::Remote,
                    "server assigns a real pipeline category"
                );
            }
            other => panic!("expected a served failure, got {other:?}"),
        }

        daemon.shutdown();
        daemon.join();
    }
}
