//! The extraction service: routes, request validation, cache fronting,
//! and daemon lifecycle.
//!
//! [`ExtractService`] is the [`Handler`] behind the four routes of
//! `docs/PROTOCOL.md` (`POST /extract`, `GET /jobs/<id>`,
//! `GET /healthz`, `GET /metrics`, plus the administrative
//! `POST /shutdown`). [`start`] assembles the full daemon: HTTP server,
//! scheduler thread, result cache and metrics, returned as a
//! [`ServiceHandle`] whose [`ServiceHandle::shutdown`] /
//! [`ServiceHandle::join`] implement the graceful stop.
//!
//! `?wait` requests never block a thread: the handler returns
//! [`Outcome::Pending`] and completes the connection from the job
//! queue's finish notification, with the reactor's timer wheel firing
//! the `202 queued` fallback if the job outlives
//! [`ServeConfig::wait_timeout`].

use crate::cache::{CacheConfig, CachedResult, ResultCache};
use crate::http::{
    deferred, Handler, HttpConfig, HttpServer, Outcome, Request, Response, ServerStats,
    ShutdownHandle,
};
use crate::metrics::Metrics;
use crate::queue::{FinishedJob, JobQueue, JobRequest, JobState, Scenario, Scheduler};
use fastvg_core::report::Method;
use fastvg_obs::{ActiveSpan, FlusherHandle, SpanId, TraceId, Tracer};
use fastvg_wire::{request_canonical, request_fingerprint, Json, TraceContext, TRACE_HEADER};
use qd_csd::{Csd, VoltageGrid};
use qd_dataset::wire::MAX_SPEC_SIZE;
use qd_dataset::BenchmarkSpec;
use qd_instrument::{BackendError, BackendRegistry, SourceBackend};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Largest dwell a request-supplied `throttled:<dwell>` backend may ask
/// for — the paper's physical 50 ms. The *operator's* `--backend` flag
/// is not capped (their machine, their dwell); this bound only stops a
/// hostile request from parking extraction workers.
pub const REQUEST_MAX_DWELL: Duration = Duration::from_millis(50);

/// The backend schemes a request's `"backend"` member may use. Tape
/// schemes (`record`, `replay`) touch the server's filesystem and stay
/// operator-only; `hwsim` is wire-safe because its dwell is virtual
/// accounting (no wall-clock sleep) and every profile knob is
/// range-checked at parse time; `multiplexed` is wire-safe because its
/// schedule accounting is virtual and its inner spec is re-validated
/// against this same allowlist.
pub const REQUEST_BACKEND_SCHEMES: [&str; 4] = ["sim", "throttled", "hwsim", "multiplexed"];

/// Daemon configuration.
///
/// Construct via [`ServeConfig::builder`] to get hostile values rejected
/// up front, or fill the fields directly and let [`start`] validate.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` for an ephemeral port).
    pub addr: String,
    /// Concurrent extraction workers (`0` = one per core).
    pub extract_jobs: usize,
    /// Maximum pending jobs before `POST /extract` answers 503.
    pub queue_capacity: usize,
    /// Maximum jobs the scheduler drains per wakeup.
    pub batch_max: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Maximum request body bytes (inline grids are the big ones).
    pub max_body_bytes: usize,
    /// How long `?wait` requests may stay pending before the reactor
    /// answers `202` with the job id for polling.
    pub wait_timeout: Duration,
    /// Maximum concurrently open connections; excess accepts get an
    /// immediate `503` and a close.
    pub max_connections: usize,
    /// How long one request (head + body) may take to arrive once its
    /// first byte is in — the anti-slowloris bound.
    pub request_read_deadline: Duration,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server closes it silently.
    pub idle_timeout: Duration,
    /// How long graceful shutdown waits for in-flight connections.
    pub drain_deadline: Duration,
    /// The probe backend scenarios are measured through when a request
    /// does not pick its own (a [`BackendRegistry::standard`] spec
    /// string; operator-supplied, so tape schemes are allowed here).
    pub backend: String,
    /// Whether the fleet cache-peering endpoints
    /// (`GET`/`PUT /cache/<fingerprint>`) are served. On by default;
    /// standalone daemons exposed to untrusted clients may turn it off
    /// (`PUT` lets a peer seed arbitrary cache entries).
    pub cache_peering: bool,
    /// Where to export finished spans as newline-JSON (`--trace-out`).
    /// Setting it also makes the daemon trace *every* request; without
    /// it only requests carrying an `x-fastvg-trace` header are traced
    /// (and their spans reach `GET /trace/recent` only).
    pub trace_out: Option<PathBuf>,
    /// Fixed span/trace id seed (`--trace-seed`) for reproducible id
    /// sequences in replay tests; `None` seeds from entropy.
    pub trace_seed: Option<u64>,
    /// Emit a rate-limited structured log line (JSON on stderr) for any
    /// request slower than this (`--slow-ms`). `None` (default) is off.
    pub slow_threshold: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8737".to_string(),
            extract_jobs: 0,
            queue_capacity: 256,
            batch_max: 32,
            cache: CacheConfig::default(),
            max_body_bytes: 8 * 1024 * 1024,
            wait_timeout: Duration::from_secs(60),
            max_connections: 4096,
            request_read_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(30),
            backend: "sim".to_string(),
            cache_peering: true,
            trace_out: None,
            trace_seed: None,
            slow_threshold: None,
        }
    }
}

impl ServeConfig {
    /// A fluent builder over the defaults, mirroring
    /// `fastvg_core::Pipeline`.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Checks every field against its sane range; [`start`] runs this,
    /// and [`ServeConfigBuilder::build`] runs it early.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        const HOUR: Duration = Duration::from_secs(3600);
        fn bounded(
            field: &'static str,
            value: usize,
            range: std::ops::RangeInclusive<usize>,
        ) -> Result<(), ConfigError> {
            if range.contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::new(
                    field,
                    format!("{value} is outside {}..={}", range.start(), range.end()),
                ))
            }
        }
        fn duration(field: &'static str, value: Duration) -> Result<(), ConfigError> {
            if value.is_zero() || value > HOUR {
                Err(ConfigError::new(
                    field,
                    format!("{value:?} is outside (0, 1h]"),
                ))
            } else {
                Ok(())
            }
        }
        if self.addr.is_empty() || !self.addr.contains(':') {
            return Err(ConfigError::new(
                "addr",
                format!("{:?} is not a host:port address", self.addr),
            ));
        }
        bounded("queue_capacity", self.queue_capacity, 1..=1_000_000)?;
        bounded("batch_max", self.batch_max, 1..=4096)?;
        bounded("extract_jobs", self.extract_jobs, 0..=1024)?;
        bounded("max_body_bytes", self.max_body_bytes, 1..=(1 << 30))?;
        bounded("max_connections", self.max_connections, 1..=1_000_000)?;
        bounded("cache.shards", self.cache.shards, 1..=4096)?;
        duration("wait_timeout", self.wait_timeout)?;
        duration("request_read_deadline", self.request_read_deadline)?;
        duration("idle_timeout", self.idle_timeout)?;
        duration("drain_deadline", self.drain_deadline)?;
        if let Some(slow) = self.slow_threshold {
            duration("slow_threshold", slow)?;
        }
        BackendRegistry::standard()
            .resolve(&self.backend)
            .map_err(|e| ConfigError::new("backend", e.to_string()))?;
        Ok(())
    }
}

/// Builder for [`ServeConfig`] — every setter is fluent, and
/// [`ServeConfigBuilder::build`] rejects hostile values at construction
/// instead of at [`start`].
#[derive(Debug, Clone)]
#[must_use = "the builder does nothing until build() is called"]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bind address (`"127.0.0.1:0"` for an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Concurrent extraction workers (`0` = one per core).
    pub fn extract_jobs(mut self, jobs: usize) -> Self {
        self.config.extract_jobs = jobs;
        self
    }

    /// Maximum pending jobs before `POST /extract` answers 503.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Maximum jobs the scheduler drains per wakeup.
    pub fn batch_max(mut self, batch: usize) -> Self {
        self.config.batch_max = batch;
        self
    }

    /// Result-cache sizing.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Maximum request body bytes.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.config.max_body_bytes = bytes;
        self
    }

    /// How long `?wait` requests may stay pending before the `202`
    /// fallback.
    pub fn wait_timeout(mut self, timeout: Duration) -> Self {
        self.config.wait_timeout = timeout;
        self
    }

    /// Maximum concurrently open connections.
    pub fn max_connections(mut self, connections: usize) -> Self {
        self.config.max_connections = connections;
        self
    }

    /// Per-request read deadline (anti-slowloris).
    pub fn request_read_deadline(mut self, deadline: Duration) -> Self {
        self.config.request_read_deadline = deadline;
        self
    }

    /// Keep-alive idle timeout between requests.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Graceful-shutdown drain deadline.
    pub fn drain_deadline(mut self, deadline: Duration) -> Self {
        self.config.drain_deadline = deadline;
        self
    }

    /// Default probe backend spec (operator-side, tape schemes allowed).
    pub fn backend(mut self, spec: impl Into<String>) -> Self {
        self.config.backend = spec.into();
        self
    }

    /// Whether to serve the fleet cache-peering endpoints
    /// (`GET`/`PUT /cache/<fingerprint>`).
    pub fn cache_peering(mut self, enabled: bool) -> Self {
        self.config.cache_peering = enabled;
        self
    }

    /// Newline-JSON span export path (also turns on tracing of every
    /// request, not only those carrying `x-fastvg-trace`).
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace_out = Some(path.into());
        self
    }

    /// Fixed trace/span id seed for reproducible replay tests.
    pub fn trace_seed(mut self, seed: u64) -> Self {
        self.config.trace_seed = Some(seed);
        self
    }

    /// Slow-request log threshold (off by default).
    pub fn slow_threshold(mut self, threshold: Duration) -> Self {
        self.config.slow_threshold = Some(threshold);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range field as a [`ConfigError`].
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A rejected [`ServeConfig`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    message: String,
}

impl ConfigError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self {
            field,
            message: message.into(),
        }
    }

    /// The offending `ServeConfig` field name.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ServeConfig.{}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Errors starting the daemon.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The configured default backend spec did not resolve.
    Backend(BackendError),
    /// A configuration field was out of range.
    Config(ConfigError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "service socket error: {e}"),
            ServeError::Backend(e) => write!(f, "service backend error: {e}"),
            ServeError::Config(e) => write!(f, "service config error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Backend(e) => Some(e),
            ServeError::Config(e) => Some(e),
        }
    }
}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        ServeError::Backend(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

/// The request handler, shared with the reactor thread.
pub struct ExtractService {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    wait_timeout: Duration,
    max_connections: usize,
    cache_peering: bool,
    shutdown: OnceLock<ShutdownHandle>,
    server_stats: OnceLock<Arc<ServerStats>>,
    started: Instant,
    parser: ExtractParser,
    tracer: Arc<Tracer>,
    /// Trace every request (true when `trace_out` is configured), not
    /// only those that arrive with an `x-fastvg-trace` header.
    trace_all: bool,
    slow: Option<Arc<SlowLog>>,
}

/// Rate-limited slow-request logger: at most one structured line per
/// second; requests suppressed in between are counted and reported on
/// the next line.
#[derive(Debug)]
struct SlowLog {
    threshold: Duration,
    last: Mutex<Option<Instant>>,
    suppressed: AtomicU64,
}

impl SlowLog {
    const MIN_GAP: Duration = Duration::from_secs(1);

    fn new(threshold: Duration) -> Self {
        Self {
            threshold,
            last: Mutex::new(None),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Logs one finished request if it crossed the threshold. The line
    /// is a single JSON object on stderr carrying the trace id (when
    /// the request was traced) and the top span name, so a waterfall
    /// can be pulled from the trace file by id.
    fn observe(&self, elapsed: Duration, outcome: &str, trace: Option<&str>) {
        if elapsed < self.threshold {
            return;
        }
        {
            let mut last = self.last.lock().expect("slow log poisoned");
            let now = Instant::now();
            if last.is_some_and(|at| now.duration_since(at) < Self::MIN_GAP) {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return;
            }
            *last = Some(now);
        }
        let suppressed = self.suppressed.swap(0, Ordering::Relaxed);
        let line = Json::object()
            .field("event", "slow_request")
            .field("top_span", "request")
            .field("route", "extract")
            .field("outcome", outcome)
            .field("dur_ms", Json::num(elapsed.as_secs_f64() * 1e3))
            .field(
                "threshold_ms",
                Json::num(self.threshold.as_secs_f64() * 1e3),
            )
            .field(
                "trace",
                match trace {
                    Some(hex) => Json::from(hex),
                    None => Json::Null,
                },
            )
            .field("suppressed", suppressed)
            .build()
            .dump();
        eprintln!("{line}");
    }
}

impl std::fmt::Debug for ExtractService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractService").finish_non_exhaustive()
    }
}

/// A protocol-level rejection: the HTTP status plus the message the
/// error document carries. Public so `fastvg-router` can run the
/// daemon's exact request validation up front and report the very same
/// errors without a round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The HTTP status to answer with (4xx/5xx).
    pub status: u16,
    /// Human-readable message for the error body.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for RequestError {}

/// Internal shorthand predating the public [`RequestError`] name.
type Rejection = RequestError;

fn reject(status: u16, message: impl Into<String>) -> RequestError {
    RequestError {
        status,
        message: message.into(),
    }
}

/// Parses and validates `POST /extract` requests into [`JobRequest`]s.
///
/// Split out of [`ExtractService`] so `fastvg-router` resolves the
/// *same* canonical fingerprint from the *same* bytes without running a
/// daemon: both sides build the envelope through
/// [`fastvg_wire::request_canonical`], so a request's ring position at
/// the router and its cache key at the daemon can never disagree —
/// provided both are configured with the same default backend spec.
pub struct ExtractParser {
    registry: BackendRegistry,
    default_backend: Arc<dyn SourceBackend>,
}

impl std::fmt::Debug for ExtractParser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractParser")
            .field("default_backend", &self.default_backend.describe())
            .finish_non_exhaustive()
    }
}

impl ExtractParser {
    /// A parser resolving requests against the standard backend registry,
    /// with `default_backend` (a spec string like `"sim"`) used when a
    /// request does not pick its own.
    ///
    /// # Errors
    ///
    /// Returns the [`BackendError`] when the default spec does not
    /// resolve.
    pub fn new(default_backend: &str) -> Result<Self, BackendError> {
        let registry = BackendRegistry::standard();
        let default_backend = registry.resolve(default_backend)?;
        Ok(Self {
            registry,
            default_backend,
        })
    }

    /// The backend registry requests resolve against.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The backend used when a request names none.
    pub fn default_backend(&self) -> &Arc<dyn SourceBackend> {
        &self.default_backend
    }

    /// Validates a request-supplied backend spec at the door: only
    /// [`REQUEST_BACKEND_SCHEMES`] are reachable over the wire, inner
    /// compositions (`+`) are refused — except under `multiplexed:`,
    /// whose inner spec is recursively re-validated right here, so a
    /// tape scheme cannot hide behind a pool — and throttle dwells are
    /// capped at [`REQUEST_MAX_DWELL`] so a hostile request cannot park
    /// the extraction workers.
    fn request_backend(&self, spec: &str) -> Result<Arc<dyn SourceBackend>, RequestError> {
        // One scheme parser everywhere: the registry's, not an ad-hoc
        // prefix match (which would let "sim extra" or " throttled"
        // disagree with what resolve() later sees).
        let (scheme, args) = BackendRegistry::split_spec(spec);
        let composition_ok = scheme == "multiplexed" || !spec.contains('+');
        if !REQUEST_BACKEND_SCHEMES.contains(&scheme) || !composition_ok {
            return Err(reject(
                400,
                format!(
                    "backend {spec:?} is not allowed over the wire \
                     (allowed: sim, throttled:<dwell>, hwsim:<profile>, \
                     multiplexed:<N>[+inner])"
                ),
            ));
        }
        if scheme == "multiplexed" {
            if let Some((_, inner)) = args.split_once('+') {
                // Same door, one level down: the inner spec must itself
                // be wire-allowed (recursion also covers nested pools).
                self.request_backend(inner)?;
            }
        }
        let backend = self
            .registry
            .resolve(spec)
            .map_err(|e| reject(400, e.to_string()))?;
        if backend.dwell() > REQUEST_MAX_DWELL {
            return Err(reject(
                400,
                format!(
                    "requested dwell {:?} exceeds the {REQUEST_MAX_DWELL:?} cap",
                    backend.dwell()
                ),
            ));
        }
        Ok(backend)
    }
}

impl ExtractService {
    fn new(config: &ServeConfig) -> Result<Self, ServeError> {
        let tracer = Tracer::new(
            "daemon",
            config
                .trace_seed
                .unwrap_or_else(|| fastvg_obs::IdGen::from_entropy().next_id()),
        );
        if let Some(path) = &config.trace_out {
            tracer.set_file(path)?;
        }
        Ok(Self {
            queue: Arc::new(JobQueue::new(config.queue_capacity, 4096)),
            cache: Arc::new(ResultCache::new(config.cache)),
            metrics: Arc::new(Metrics::default()),
            wait_timeout: config.wait_timeout,
            max_connections: config.max_connections,
            cache_peering: config.cache_peering,
            shutdown: OnceLock::new(),
            server_stats: OnceLock::new(),
            started: Instant::now(),
            parser: ExtractParser::new(&config.backend)?,
            tracer,
            trace_all: config.trace_out.is_some(),
            slow: config.slow_threshold.map(|t| Arc::new(SlowLog::new(t))),
        })
    }

    /// The service telemetry (shared with the scheduler).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The daemon's tracer (span source for `/trace/recent` and the
    /// `--trace-out` export).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    fn error_response(&self, rejection: &RequestError) -> Response {
        if rejection.status >= 500 {
            self.metrics.http_5xx.inc();
        } else {
            self.metrics.http_4xx.inc();
        }
        let mut body = Json::object()
            .field("ok", false)
            .field(
                "error",
                Json::object()
                    .field("category", "request")
                    .field("message", rejection.message.as_str())
                    .field("chain", Vec::<Json>::new())
                    .build(),
            )
            .build()
            .dump();
        body.push('\n');
        Response::json(rejection.status, body)
    }
}

impl ExtractParser {
    /// Parses and validates a `POST /extract` body into a [`JobRequest`]
    /// plus its `wait` flag — the daemon's admission path, also run by
    /// `fastvg-router` to place requests on its consistent-hash ring.
    ///
    /// # Errors
    ///
    /// Returns the protocol [`RequestError`] for malformed or disallowed
    /// requests.
    pub fn parse(&self, request: &Request) -> Result<(JobRequest, bool), RequestError> {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| reject(400, "body must be UTF-8 JSON"))?;
        let doc = Json::parse(text.trim_end_matches(['\r', '\n']))
            .map_err(|e| reject(400, format!("body is not valid JSON: {e}")))?;
        if doc.as_obj().is_none() {
            return Err(reject(400, "body must be a JSON object"));
        }

        let method = match doc.get("method") {
            None => Method::FastExtraction,
            Some(v) => v
                .as_str()
                .and_then(Method::from_wire_name)
                .ok_or_else(|| reject(400, "\"method\" must be fast|hough|tuned"))?,
        };
        let wait =
            request.query_flag("wait") || doc.get("wait").and_then(Json::as_bool).unwrap_or(false);
        let backend = match doc.get("backend") {
            None => Arc::clone(&self.default_backend),
            Some(v) => {
                let spec = v
                    .as_str()
                    .ok_or_else(|| reject(400, "\"backend\" must be a string"))?;
                self.request_backend(spec)?
            }
        };
        let seed = match doc.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| reject(400, "\"seed\" must be a u64"))?,
            ),
        };

        let selectors = ["benchmark", "spec", "grid"]
            .iter()
            .filter(|k| doc.get(k).is_some())
            .count();
        if selectors != 1 {
            return Err(reject(
                400,
                "exactly one of \"benchmark\", \"spec\", \"grid\" is required",
            ));
        }

        let (scenario, scenario_json) = if let Some(v) = doc.get("benchmark") {
            let index = v
                .as_usize()
                .filter(|i| (1..=12).contains(i))
                .ok_or_else(|| reject(400, "\"benchmark\" must be 1..=12"))?;
            let mut spec = qd_dataset::paper_specs()
                .into_iter()
                .find(|s| s.index == index)
                .expect("paper suite has indices 1..=12");
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            let json = spec.to_json();
            (Scenario::Spec(spec), json)
        } else if let Some(v) = doc.get("spec") {
            let mut spec = BenchmarkSpec::from_json(v).map_err(|e| reject(400, e.to_string()))?;
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            let json = spec.to_json();
            (Scenario::Spec(spec), json)
        } else {
            let v = doc.get("grid").expect("selector counted");
            if seed.is_some() {
                return Err(reject(400, "\"seed\" does not apply to inline grids"));
            }
            let csd = parse_grid(v)?;
            let json = grid_canonical_json(&csd);
            (Scenario::Grid(Box::new(csd)), json)
        };

        // Fingerprint the *resolved* scenario: `{"benchmark": 3}` and the
        // equivalent full spec share a cache entry, and the backend
        // travels in canonical form so `throttled:1ms` and
        // `throttled:1000us` do too. The envelope itself lives in
        // `fastvg-wire` so the router's ring hashes the same bytes.
        let canonical = request_canonical(method.wire_name(), &backend.describe(), scenario_json);
        Ok((
            JobRequest {
                fingerprint: request_fingerprint(&canonical),
                canonical,
                scenario,
                method,
                backend,
                trace: None,
            },
            wait,
        ))
    }
}

/// Emits a child span of `span` that *ends now* and lasted `dur` — the
/// shape of every phase the handler measures after the fact (socket
/// read, body parse, response serialization).
fn emit_child(tracer: &Tracer, span: &ActiveSpan, name: &'static str, dur: Duration) {
    let ctx = span.context();
    let dur_us = dur.as_micros() as u64;
    tracer.emit(
        ctx.trace,
        Some(ctx.span),
        name,
        fastvg_obs::unix_us().saturating_sub(dur_us),
        dur_us,
        Vec::new(),
    );
}

impl ExtractService {
    /// Opens the daemon's request span for one `/extract` request —
    /// parented to the incoming `x-fastvg-trace` context when present,
    /// a fresh root otherwise — or `None` when the request is untraced
    /// (no header and no `--trace-out`). The span is backdated to the
    /// first byte and gets a `read` child covering the socket read.
    fn request_span(&self, request: &Request) -> Option<ActiveSpan> {
        let incoming = request.header(TRACE_HEADER).and_then(TraceContext::parse);
        if incoming.is_none() && !self.trace_all {
            return None;
        }
        let mut span = match incoming {
            Some(ctx) => self
                .tracer
                .start(TraceId(ctx.trace), Some(SpanId(ctx.span)), "request"),
            None => self.tracer.root("request"),
        };
        let read = Duration::from_micros(request.read_us);
        if !read.is_zero() {
            span.backdate(Instant::now() - read);
        }
        emit_child(&self.tracer, &span, "read", read);
        Some(span)
    }

    /// Closes a request span (attaching the outcome) and runs the
    /// slow-request check — the one exit point every `/extract` answer
    /// funnels through, inline or deferred.
    fn finish_request(&self, span: Option<ActiveSpan>, started: Instant, outcome: &'static str) {
        let elapsed = started.elapsed();
        let trace_hex = span.as_ref().map(|s| s.context().trace.to_hex());
        if let Some(mut span) = span {
            span.attr("outcome", outcome);
            span.finish();
        }
        if let Some(slow) = &self.slow {
            slow.observe(elapsed, outcome, trace_hex.as_deref());
        }
    }

    fn handle_extract(&self, request: &Request) -> Outcome {
        self.metrics.requests_extract.inc();
        let started = Instant::now();
        let span = self.request_span(request);
        let parse_started = Instant::now();
        let parsed = self.parser.parse(request);
        if let Some(span) = &span {
            emit_child(&self.tracer, span, "parse", parse_started.elapsed());
        }
        let outcome = match parsed {
            Err(rejection) => {
                self.finish_request(span, started, "rejected");
                Outcome::Ready(self.error_response(&rejection))
            }
            Ok((mut job, wait)) => {
                if let Some(span) = &span {
                    let ctx = span.context();
                    job.trace = Some(TraceContext {
                        trace: ctx.trace.0,
                        span: ctx.span.0,
                    });
                }
                self.dispatch(job, wait, started, span)
            }
        };
        // Pending outcomes observe their latency when the completion
        // fires; everything answered inline observes here.
        if matches!(outcome, Outcome::Ready(_)) {
            self.metrics.request_latency.observe(started.elapsed());
        }
        outcome
    }

    fn dispatch(
        &self,
        job: JobRequest,
        wait: bool,
        started: Instant,
        span: Option<ActiveSpan>,
    ) -> Outcome {
        // Cache front: a hit never touches the queue or the pool, and it
        // replays the stored bytes verbatim (outcome flag travels with
        // the entry — it is never re-derived from the bytes).
        if let Some(cached) = self.cache.get(job.fingerprint, &job.canonical) {
            self.metrics.cache_hits.inc();
            let finished = FinishedJob {
                ok: cached.ok,
                cache_hit: true,
                body: cached.body,
            };
            let status = finished.status_name();
            let id = self.queue.insert_finished(finished.clone());
            let respond_started = Instant::now();
            let response = if wait {
                finished_response(id, &finished, "hit")
            } else {
                job_status_response(202, id, status, true)
            };
            if let Some(span) = &span {
                emit_child(&self.tracer, span, "respond", respond_started.elapsed());
            }
            self.finish_request(span, started, "cache_hit");
            return Outcome::Ready(response);
        }
        self.metrics.cache_misses.inc();

        let id = match self.queue.submit(job) {
            Ok(id) => id,
            Err(_) => {
                self.metrics.queue_rejected.inc();
                self.finish_request(span, started, "queue_full");
                return Outcome::Ready(self.error_response(&reject(503, "job queue at capacity")));
            }
        };
        self.metrics.jobs_submitted.inc();
        self.metrics.queue_depth.set(self.queue.depth() as u64);

        if !wait {
            // The job's queue-wait/extract spans still parent to this
            // request span by id after it closes — links are by id, not
            // by lifetime.
            self.finish_request(span, started, "queued");
            return Outcome::Ready(job_status_response(202, id, "queued", false));
        }

        // `?wait`: park the connection, not a thread. The queue's finish
        // notification completes it through the reactor; if the job is
        // slower than `wait_timeout`, the reactor's timer wheel answers
        // `202 queued` instead and the (eventual) completion is dropped.
        let (deferred, completer) = deferred();
        let metrics = Arc::clone(&self.metrics);
        let tracer = Arc::clone(&self.tracer);
        let slow = self.slow.clone();
        self.queue.on_finished(
            id,
            Box::new(move |finished| {
                metrics.request_latency.observe(started.elapsed());
                let respond_started = Instant::now();
                let (response, outcome) = match finished {
                    Some(finished) => (finished_response(id, &finished, "miss"), "done"),
                    // Queue stopped before the job ran: hand back the id
                    // so the client can still poll a draining daemon.
                    None => (job_status_response(202, id, "queued", false), "stopped"),
                };
                let trace_hex = span.as_ref().map(|s| s.context().trace.to_hex());
                if let Some(mut span) = span {
                    emit_child(&tracer, &span, "respond", respond_started.elapsed());
                    span.attr("outcome", outcome);
                    span.finish();
                }
                if let Some(slow) = &slow {
                    slow.observe(started.elapsed(), outcome, trace_hex.as_deref());
                }
                completer.complete(response);
            }),
        );
        Outcome::Pending(deferred.with_fallback(
            Instant::now() + self.wait_timeout,
            job_status_response(202, id, "queued", false),
        ))
    }

    fn handle_job(&self, id_text: &str) -> Response {
        self.metrics.requests_jobs.inc();
        let Ok(id) = id_text.parse::<u64>() else {
            return self.error_response(&reject(400, "job id must be an integer"));
        };
        match self.queue.status(id) {
            None => self.error_response(&reject(404, "unknown job id")),
            Some(JobState::Queued) => job_status_response(200, id, "queued", false),
            Some(JobState::Running) => job_status_response(200, id, "running", false),
            Some(JobState::Finished(finished)) => finished_response(
                id,
                &finished,
                if finished.cache_hit { "hit" } else { "miss" },
            ),
        }
    }

    fn handle_healthz(&self) -> Response {
        self.metrics.requests_healthz.inc();
        let connections = self
            .server_stats
            .get()
            .map(|stats| stats.open())
            .unwrap_or(0);
        let mut body = Json::object()
            .field("ok", true)
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("git", env!("FASTVG_GIT"))
            .field("backend", self.parser.default_backend().describe())
            .field(
                "backends",
                self.parser
                    .registry()
                    .schemes()
                    .iter()
                    .map(|s| Json::from(*s))
                    .collect::<Vec<_>>(),
            )
            .field(
                "request_backends",
                REQUEST_BACKEND_SCHEMES
                    .iter()
                    .map(|s| Json::from(*s))
                    .collect::<Vec<_>>(),
            )
            .field("uptime_s", Json::num(self.started.elapsed().as_secs_f64()))
            .field("queue_depth", self.queue.depth())
            .field("cache_entries", self.cache.len())
            .field("cache_peering", self.cache_peering)
            .field("connections_open", connections)
            .field("max_connections", self.max_connections)
            .build()
            .dump();
        body.push('\n');
        Response::json(200, body)
    }

    fn handle_metrics(&self) -> Response {
        self.metrics.requests_metrics.inc();
        let mut text = self.metrics.render();
        crate::metrics::render_build_info(&mut text, env!("CARGO_PKG_VERSION"), env!("FASTVG_GIT"));
        crate::metrics::family(
            &mut text,
            "fastvg_trace_spans_dropped_total",
            "counter",
            "Spans dropped on span-collector overflow.",
        );
        text.push_str(&format!(
            "fastvg_trace_spans_dropped_total {}\n",
            self.tracer.dropped()
        ));
        if let Some(stats) = self.server_stats.get() {
            crate::metrics::family(
                &mut text,
                "fastvg_connections_open",
                "gauge",
                "Connections currently open on the reactor.",
            );
            text.push_str(&format!("fastvg_connections_open {}\n", stats.open()));
            crate::metrics::family(
                &mut text,
                "fastvg_connections_total",
                "counter",
                "Connection lifecycle events, by kind.",
            );
            for (event, value) in [
                ("accepted", stats.accepted()),
                ("rejected", stats.rejected()),
                ("idle_closed", stats.idle_closed()),
                ("read_timeout", stats.request_timeouts()),
            ] {
                text.push_str(&format!(
                    "fastvg_connections_total{{event=\"{event}\"}} {value}\n"
                ));
            }
        }
        if let Some(pool) = self.parser.default_backend().channel_pool() {
            crate::metrics::render_mux(&pool.stats(), &mut text);
        }
        Response::text(200, text)
    }

    /// `GET /trace/recent` — the last few hundred finished spans as
    /// newline-JSON, for debugging without a `--trace-out` file.
    fn handle_trace_recent(&self) -> Response {
        let mut body = self.tracer.recent().join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        Response::text(200, body)
    }

    fn handle_shutdown(&self) -> Response {
        self.queue.stop();
        if let Some(handle) = self.shutdown.get() {
            handle.shutdown();
        }
        Response::json(202, "{\"ok\":true,\"status\":\"stopping\"}\n")
    }

    /// `GET /cache/<fingerprint>` — the cache-peering probe: answers the
    /// stored result document (as a regular finished-job response, so a
    /// router can relay it verbatim) or `404` without touching the
    /// queue or the extraction pool. The optional request body carries
    /// the canonical key; when present the entry must match it exactly
    /// (fingerprints may collide), when absent the fingerprint is
    /// trusted as-is (debugging convenience).
    fn handle_cache_get(&self, fp_text: &str, request: &Request) -> Response {
        let Ok(fingerprint) = fp_text.parse::<u64>() else {
            return self.error_response(&reject(400, "cache fingerprint must be a u64"));
        };
        let cached = if request.body.is_empty() {
            self.cache.peek(fingerprint).map(|(_, result)| result)
        } else {
            match std::str::from_utf8(&request.body) {
                Err(_) => {
                    return self.error_response(&reject(400, "canonical key must be UTF-8"));
                }
                Ok(key) => self
                    .cache
                    .get(fingerprint, key.trim_end_matches(['\r', '\n'])),
            }
        };
        match cached {
            None => {
                self.metrics.cache_peer_misses.inc();
                self.error_response(&reject(404, "no cache entry for this fingerprint"))
            }
            Some(cached) => {
                self.metrics.cache_peer_hits.inc();
                let finished = FinishedJob {
                    ok: cached.ok,
                    cache_hit: true,
                    body: cached.body,
                };
                let id = self.queue.insert_finished(finished.clone());
                finished_response(id, &finished, "hit")
            }
        }
    }

    /// `PUT /cache/<fingerprint>` — cache seeding, the warm half of
    /// peering: a router that found the entry on a sibling shard plants
    /// it here so the owner answers directly from then on. The body is
    /// `{"key": <canonical>, "ok": <bool>, "body": <result document>}`;
    /// the fingerprint must be [`request_fingerprint`] of `key`, and the
    /// stored bytes are exactly the `body` string (byte-identity is the
    /// whole point of peering).
    fn handle_cache_put(&self, fp_text: &str, request: &Request) -> Response {
        let Ok(fingerprint) = fp_text.parse::<u64>() else {
            return self.error_response(&reject(400, "cache fingerprint must be a u64"));
        };
        let doc = match std::str::from_utf8(&request.body)
            .map_err(|_| ())
            .and_then(|text| Json::parse(text.trim_end_matches(['\r', '\n'])).map_err(|_| ()))
        {
            Err(()) => {
                return self.error_response(&reject(400, "seed body must be UTF-8 JSON"));
            }
            Ok(doc) => doc,
        };
        let Some(key) = doc.get("key").and_then(Json::as_str) else {
            return self.error_response(&reject(400, "seed \"key\" must be a string"));
        };
        let Some(ok) = doc.get("ok").and_then(Json::as_bool) else {
            return self.error_response(&reject(400, "seed \"ok\" must be a bool"));
        };
        let Some(body) = doc.get("body").and_then(Json::as_str) else {
            return self.error_response(&reject(400, "seed \"body\" must be a string"));
        };
        if request_fingerprint(key) != fingerprint {
            return self
                .error_response(&reject(400, "fingerprint does not match the canonical key"));
        }
        if !body.ends_with('\n') {
            return self.error_response(&reject(
                400,
                "seed \"body\" must be a newline-framed document",
            ));
        }
        self.cache.insert(
            fingerprint,
            key,
            CachedResult {
                body: body.as_bytes().to_vec(),
                ok,
            },
        );
        self.metrics.cache_seeds.inc();
        self.metrics.cache_entries.set(self.cache.len() as u64);
        Response::json(200, "{\"ok\":true,\"seeded\":true}\n")
    }
}

/// The `200` body + headers of a finished job.
fn finished_response(id: u64, finished: &FinishedJob, cache: &str) -> Response {
    Response::json(200, finished.body.clone())
        .with_header("x-fastvg-job", id.to_string())
        .with_header("x-fastvg-cache", cache)
        .with_header("x-fastvg-status", finished.status_name())
}

/// The `{"job":…,"status":…,"cache":…}` body for queued/running answers.
fn job_status_response(status: u16, id: u64, state: &str, cache: bool) -> Response {
    let mut body = Json::object()
        .field("job", id)
        .field("status", state)
        .field("cache", cache)
        .build()
        .dump();
    body.push('\n');
    Response::json(status, body).with_header("x-fastvg-job", id.to_string())
}

impl Handler for ExtractService {
    fn handle(&self, request: &Request) -> Outcome {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/extract") => self.handle_extract(request),
            ("GET", "/healthz") => Outcome::Ready(self.handle_healthz()),
            ("GET", "/metrics") => Outcome::Ready(self.handle_metrics()),
            ("GET", "/trace/recent") => Outcome::Ready(self.handle_trace_recent()),
            ("POST", "/shutdown") => Outcome::Ready(self.handle_shutdown()),
            (method, path) => {
                if let Some(id) = path.strip_prefix("/jobs/") {
                    if method == "GET" {
                        return Outcome::Ready(self.handle_job(id));
                    }
                }
                if let Some(fp) = path.strip_prefix("/cache/") {
                    // The peering surface is opt-out: with peering
                    // disabled the routes simply do not exist.
                    if self.cache_peering {
                        match method {
                            "GET" => return Outcome::Ready(self.handle_cache_get(fp, request)),
                            "PUT" => return Outcome::Ready(self.handle_cache_put(fp, request)),
                            _ => {}
                        }
                    }
                }
                let known = matches!(
                    request.path.as_str(),
                    "/extract" | "/healthz" | "/metrics" | "/trace/recent" | "/shutdown"
                ) || request.path.starts_with("/jobs/")
                    || (self.cache_peering && request.path.starts_with("/cache/"));
                Outcome::Ready(if known {
                    self.error_response(&reject(405, format!("{method} not allowed here")))
                } else {
                    self.error_response(&reject(404, "no such route"))
                })
            }
        }
    }
}

/// Parses an inline grid scenario:
/// `{"x0":…,"y0":…,"delta":…,"width":…,"height":…,"data":[…]}` with
/// row-major `data` of `width × height` currents.
fn parse_grid(json: &Json) -> Result<Csd, Rejection> {
    if json.as_obj().is_none() {
        return Err(reject(400, "\"grid\" must be an object"));
    }
    let dim = |key: &str| -> Result<usize, Rejection> {
        json.get(key)
            .and_then(Json::as_usize)
            .filter(|&v| (1..=MAX_SPEC_SIZE).contains(&v))
            .ok_or_else(|| {
                reject(
                    400,
                    format!("grid \"{key}\" must be an integer in 1..={MAX_SPEC_SIZE}"),
                )
            })
    };
    let num = |key: &str| -> Result<f64, Rejection> {
        json.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| reject(400, format!("grid \"{key}\" must be a finite number")))
    };
    let width = dim("width")?;
    let height = dim("height")?;
    let grid = VoltageGrid::new(num("x0")?, num("y0")?, num("delta")?, width, height)
        .map_err(|e| reject(400, format!("bad grid geometry: {e}")))?;
    let data = json
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| reject(400, "grid \"data\" must be an array"))?;
    if data.len() != width * height {
        return Err(reject(
            400,
            format!(
                "grid \"data\" must hold width*height = {} values, got {}",
                width * height,
                data.len()
            ),
        ));
    }
    let values: Vec<f64> = data
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| reject(400, "grid \"data\" entries must be finite numbers"))
        })
        .collect::<Result<_, _>>()?;
    Csd::from_data(grid, values).map_err(|e| reject(400, format!("bad grid data: {e}")))
}

/// The canonical JSON of an inline grid, rebuilt from the parsed diagram
/// so formatting differences in the request never split cache entries.
fn grid_canonical_json(csd: &Csd) -> Json {
    let grid = csd.grid();
    let (x0, y0) = grid.origin();
    Json::object()
        .field(
            "grid",
            Json::object()
                .field("x0", Json::num(x0))
                .field("y0", Json::num(y0))
                .field("delta", Json::num(grid.delta()))
                .field("width", grid.width())
                .field("height", grid.height())
                .field(
                    "data",
                    csd.data().iter().map(|&v| Json::num(v)).collect::<Vec<_>>(),
                )
                .build(),
        )
        .build()
}

/// A running daemon: HTTP server + scheduler + shared state.
#[derive(Debug)]
pub struct ServiceHandle {
    service: Arc<ExtractService>,
    server: HttpServer,
    scheduler: Option<std::thread::JoinHandle<()>>,
    /// Keeps the trace flusher thread alive for the daemon's lifetime;
    /// dropping the handle (when the daemon is torn down) performs the
    /// final flush to `--trace-out`.
    flusher: Option<FlusherHandle>,
}

impl ServiceHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The shared service (metrics access for tests and embedding).
    pub fn service(&self) -> &ExtractService {
        &self.service
    }

    /// The reactor's connection counters.
    pub fn server_stats(&self) -> Arc<ServerStats> {
        self.server.stats()
    }

    /// A clonable handle that stops the daemon from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.server.shutdown_handle()
    }

    /// Requests a graceful stop: the queue drains no further, in-flight
    /// requests finish, the acceptor closes.
    pub fn shutdown(&self) {
        self.service.queue.stop();
        self.server.shutdown_handle().shutdown();
    }

    /// Waits for the scheduler and the reactor to exit. Call
    /// [`ServiceHandle::shutdown`] first (or let `POST /shutdown` do it).
    pub fn join(mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = scheduler.join();
        }
        self.server.join();
        // Stop the flusher last so spans minted during drain still land
        // in the trace file.
        drop(self.flusher.take());
    }
}

/// Boots the full daemon described by `config`.
///
/// # Errors
///
/// Returns [`ServeError::Config`] when a field is out of range,
/// [`ServeError::Io`] when the listen socket cannot be bound, or
/// [`ServeError::Backend`] when the configured default backend spec
/// does not resolve.
pub fn start(config: ServeConfig) -> Result<ServiceHandle, ServeError> {
    config.validate()?;
    let service = Arc::new(ExtractService::new(&config)?);

    // Bind before spawning the scheduler so a bind failure leaks nothing.
    let http = HttpConfig {
        max_connections: config.max_connections,
        max_body_bytes: config.max_body_bytes,
        request_read_deadline: config.request_read_deadline,
        idle_timeout: config.idle_timeout,
        drain_deadline: config.drain_deadline,
        ..HttpConfig::default()
    };
    let server = HttpServer::bind(&config.addr, Arc::clone(&service) as Arc<dyn Handler>, http)?;
    let _ = service.shutdown.set(server.shutdown_handle());
    let _ = service.server_stats.set(server.stats());

    let scheduler = Scheduler::new(
        Arc::clone(&service.queue),
        Arc::clone(&service.cache),
        Arc::clone(&service.metrics),
        config.extract_jobs,
        config.batch_max,
    )
    .with_tracer(Arc::clone(&service.tracer));
    let scheduler = std::thread::spawn(move || scheduler.run());

    // A background flusher is only worth a thread when spans leave the
    // process; `/trace/recent` drains the collector on demand otherwise.
    let flusher = config
        .trace_out
        .is_some()
        .then(|| service.tracer.spawn_flusher(Duration::from_millis(50)));

    Ok(ServiceHandle {
        service,
        server,
        scheduler: Some(scheduler),
        flusher,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_sane_and_rejects_hostile() {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .extract_jobs(2)
            .queue_capacity(64)
            .batch_max(8)
            .max_connections(512)
            .wait_timeout(Duration::from_secs(5))
            .request_read_deadline(Duration::from_secs(10))
            .idle_timeout(Duration::from_secs(3))
            .drain_deadline(Duration::from_secs(10))
            .backend("throttled:1ms")
            .build()
            .expect("sane config builds");
        assert_eq!(config.max_connections, 512);
        assert_eq!(config.backend, "throttled:1ms");

        let hostile: [(&str, ServeConfigBuilder); 6] = [
            ("addr", ServeConfig::builder().addr("")),
            ("queue_capacity", ServeConfig::builder().queue_capacity(0)),
            ("batch_max", ServeConfig::builder().batch_max(1 << 20)),
            ("max_connections", ServeConfig::builder().max_connections(0)),
            (
                "wait_timeout",
                ServeConfig::builder().wait_timeout(Duration::ZERO),
            ),
            ("backend", ServeConfig::builder().backend("nope:xyz")),
        ];
        for (field, builder) in hostile {
            let err = builder.build().expect_err("hostile value must be rejected");
            assert_eq!(err.field(), field, "{err}");
        }
    }

    #[test]
    fn start_validates_config() {
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        };
        config.idle_timeout = Duration::ZERO;
        match start(config) {
            Err(ServeError::Config(e)) => assert_eq!(e.field(), "idle_timeout"),
            other => panic!("expected config error, got {other:?}"),
        }
    }
}
