//! The extraction service: routes, request validation, cache fronting,
//! and daemon lifecycle.
//!
//! [`ExtractService`] is the [`Handler`] behind the four routes of
//! `docs/PROTOCOL.md` (`POST /extract`, `GET /jobs/<id>`,
//! `GET /healthz`, `GET /metrics`, plus the administrative
//! `POST /shutdown`). [`start`] assembles the full daemon: HTTP server,
//! scheduler thread, result cache and metrics, returned as a
//! [`ServiceHandle`] whose [`ServiceHandle::shutdown`] /
//! [`ServiceHandle::join`] implement the graceful stop.

use crate::cache::{CacheConfig, ResultCache};
use crate::http::{Handler, HttpConfig, HttpServer, Request, Response, ShutdownHandle};
use crate::metrics::Metrics;
use crate::queue::{FinishedJob, JobQueue, JobRequest, JobState, Scenario, Scheduler};
use fastvg_core::report::Method;
use fastvg_wire::{fnv1a64, Json};
use qd_csd::{Csd, VoltageGrid};
use qd_dataset::wire::MAX_SPEC_SIZE;
use qd_dataset::BenchmarkSpec;
use qd_instrument::{BackendError, BackendRegistry, SourceBackend};
use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Largest dwell a request-supplied `throttled:<dwell>` backend may ask
/// for — the paper's physical 50 ms. The *operator's* `--backend` flag
/// is not capped (their machine, their dwell); this bound only stops a
/// hostile request from parking extraction workers.
pub const REQUEST_MAX_DWELL: Duration = Duration::from_millis(50);

/// The backend schemes a request's `"backend"` member may use. Tape
/// schemes (`record`, `replay`) touch the server's filesystem and stay
/// operator-only; `hwsim` is wire-safe because its dwell is virtual
/// accounting (no wall-clock sleep) and every profile knob is
/// range-checked at parse time.
pub const REQUEST_BACKEND_SCHEMES: [&str; 3] = ["sim", "throttled", "hwsim"];

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` for an ephemeral port).
    pub addr: String,
    /// HTTP connection worker threads.
    pub http_workers: usize,
    /// Concurrent extraction workers (`0` = one per core).
    pub extract_jobs: usize,
    /// Maximum pending jobs before `POST /extract` answers 503.
    pub queue_capacity: usize,
    /// Maximum jobs the scheduler drains per wakeup.
    pub batch_max: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Maximum request body bytes (inline grids are the big ones).
    pub max_body_bytes: usize,
    /// How long `?wait` requests block before falling back to `202`.
    pub wait_timeout: Duration,
    /// The probe backend scenarios are measured through when a request
    /// does not pick its own (a [`BackendRegistry::standard`] spec
    /// string; operator-supplied, so tape schemes are allowed here).
    pub backend: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8737".to_string(),
            http_workers: 8,
            extract_jobs: 0,
            queue_capacity: 256,
            batch_max: 32,
            cache: CacheConfig::default(),
            max_body_bytes: 8 * 1024 * 1024,
            wait_timeout: Duration::from_secs(60),
            backend: "sim".to_string(),
        }
    }
}

/// Errors starting the daemon.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The configured default backend spec did not resolve.
    Backend(BackendError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "service socket error: {e}"),
            ServeError::Backend(e) => write!(f, "service backend error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Backend(e) => Some(e),
        }
    }
}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        ServeError::Backend(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The request handler — shared by every HTTP worker.
pub struct ExtractService {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    wait_timeout: Duration,
    shutdown: OnceLock<ShutdownHandle>,
    started: Instant,
    registry: BackendRegistry,
    default_backend: Arc<dyn SourceBackend>,
}

impl std::fmt::Debug for ExtractService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractService").finish_non_exhaustive()
    }
}

/// A protocol-level rejection: status code + message for the error body.
struct Rejection {
    status: u16,
    message: String,
}

fn reject(status: u16, message: impl Into<String>) -> Rejection {
    Rejection {
        status,
        message: message.into(),
    }
}

impl ExtractService {
    fn new(config: &ServeConfig) -> Result<Self, BackendError> {
        let registry = BackendRegistry::standard();
        let default_backend = registry.resolve(&config.backend)?;
        Ok(Self {
            queue: Arc::new(JobQueue::new(config.queue_capacity, 4096)),
            cache: Arc::new(ResultCache::new(config.cache)),
            metrics: Arc::new(Metrics::default()),
            wait_timeout: config.wait_timeout,
            shutdown: OnceLock::new(),
            started: Instant::now(),
            registry,
            default_backend,
        })
    }

    /// Validates a request-supplied backend spec at the door: only
    /// [`REQUEST_BACKEND_SCHEMES`] are reachable over the wire, inner
    /// compositions (`+`) are refused, and throttle dwells are capped
    /// at [`REQUEST_MAX_DWELL`] so a hostile request cannot park the
    /// extraction workers.
    fn request_backend(&self, spec: &str) -> Result<Arc<dyn SourceBackend>, Rejection> {
        // One scheme parser everywhere: the registry's, not an ad-hoc
        // prefix match (which would let "sim extra" or " throttled"
        // disagree with what resolve() later sees).
        let (scheme, _) = BackendRegistry::split_spec(spec);
        if !REQUEST_BACKEND_SCHEMES.contains(&scheme) || spec.contains('+') {
            return Err(reject(
                400,
                format!(
                    "backend {spec:?} is not allowed over the wire \
                     (allowed: sim, throttled:<dwell>, hwsim:<profile>)"
                ),
            ));
        }
        let backend = self
            .registry
            .resolve(spec)
            .map_err(|e| reject(400, e.to_string()))?;
        if backend.dwell() > REQUEST_MAX_DWELL {
            return Err(reject(
                400,
                format!(
                    "requested dwell {:?} exceeds the {REQUEST_MAX_DWELL:?} cap",
                    backend.dwell()
                ),
            ));
        }
        Ok(backend)
    }

    /// The service telemetry (shared with the scheduler).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn error_response(&self, rejection: &Rejection) -> Response {
        if rejection.status >= 500 {
            self.metrics.http_5xx.inc();
        } else {
            self.metrics.http_4xx.inc();
        }
        let mut body = Json::object()
            .field("ok", false)
            .field(
                "error",
                Json::object()
                    .field("category", "request")
                    .field("message", rejection.message.as_str())
                    .field("chain", Vec::<Json>::new())
                    .build(),
            )
            .build()
            .dump();
        body.push('\n');
        Response::json(rejection.status, body)
    }

    /// Parses and validates a `POST /extract` body into a [`JobRequest`]
    /// plus its `wait` flag.
    fn parse_extract(&self, request: &Request) -> Result<(JobRequest, bool), Rejection> {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| reject(400, "body must be UTF-8 JSON"))?;
        let doc = Json::parse(text.trim_end_matches(['\r', '\n']))
            .map_err(|e| reject(400, format!("body is not valid JSON: {e}")))?;
        if doc.as_obj().is_none() {
            return Err(reject(400, "body must be a JSON object"));
        }

        let method = match doc.get("method") {
            None => Method::FastExtraction,
            Some(v) => v
                .as_str()
                .and_then(Method::from_wire_name)
                .ok_or_else(|| reject(400, "\"method\" must be fast|hough|tuned"))?,
        };
        let wait =
            request.query_flag("wait") || doc.get("wait").and_then(Json::as_bool).unwrap_or(false);
        let backend = match doc.get("backend") {
            None => Arc::clone(&self.default_backend),
            Some(v) => {
                let spec = v
                    .as_str()
                    .ok_or_else(|| reject(400, "\"backend\" must be a string"))?;
                self.request_backend(spec)?
            }
        };
        let seed = match doc.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| reject(400, "\"seed\" must be a u64"))?,
            ),
        };

        let selectors = ["benchmark", "spec", "grid"]
            .iter()
            .filter(|k| doc.get(k).is_some())
            .count();
        if selectors != 1 {
            return Err(reject(
                400,
                "exactly one of \"benchmark\", \"spec\", \"grid\" is required",
            ));
        }

        let (scenario, scenario_json) = if let Some(v) = doc.get("benchmark") {
            let index = v
                .as_usize()
                .filter(|i| (1..=12).contains(i))
                .ok_or_else(|| reject(400, "\"benchmark\" must be 1..=12"))?;
            let mut spec = qd_dataset::paper_specs()
                .into_iter()
                .find(|s| s.index == index)
                .expect("paper suite has indices 1..=12");
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            let json = spec.to_json();
            (Scenario::Spec(spec), json)
        } else if let Some(v) = doc.get("spec") {
            let mut spec = BenchmarkSpec::from_json(v).map_err(|e| reject(400, e.to_string()))?;
            if let Some(seed) = seed {
                spec.seed = seed;
            }
            let json = spec.to_json();
            (Scenario::Spec(spec), json)
        } else {
            let v = doc.get("grid").expect("selector counted");
            if seed.is_some() {
                return Err(reject(400, "\"seed\" does not apply to inline grids"));
            }
            let csd = parse_grid(v)?;
            let json = grid_canonical_json(&csd);
            (Scenario::Grid(Box::new(csd)), json)
        };

        // Fingerprint the *resolved* scenario: `{"benchmark": 3}` and the
        // equivalent full spec share a cache entry, and the backend
        // travels in canonical form so `throttled:1ms` and
        // `throttled:1000us` do too.
        let canonical = Json::object()
            .field("method", method.wire_name())
            .field("backend", backend.describe())
            .field("scenario", scenario_json)
            .build()
            .canonical();
        Ok((
            JobRequest {
                fingerprint: fnv1a64(canonical.as_bytes()),
                canonical,
                scenario,
                method,
                backend,
            },
            wait,
        ))
    }

    fn handle_extract(&self, request: &Request) -> Response {
        self.metrics.requests_extract.inc();
        let started = Instant::now();
        let response = match self.parse_extract(request) {
            Err(rejection) => self.error_response(&rejection),
            Ok((job, wait)) => self.dispatch(job, wait),
        };
        self.metrics.request_latency.observe(started.elapsed());
        response
    }

    fn dispatch(&self, job: JobRequest, wait: bool) -> Response {
        // Cache front: a hit never touches the queue or the pool, and it
        // replays the stored bytes verbatim (outcome flag travels with
        // the entry — it is never re-derived from the bytes).
        if let Some(cached) = self.cache.get(job.fingerprint, &job.canonical) {
            self.metrics.cache_hits.inc();
            let finished = FinishedJob {
                ok: cached.ok,
                cache_hit: true,
                body: cached.body,
            };
            let status = finished.status_name();
            let id = self.queue.insert_finished(finished.clone());
            return if wait {
                Response::json(200, finished.body)
                    .with_header("x-fastvg-job", id.to_string())
                    .with_header("x-fastvg-cache", "hit")
                    .with_header("x-fastvg-status", status)
            } else {
                self.job_status_response(202, id, status, true)
            };
        }
        self.metrics.cache_misses.inc();

        let id = match self.queue.submit(job) {
            Ok(id) => id,
            Err(_) => {
                self.metrics.queue_rejected.inc();
                return self.error_response(&reject(503, "job queue at capacity"));
            }
        };
        self.metrics.jobs_submitted.inc();
        self.metrics.queue_depth.set(self.queue.depth() as u64);

        if wait {
            if let Some(finished) = self.queue.wait_finished(id, self.wait_timeout) {
                let status = finished.status_name();
                return Response::json(200, finished.body)
                    .with_header("x-fastvg-job", id.to_string())
                    .with_header("x-fastvg-cache", "miss")
                    .with_header("x-fastvg-status", status);
            }
            // Timed out (or shutting down): fall through to the async
            // answer so the client can poll.
        }
        self.job_status_response(202, id, "queued", false)
    }

    fn job_status_response(&self, status: u16, id: u64, state: &str, cache: bool) -> Response {
        let mut body = Json::object()
            .field("job", id)
            .field("status", state)
            .field("cache", cache)
            .build()
            .dump();
        body.push('\n');
        Response::json(status, body).with_header("x-fastvg-job", id.to_string())
    }

    fn handle_job(&self, id_text: &str) -> Response {
        self.metrics.requests_jobs.inc();
        let Ok(id) = id_text.parse::<u64>() else {
            return self.error_response(&reject(400, "job id must be an integer"));
        };
        match self.queue.status(id) {
            None => self.error_response(&reject(404, "unknown job id")),
            Some(JobState::Queued) => self.job_status_response(200, id, "queued", false),
            Some(JobState::Running) => self.job_status_response(200, id, "running", false),
            Some(JobState::Finished(finished)) => {
                let status = finished.status_name();
                Response::json(200, finished.body)
                    .with_header("x-fastvg-job", id.to_string())
                    .with_header(
                        "x-fastvg-cache",
                        if finished.cache_hit { "hit" } else { "miss" },
                    )
                    .with_header("x-fastvg-status", status)
            }
        }
    }

    fn handle_healthz(&self) -> Response {
        self.metrics.requests_healthz.inc();
        let mut body = Json::object()
            .field("ok", true)
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("backend", self.default_backend.describe())
            .field(
                "backends",
                self.registry
                    .schemes()
                    .iter()
                    .map(|s| Json::from(*s))
                    .collect::<Vec<_>>(),
            )
            .field(
                "request_backends",
                REQUEST_BACKEND_SCHEMES
                    .iter()
                    .map(|s| Json::from(*s))
                    .collect::<Vec<_>>(),
            )
            .field("uptime_s", Json::num(self.started.elapsed().as_secs_f64()))
            .field("queue_depth", self.queue.depth())
            .field("cache_entries", self.cache.len())
            .build()
            .dump();
        body.push('\n');
        Response::json(200, body)
    }

    fn handle_shutdown(&self) -> Response {
        self.queue.stop();
        if let Some(handle) = self.shutdown.get() {
            handle.shutdown();
        }
        Response::json(202, "{\"ok\":true,\"status\":\"stopping\"}\n")
    }
}

impl Handler for ExtractService {
    fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/extract") => self.handle_extract(request),
            ("GET", "/healthz") => self.handle_healthz(),
            ("GET", "/metrics") => {
                self.metrics.requests_metrics.inc();
                Response::text(200, self.metrics.render())
            }
            ("POST", "/shutdown") => self.handle_shutdown(),
            (method, path) => {
                if let Some(id) = path.strip_prefix("/jobs/") {
                    if method == "GET" {
                        return self.handle_job(id);
                    }
                }
                let known = matches!(
                    request.path.as_str(),
                    "/extract" | "/healthz" | "/metrics" | "/shutdown"
                ) || request.path.starts_with("/jobs/");
                if known {
                    self.error_response(&reject(405, format!("{method} not allowed here")))
                } else {
                    self.error_response(&reject(404, "no such route"))
                }
            }
        }
    }
}

/// Parses an inline grid scenario:
/// `{"x0":…,"y0":…,"delta":…,"width":…,"height":…,"data":[…]}` with
/// row-major `data` of `width × height` currents.
fn parse_grid(json: &Json) -> Result<Csd, Rejection> {
    if json.as_obj().is_none() {
        return Err(reject(400, "\"grid\" must be an object"));
    }
    let dim = |key: &str| -> Result<usize, Rejection> {
        json.get(key)
            .and_then(Json::as_usize)
            .filter(|&v| (1..=MAX_SPEC_SIZE).contains(&v))
            .ok_or_else(|| {
                reject(
                    400,
                    format!("grid \"{key}\" must be an integer in 1..={MAX_SPEC_SIZE}"),
                )
            })
    };
    let num = |key: &str| -> Result<f64, Rejection> {
        json.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| reject(400, format!("grid \"{key}\" must be a finite number")))
    };
    let width = dim("width")?;
    let height = dim("height")?;
    let grid = VoltageGrid::new(num("x0")?, num("y0")?, num("delta")?, width, height)
        .map_err(|e| reject(400, format!("bad grid geometry: {e}")))?;
    let data = json
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| reject(400, "grid \"data\" must be an array"))?;
    if data.len() != width * height {
        return Err(reject(
            400,
            format!(
                "grid \"data\" must hold width*height = {} values, got {}",
                width * height,
                data.len()
            ),
        ));
    }
    let values: Vec<f64> = data
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| reject(400, "grid \"data\" entries must be finite numbers"))
        })
        .collect::<Result<_, _>>()?;
    Csd::from_data(grid, values).map_err(|e| reject(400, format!("bad grid data: {e}")))
}

/// The canonical JSON of an inline grid, rebuilt from the parsed diagram
/// so formatting differences in the request never split cache entries.
fn grid_canonical_json(csd: &Csd) -> Json {
    let grid = csd.grid();
    let (x0, y0) = grid.origin();
    Json::object()
        .field(
            "grid",
            Json::object()
                .field("x0", Json::num(x0))
                .field("y0", Json::num(y0))
                .field("delta", Json::num(grid.delta()))
                .field("width", grid.width())
                .field("height", grid.height())
                .field(
                    "data",
                    csd.data().iter().map(|&v| Json::num(v)).collect::<Vec<_>>(),
                )
                .build(),
        )
        .build()
}

/// A running daemon: HTTP server + scheduler + shared state.
#[derive(Debug)]
pub struct ServiceHandle {
    service: Arc<ExtractService>,
    server: HttpServer,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The shared service (metrics access for tests and embedding).
    pub fn service(&self) -> &ExtractService {
        &self.service
    }

    /// A clonable handle that stops the daemon from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.server.shutdown_handle()
    }

    /// Requests a graceful stop: the queue drains no further, in-flight
    /// requests finish, the acceptor closes.
    pub fn shutdown(&self) {
        self.service.queue.stop();
        self.server.shutdown_handle().shutdown();
    }

    /// Waits for the scheduler and every HTTP worker to exit. Call
    /// [`ServiceHandle::shutdown`] first (or let `POST /shutdown` do it).
    pub fn join(mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = scheduler.join();
        }
        self.server.join();
    }
}

/// Boots the full daemon described by `config`.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the listen socket cannot be bound,
/// or [`ServeError::Backend`] when the configured default backend spec
/// does not resolve.
pub fn start(config: ServeConfig) -> Result<ServiceHandle, ServeError> {
    let service = Arc::new(ExtractService::new(&config)?);

    // Bind before spawning the scheduler so a bind failure leaks nothing.
    let http = HttpConfig {
        workers: config.http_workers,
        max_body_bytes: config.max_body_bytes,
        ..HttpConfig::default()
    };
    let server = HttpServer::bind(&config.addr, Arc::clone(&service) as Arc<dyn Handler>, http)?;
    let _ = service.shutdown.set(server.shutdown_handle());

    let scheduler = Scheduler::new(
        Arc::clone(&service.queue),
        Arc::clone(&service.cache),
        Arc::clone(&service.metrics),
        config.extract_jobs,
        config.batch_max,
    );
    let scheduler = std::thread::spawn(move || scheduler.run());

    Ok(ServiceHandle {
        service,
        server,
        scheduler: Some(scheduler),
    })
}
