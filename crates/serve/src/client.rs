//! A minimal keep-alive HTTP/1.1 client for the daemon's protocol.
//!
//! Shared by `fastvg-loadgen`, the integration tests, the `serve`
//! example and [`crate::remote::RemoteExtractor`] so none of them
//! re-implement response framing or transport policy. [`ClientConfig`]
//! is the one place connect/read timeouts, keep-alive socket options and
//! connect retries are decided; one [`Client`] is one persistent
//! connection; drop it to close.

use fastvg_wire::{mix64, Json, JsonError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport policy for daemon connections: builder-style, one config
/// shared by every client in the workspace (loadgen, tests,
/// [`crate::remote::RemoteExtractor`]).
///
/// ```no_run
/// use fastvg_serve::ClientConfig;
/// use std::time::Duration;
///
/// let mut client = ClientConfig::new()
///     .connect_timeout(Duration::from_secs(2))
///     .read_timeout(Duration::from_secs(30))
///     .retries(3, Duration::from_millis(50))
///     .connect("127.0.0.1:8737")?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "the config does nothing until connect() is called"]
pub struct ClientConfig {
    connect_timeout: Duration,
    read_timeout: Option<Duration>,
    nodelay: bool,
    retries: u32,
    retry_backoff: Duration,
    /// Jitter depth in per-mille of the linear backoff (0 = none,
    /// 1000 = full jitter). Stored fixed-point so the config stays `Eq`.
    retry_jitter_pm: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(120)),
            nodelay: true,
            retries: 0,
            retry_backoff: Duration::from_millis(50),
            retry_jitter_pm: 0,
        }
    }
}

impl ClientConfig {
    /// The default policy: 10 s connect timeout, 120 s read timeout
    /// (sized for `?wait` extraction requests), `TCP_NODELAY`, no
    /// retries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum time to establish the TCP connection (per attempt).
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Maximum time a response read may block; `None` blocks forever.
    pub fn read_timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.read_timeout = timeout.into();
        self
    }

    /// Whether to set `TCP_NODELAY` (on by default — requests are small
    /// and latency-sensitive).
    pub fn nodelay(mut self, nodelay: bool) -> Self {
        self.nodelay = nodelay;
        self
    }

    /// Retry refused/timed-out connects up to `retries` extra times,
    /// sleeping [`ClientConfig::backoff_delay`] between tries. Useful
    /// when racing a daemon that is still binding its socket.
    pub fn retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Jitter fraction `0.0..=1.0` applied to the retry backoff (default
    /// `0.0`). With jitter `j`, attempt `n` sleeps somewhere in
    /// `((1-j)·backoff·n, backoff·n]` — pulled *earlier*, never later,
    /// so a fleet of clients hammering a recovering daemon de-phases
    /// instead of arriving in lockstep waves. The jitter is
    /// deterministic: it is seeded from the attempt counter alone (a
    /// [`mix64`] of `n`), no clocks or ambient entropy, so a given
    /// config produces the same schedule on every run.
    pub fn jitter(mut self, fraction: f64) -> Self {
        self.retry_jitter_pm = (fraction.clamp(0.0, 1.0) * 1000.0).round() as u32;
        self
    }

    /// The configured read timeout.
    pub fn read_timeout_value(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// The exact sleep before retry `attempt` (1-based): linear backoff
    /// `backoff × attempt`, scaled down by the deterministic per-attempt
    /// jitter (see [`ClientConfig::jitter`]). Public so the schedule is
    /// unit-testable and reusable by callers running their own retry
    /// loops.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let base = self.retry_backoff * attempt;
        if self.retry_jitter_pm == 0 {
            return base;
        }
        // A uniform fraction in [0, 1) from the attempt counter's mixed
        // bits — the top 53 so the f64 conversion is exact.
        let frac = (mix64(u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        let jitter = f64::from(self.retry_jitter_pm) / 1000.0;
        base.mul_f64(1.0 - jitter * frac)
    }

    /// Opens one persistent connection to `addr`
    /// (e.g. `"127.0.0.1:8737"`).
    ///
    /// # Errors
    ///
    /// Returns the last attempt's error after the retry budget is spent.
    pub fn connect(&self, addr: &str) -> std::io::Result<Client> {
        let mut last_err = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(self.backoff_delay(attempt));
            }
            match self.connect_once(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one connect attempt"))
    }

    fn connect_once(&self, addr: &str) -> std::io::Result<Client> {
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr:?} resolved to no address"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.connect_timeout)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_nodelay(self.nodelay)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers (names lowercased) in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as one (newline-framed) JSON document.
    ///
    /// # Errors
    ///
    /// Returns the [`JsonError`] for non-JSON bodies.
    pub fn json(&self) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(&self.body).map_err(|_| JsonError {
            offset: 0,
            message: "body is not UTF-8".to_string(),
        })?;
        Json::parse(text.trim_end_matches(['\r', '\n']))
    }
}

/// A persistent connection to a `fastvg-serve` daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:8737"`) with the default
    /// [`ClientConfig`] policy.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        ClientConfig::new().connect(addr)
    }

    /// [`Client::connect`] with an explicit read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        ClientConfig::new().read_timeout(timeout).connect(addr)
    }

    /// Sends a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[])
    }

    /// Sends a `POST` with a body.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    /// Sends a `PUT` with a body (the cache-seeding verb of the fleet
    /// protocol).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn put(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("PUT", path, body)
    }

    /// Sends an arbitrary method with a body — e.g. the fleet protocol's
    /// `GET /cache/<fingerprint>` probe, whose optional body carries the
    /// canonical key for collision verification.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.request(method, path, body)
    }

    /// [`Client::send`] with extra request headers — how trace context
    /// (`x-fastvg-trace`) rides along without every caller paying for a
    /// header parameter. Header names and values must be line-free; the
    /// client does not validate them.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn send_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: fastvg\r\n");
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.send_with_headers(method, path, body, &[])
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let malformed = |what: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("malformed {what}"))
        };
        let mut status_line = String::new();
        loop {
            status_line.clear();
            if self.reader.read_line(&mut status_line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                ));
            }
            let status = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| malformed("status line"))?;
            // Interim 1xx responses (100 Continue) precede the real one.
            if status >= 200 {
                break;
            }
            self.read_headers()?; // discard the interim header block
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| malformed("status line"))?;
        let headers = self.read_headers()?;
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| malformed("content-length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_headers(&mut self) -> std::io::Result<Vec<(String, String)>> {
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside headers",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                return Ok(headers);
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_without_jitter_is_the_linear_schedule() {
        let config = ClientConfig::new().retries(5, Duration::from_millis(50));
        for attempt in 1..=5 {
            assert_eq!(
                config.backoff_delay(attempt),
                Duration::from_millis(50) * attempt
            );
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let config = ClientConfig::new()
            .retries(8, Duration::from_millis(100))
            .jitter(0.5);
        let again = config.clone();
        for attempt in 1..=8u32 {
            let delay = config.backoff_delay(attempt);
            // Same config, same attempt — same delay, every time. No
            // clocks or ambient entropy feed the schedule.
            assert_eq!(delay, again.backoff_delay(attempt), "attempt {attempt}");
            let base = Duration::from_millis(100) * attempt;
            assert!(delay <= base, "jitter only pulls earlier ({attempt})");
            assert!(
                delay > base.mul_f64(0.5 - 1e-9),
                "jitter depth capped at the configured fraction ({attempt})"
            );
        }
        // Consecutive attempts must not share a phase: that is the whole
        // point (de-phasing retry waves).
        let frac = |n: u32| {
            config.backoff_delay(n).as_secs_f64() / (Duration::from_millis(100) * n).as_secs_f64()
        };
        assert_ne!(frac(1).to_bits(), frac(2).to_bits());
        assert_ne!(frac(2).to_bits(), frac(3).to_bits());
    }

    #[test]
    fn full_jitter_spans_the_interval() {
        let config = ClientConfig::new()
            .retries(64, Duration::from_millis(100))
            .jitter(1.0);
        let fractions: Vec<f64> = (1..=64u32)
            .map(|n| {
                config.backoff_delay(n).as_secs_f64()
                    / (Duration::from_millis(100) * n).as_secs_f64()
            })
            .collect();
        let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().copied().fold(0.0, f64::max);
        assert!(min < 0.25, "full jitter must reach the low end, got {min}");
        assert!(max > 0.75, "full jitter must reach the high end, got {max}");
    }
}
