//! A minimal keep-alive HTTP/1.1 client for the daemon's protocol.
//!
//! Shared by `fastvg-loadgen`, the integration tests and the `serve`
//! example so none of them re-implement response framing. One [`Client`]
//! is one persistent connection; drop it to close.

use fastvg_wire::{Json, JsonError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers (names lowercased) in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as one (newline-framed) JSON document.
    ///
    /// # Errors
    ///
    /// Returns the [`JsonError`] for non-JSON bodies.
    pub fn json(&self) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(&self.body).map_err(|_| JsonError {
            offset: 0,
            message: "body is not UTF-8".to_string(),
        })?;
        Json::parse(text.trim_end_matches(['\r', '\n']))
    }
}

/// A persistent connection to a `fastvg-serve` daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:8737"`) with a generous
    /// read timeout sized for `?wait` extraction requests.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Self::connect_with_timeout(addr, Duration::from_secs(120))
    }

    /// [`Client::connect`] with an explicit read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[])
    }

    /// Sends a `POST` with a body.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: fastvg\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let malformed = |what: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("malformed {what}"))
        };
        let mut status_line = String::new();
        loop {
            status_line.clear();
            if self.reader.read_line(&mut status_line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                ));
            }
            let status = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| malformed("status line"))?;
            // Interim 1xx responses (100 Continue) precede the real one.
            if status >= 200 {
                break;
            }
            self.read_headers()?; // discard the interim header block
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| malformed("status line"))?;
        let headers = self.read_headers()?;
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| malformed("content-length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_headers(&mut self) -> std::io::Result<Vec<(String, String)>> {
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside headers",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                return Ok(headers);
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
    }
}
